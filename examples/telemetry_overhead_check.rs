//! Measures the cost of *enabling* decoder telemetry: full generation
//! decodes with metrics detached vs attached, interleaved best-of-N so
//! scheduler noise cancels. The budget is < 3% (see DESIGN.md §6b).
//!
//! ```sh
//! cargo run --release -p omnc --example telemetry_overhead_check
//! ```

use omnc::rlnc::{
    Decoder, DecoderMetrics, Encoder, Generation, GenerationConfig, GenerationId, Kernel,
};
use omnc::telemetry::Registry;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn throughput_mb_s(blocks: usize, block_size: usize, attach: bool) -> f64 {
    let cfg = GenerationConfig::new(blocks, block_size).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut data = vec![0u8; cfg.payload_len()];
    rng.fill(&mut data[..]);
    let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data).unwrap();
    let encoder = Encoder::with_kernel(&generation, Kernel::Wide);
    let registry = Registry::new();
    let reps = 200;
    let start = Instant::now();
    let mut bytes = 0usize;
    for _ in 0..reps {
        let mut decoder = Decoder::with_kernel(GenerationId::new(0), cfg, Kernel::Wide);
        if attach {
            decoder.set_metrics(DecoderMetrics::from_registry(&registry));
        }
        while !decoder.is_complete() {
            let _ = decoder.absorb(&encoder.emit(&mut rng));
        }
        bytes += cfg.payload_len();
    }
    bytes as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    // Interleave trials; report the best of each mode (minimum-time
    // estimates are robust to one-sided scheduler noise).
    let trials = 7;
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for _ in 0..trials {
        best_off = best_off.max(throughput_mb_s(40, 1024, false));
        best_on = best_on.max(throughput_mb_s(40, 1024, true));
    }
    let delta = 100.0 * (best_on - best_off) / best_off;
    println!("detached {best_off:.1} MB/s   attached {best_on:.1} MB/s   delta {delta:+.2}%");
    println!(
        "budget: |delta| < 3%  ->  {}",
        if delta.abs() < 3.0 { "PASS" } else { "FAIL" }
    );
}
