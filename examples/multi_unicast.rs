//! The multiple-unicast extension from the paper's conclusion: two
//! concurrent sessions share the channel; the coupled optimization trades
//! their rates off against each other.
//!
//! ```sh
//! cargo run --release -p omnc --example multi_unicast
//! ```

use omnc::net_topo::deploy::Deployment;
use omnc::net_topo::phy::Phy;
use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::municast::MUnicast;
use omnc::omnc_opt::{lp, RateControlParams, SUnicast};

fn main() {
    let phy = Phy::paper_lossy();
    let topology = Deployment::random(40, 6.0, &phy, 21).into_topology();
    let (a, b) = topology.farthest_pair();
    // Two crossing sessions: a → b and b → a.
    let selections = vec![
        select_forwarders(&topology, a, b),
        select_forwarders(&topology, b, a),
    ];
    println!(
        "two sessions on a {}-node mesh: {a} -> {b} and {b} -> {a}",
        topology.len()
    );

    // What each session could do with the whole channel to itself.
    for (k, sel) in selections.iter().enumerate() {
        let alone =
            lp::solve_exact(&SUnicast::from_selection(&topology, sel, 1e5)).expect("solvable");
        println!("session {k} alone: gamma* = {:.0} B/s", alone.gamma);
    }

    // The coupled optimum and the distributed solution.
    let mu = MUnicast::from_selections(&topology, &selections, 1e5);
    let joint = mu.solve_exact().expect("solvable");
    println!(
        "\ncoupled LP optimum: gamma = {:?} B/s (total {:.0})",
        joint.gamma.iter().map(|g| g.round()).collect::<Vec<_>>(),
        joint.total()
    );

    let params = RateControlParams {
        max_iterations: 400,
        ..Default::default()
    };
    let dist = mu.solve_distributed(&params);
    println!(
        "distributed (shared congestion prices): gamma = {:?} B/s (total {:.0}, {:.0}% of optimum)",
        dist.gamma.iter().map(|g| g.round()).collect::<Vec<_>>(),
        dist.total(),
        100.0 * dist.total() / joint.total()
    );
}
