//! The network-coding pipeline in isolation: encode at the source, lose
//! packets on lossy links, re-encode at two relays, decode progressively at
//! the destination — the paper's Sec. 3.1 walk-through.
//!
//! ```sh
//! cargo run --release -p omnc --example coding_pipeline
//! ```

use omnc::rlnc::{
    Absorption, Decoder, Encoder, Generation, GenerationConfig, GenerationId, Recoder,
};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2008);

    // A generation of 16 blocks x 256 bytes of real payload.
    let cfg = GenerationConfig::new(16, 256).expect("valid dimensions");
    let mut payload = vec![0u8; cfg.payload_len()];
    rng.fill(&mut payload[..]);
    let generation =
        Generation::from_bytes(GenerationId::new(0), cfg, &payload).expect("sized payload");
    let encoder = Encoder::new(&generation);

    // Source S broadcasts to relays u, v over lossy links; relays re-encode
    // towards the destination T (the paper's two-path scenario).
    let p_su = 0.7;
    let p_sv = 0.5;
    let p_ut = 0.6;
    let p_vt = 0.8;
    let mut relay_u = Recoder::new(GenerationId::new(0), cfg);
    let mut relay_v = Recoder::new(GenerationId::new(0), cfg);
    let mut dst = Decoder::new(GenerationId::new(0), cfg);

    let mut broadcasts = 0u32;
    let mut relay_tx = 0u32;
    let mut redundant_at_dst = 0u32;
    while !dst.is_complete() {
        // One source broadcast: u and v hear it independently.
        let packet = encoder.emit(&mut rng);
        broadcasts += 1;
        if rng.gen_bool(p_su) {
            let _ = relay_u.absorb(&packet);
        }
        if rng.gen_bool(p_sv) {
            let _ = relay_v.absorb(&packet);
        }
        // Each relay refreshes the stream with a new random combination.
        for (relay, p_out) in [(&relay_u, p_ut), (&relay_v, p_vt)] {
            if relay.rank() > 0 {
                relay_tx += 1;
                let recoded = relay.emit(&mut rng).expect("rank > 0");
                if rng.gen_bool(p_out) {
                    match dst.absorb(&recoded).expect("well-formed") {
                        Absorption::Innovative { rank } => {
                            if rank % 4 == 0 {
                                println!(
                                    "destination rank {rank:>2}/{} after {broadcasts} broadcasts",
                                    cfg.blocks()
                                );
                            }
                        }
                        Absorption::Redundant => redundant_at_dst += 1,
                    }
                }
            }
        }
    }

    let recovered = dst.recover().expect("complete");
    assert_eq!(
        recovered, payload,
        "progressive decoding must recover the source bytes"
    );
    println!("\nrecovered all {} bytes intact", recovered.len());
    println!(
        "source broadcasts: {broadcasts}, relay transmissions: {relay_tx}, \
         redundant packets discarded at destination: {redundant_at_dst}"
    );
    println!(
        "relay ranks at completion: u = {}, v = {} (independent partial knowledge)",
        relay_u.rank(),
        relay_v.rank()
    );
}
