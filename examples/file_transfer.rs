//! Transfer a multi-generation "file" over a lossy mesh with OMNC and
//! verify it byte-for-byte — the full stack from application stream down
//! to the simulated radio.
//!
//! ```sh
//! cargo run --release -p omnc --example file_transfer
//! ```

use omnc::net_topo::deploy::Deployment;
use omnc::net_topo::phy::Phy;
use omnc::rlnc::{Decoder, Encoder, GenerationConfig, StreamAssembler, StreamChunker};
use omnc::runner::{run_session, Protocol};
use omnc::session::SessionConfig;
use rand::{Rng, SeedableRng};

fn main() {
    // 64 KiB of application data.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let mut file = vec![0u8; 64 * 1024];
    rng.fill(&mut file[..]);
    let checksum: u64 = file.iter().map(|&b| b as u64).sum();

    // --- Codec layer: stream → generations → coded packets → stream.
    let cfg = GenerationConfig::new(32, 1024).expect("valid dimensions");
    let chunker = StreamChunker::new(cfg, &file).expect("config fits the prefix");
    println!(
        "file: {} bytes -> {} generations of {} blocks x {} B",
        file.len(),
        chunker.generation_count(),
        cfg.blocks(),
        cfg.block_size()
    );

    // Simulate a 40% lossy broadcast hop per generation (the rateless code
    // shrugs; count the overhead).
    let mut assembler = StreamAssembler::new(cfg);
    let mut sent = 0u64;
    for generation in chunker.generations() {
        let encoder = Encoder::new(generation);
        let mut decoder = Decoder::new(generation.id(), cfg);
        while !decoder.is_complete() {
            sent += 1;
            if rng.gen_bool(0.6) {
                let _ = decoder.absorb(&encoder.emit(&mut rng));
            } else {
                let _ = encoder.emit(&mut rng); // lost on the air
            }
        }
        assembler
            .accept(generation.id(), &decoder.recover().expect("complete"))
            .expect("well-formed payload");
    }
    let received = assembler.finish().expect("gapless");
    assert_eq!(received, file, "byte-exact recovery");
    println!(
        "recovered byte-exact over a 40%-loss hop: {} packets for {} needed ({}% overhead), checksum {checksum:#x}",
        sent,
        chunker.generation_count() * cfg.blocks(),
        100 * sent as usize / (chunker.generation_count() * cfg.blocks()) - 100,
    );

    // --- Full protocol stack: the same workload as an OMNC session on a
    // random lossy mesh (payload verification runs inside the destination).
    let phy = Phy::paper_lossy();
    let topology = Deployment::random(60, 6.0, &phy, 77).into_topology();
    let (src, dst) = topology.farthest_pair();
    let session = SessionConfig {
        generation_blocks: 32,
        wire_block_size: 1024,
        payload_block_size: 1024, // real bytes, verified at the destination
        ..SessionConfig::reduced()
    };
    let out = run_session(&topology, src, dst, Protocol::Omnc, &session, 9);
    println!(
        "\nOMNC session {src} -> {dst}: {:.0} B/s, {} generations decoded, {} verification failures",
        out.throughput, out.generations_decoded, out.verification_failures
    );
    assert_eq!(out.verification_failures, 0);
}
