//! Quickstart: one lossy mesh, one unicast session, OMNC vs the ETX
//! baseline.
//!
//! ```sh
//! cargo run --release -p omnc --example quickstart
//! ```

use omnc::runner::{run_session, Protocol};
use omnc::scenario::Scenario;

fn main() {
    // An 80-node lossy mesh with the paper's density (6 neighbors within
    // range on average), the paper's generation size (40 x 1 KB, coded
    // end-to-end with byte verification), and a mid-length unicast session.
    let mut scenario = Scenario::small_test();
    scenario.nodes = 80;
    scenario.hops = (4, 8);
    scenario.session = omnc::session::SessionConfig {
        payload_block_size: 1024,
        ..omnc::session::SessionConfig::reduced()
    };
    let (topology, src, dst) = scenario.build_session(0);
    println!(
        "mesh: {} nodes, {} links, avg link quality {:.2}",
        topology.len(),
        topology.link_count(),
        topology.avg_link_quality()
    );
    println!("session: {src} -> {dst}\n");

    let mut etx_throughput = None;
    for protocol in [Protocol::EtxRouting, Protocol::Omnc] {
        let out = run_session(&topology, src, dst, protocol, &scenario.session, 42);
        println!(
            "{:>8}: {:>8.0} B/s   (decoded generations: {}, mean queue {:.2})",
            protocol.name(),
            out.throughput,
            out.generations_decoded,
            out.mean_queue(),
        );
        assert_eq!(out.verification_failures, 0, "decoded payloads must verify");
        match protocol {
            Protocol::EtxRouting => etx_throughput = Some(out.throughput),
            Protocol::Omnc => {
                let gain = out.throughput / etx_throughput.expect("ETX ran first");
                println!("\nOMNC throughput gain over ETX routing: {gain:.2}x");
            }
            _ => {}
        }
    }
}
