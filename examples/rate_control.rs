//! The distributed rate-control algorithm at work: per-node broadcast-rate
//! convergence (the paper's Fig. 1 view) and validation against the exact
//! LP optimum, both centrally and via message passing.
//!
//! ```sh
//! cargo run --release -p omnc --example rate_control
//! ```

use omnc::net_topo::graph::{Link, NodeId, Topology};
use omnc::net_topo::select::select_forwarders;
use omnc::omnc_opt::distributed::DistributedRateControl;
use omnc::omnc_opt::{lp, RateControl, RateControlParams, SUnicast};

fn main() {
    // A sample multi-path topology with tagged reception probabilities,
    // C = 1e5 bytes/second — the Fig. 1 setting.
    let capacity = 1e5;
    let links = vec![
        Link {
            from: NodeId::new(0),
            to: NodeId::new(1),
            p: 0.8,
        },
        Link {
            from: NodeId::new(0),
            to: NodeId::new(2),
            p: 0.5,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(3),
            p: 0.6,
        },
        Link {
            from: NodeId::new(2),
            to: NodeId::new(3),
            p: 0.9,
        },
        Link {
            from: NodeId::new(1),
            to: NodeId::new(2),
            p: 0.7,
        },
    ];
    let topology = Topology::from_links(4, links).expect("valid sample topology");
    let selection = select_forwarders(&topology, NodeId::new(0), NodeId::new(3));
    let problem = SUnicast::from_selection(&topology, &selection, capacity);

    // Exact optimum via the simplex substrate.
    let exact = lp::solve_exact(&problem).expect("sample instance is solvable");
    println!(
        "exact LP optimum: gamma* = {:.0} B/s, b* = {:?}\n",
        exact.gamma,
        rounded(&exact.b)
    );

    // Centralized driver with per-iteration trace.
    let (alloc, trace) = RateControl::new(&problem).with_trace().run_traced();
    println!(
        "distributed algorithm: {} iterations, supported rate {:.0} B/s ({:.1}% of optimum)",
        alloc.iterations(),
        alloc.throughput(),
        100.0 * alloc.throughput() / exact.gamma
    );
    println!("\nbroadcast-rate convergence (deployable allocation, B/s):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "iter", "node0", "node1", "node2", "node3"
    );
    let mut marks: Vec<usize> = (0..6).map(|k| 1usize << k).collect();
    marks.push(trace.b_allocated.len());
    for &t in marks
        .iter()
        .filter(|&&t| t >= 1 && t <= trace.b_allocated.len())
    {
        let b = &trace.b_allocated[t - 1];
        println!(
            "{:>6} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            t,
            b.first().copied().unwrap_or(0.0),
            b.get(1).copied().unwrap_or(0.0),
            b.get(2).copied().unwrap_or(0.0),
            b.get(3).copied().unwrap_or(0.0)
        );
    }

    // The same algorithm as per-node agents exchanging messages.
    let params = RateControlParams::default();
    let mut agents = DistributedRateControl::new(&problem, &params);
    agents.run(alloc.iterations());
    let d_alloc = agents.allocation();
    println!(
        "\nmessage-passing agents: {:.0} B/s after {} iterations, {} messages",
        d_alloc.throughput(),
        agents.iterations(),
        agents.messages_sent()
    );
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| x.round()).collect()
}
