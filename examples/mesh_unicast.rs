//! All four protocols side by side on the same lossy mesh session — a
//! miniature of the paper's Sec. 5 evaluation.
//!
//! ```sh
//! cargo run --release -p omnc --example mesh_unicast
//! ```

use omnc::runner::{run_session, selection_for, Protocol};
use omnc::scenario::Scenario;

fn main() {
    let mut scenario = Scenario::small_test();
    scenario.nodes = 80;
    scenario.hops = (4, 8);

    let (topology, src, dst) = scenario.build_session(3);
    let selection = selection_for(&topology, src, dst);
    println!(
        "mesh: {} nodes (density {:.0}), avg link quality {:.2} [{:?}]",
        topology.len(),
        scenario.density,
        topology.avg_link_quality(),
        scenario.quality,
    );
    println!(
        "session {src} -> {dst}: {} forwarder candidates, {} DAG paths\n",
        selection.nodes().len(),
        selection.path_count()
    );

    println!(
        "{:>8} | {:>10} | {:>6} | {:>10} | {:>10} | {:>10}",
        "protocol", "B/s", "gain", "mean queue", "node util", "path util"
    );
    println!("{}", "-".repeat(70));

    let etx = run_session(
        &topology,
        src,
        dst,
        Protocol::EtxRouting,
        &scenario.session,
        1,
    );
    for protocol in [
        Protocol::EtxRouting,
        Protocol::Omnc,
        Protocol::More,
        Protocol::OldMore,
    ] {
        let out = if protocol == Protocol::EtxRouting {
            etx.clone()
        } else {
            run_session(&topology, src, dst, protocol, &scenario.session, 1)
        };
        println!(
            "{:>8} | {:>10.0} | {:>5.2}x | {:>10.2} | {:>10.2} | {:>10.2}",
            protocol.name(),
            out.throughput,
            out.throughput / etx.throughput,
            out.mean_queue(),
            out.node_utility,
            out.path_utility,
        );
    }
    if let Some(rc) =
        run_session(&topology, src, dst, Protocol::Omnc, &scenario.session, 1).rc_iterations
    {
        println!("\nOMNC rate control converged in {rc} iterations");
    }
}
