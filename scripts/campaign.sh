#!/usr/bin/env sh
# Campaign smoke: run the committed 8-cell smoke campaign (2 variants x
# 2 protocols x 2 sessions, see crates/omnc-campaign/specs/smoke.json)
# with two workers, then gate the merged omnc-report analysis against
# the committed CAMPAIGN_baseline.json. Cells run under the virtual
# clock, so the merged report is identical on any host and for any
# --jobs; a diff beyond the threshold means the simulation itself
# changed.
#
# The multi-session smoke (crates/omnc-campaign/specs/multi-smoke.json,
# 2 variants x 2 protocols, each cell running 3 coupled sessions on one
# shared mesh) rides along under the same determinism contract: its
# merged report gates against CAMPAIGN_MULTI_baseline.json, and the
# bench-style --jobs 1 vs --jobs 2 byte-compare below proves coupled
# cells schedule as deterministically as classic ones.
#
# After an intentional model or scenario change, regenerate the
# baselines with `scripts/campaign.sh --regen` and commit the result.
# The flags here must stay in lockstep with the "campaign-smoke" job in
# .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc-campaign -p omnc-report
out="campaign-out"
rm -rf "$out"
./target/release/omnc-campaign run \
  --spec crates/omnc-campaign/specs/smoke.json --out "$out" --jobs 2
multi_out="campaign-multi-out"
rm -rf "$multi_out"
# `bench` runs the campaign at --jobs 1 and --jobs 2 and fails hard if
# any merged artifact differs by a byte: the multi-cell determinism gate.
./target/release/omnc-campaign bench \
  --spec crates/omnc-campaign/specs/multi-smoke.json --out "$multi_out" --jobs 2
if [ "${1:-}" = "--regen" ]; then
  cp "$out/report.json" CAMPAIGN_baseline.json
  cp "$multi_out/jobs1/report.json" CAMPAIGN_MULTI_baseline.json
  echo "wrote CAMPAIGN_baseline.json and CAMPAIGN_MULTI_baseline.json"
else
  ./target/release/omnc-report compare \
    --baseline CAMPAIGN_baseline.json --current "$out/report.json" \
    --threshold 0.15
  ./target/release/omnc-report compare \
    --baseline CAMPAIGN_MULTI_baseline.json --current "$multi_out/jobs1/report.json" \
    --threshold 0.15
fi
