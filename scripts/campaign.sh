#!/usr/bin/env sh
# Campaign smoke: run the committed 8-cell smoke campaign (2 variants x
# 2 protocols x 2 sessions, see crates/omnc-campaign/specs/smoke.json)
# with two workers, then gate the merged omnc-report analysis against
# the committed CAMPAIGN_baseline.json. Cells run under the virtual
# clock, so the merged report is identical on any host and for any
# --jobs; a diff beyond the threshold means the simulation itself
# changed.
#
# After an intentional model or scenario change, regenerate the baseline
# with `scripts/campaign.sh --regen` and commit the result. The flags
# here must stay in lockstep with the "campaign-smoke" job in
# .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc-campaign -p omnc-report
out="campaign-out"
rm -rf "$out"
./target/release/omnc-campaign run \
  --spec crates/omnc-campaign/specs/smoke.json --out "$out" --jobs 2
if [ "${1:-}" = "--regen" ]; then
  cp "$out/report.json" CAMPAIGN_baseline.json
  echo "wrote CAMPAIGN_baseline.json"
else
  ./target/release/omnc-report compare \
    --baseline CAMPAIGN_baseline.json --current "$out/report.json" \
    --threshold 0.15
fi
