#!/usr/bin/env sh
# Perf smoke: wall-clock throughput figures plus the deterministic span
# profile, both from fixed seeded workloads (see crates/bench/src/bin/
# perf_smoke.rs). Emits BENCH_<date>.json — one point of the perf
# trajectory; wall-clock numbers are host-dependent, so the file is an
# artifact, not a gate — plus profile.json / profile.folded, then gates
# span *call counts* (exact across identical seeded runs under the
# virtual clock) against the committed PROFILE_baseline.json.
#
# After an intentional instrumentation or workload change, regenerate the
# baseline with `scripts/bench.sh --regen` and commit the result. The
# flags here must stay in lockstep with the "perf-smoke" job in
# .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc-bench -p omnc-report
out="BENCH_$(date +%F).json"
./target/release/perf_smoke --out "$out" \
  --profile profile.json --profile-folded profile.folded
echo "wrote $out"
if [ "${1:-}" = "--regen" ]; then
  cp profile.json PROFILE_baseline.json
  echo "wrote PROFILE_baseline.json"
else
  ./target/release/omnc-report profile compare \
    --baseline PROFILE_baseline.json --current profile.json --metric calls
fi
