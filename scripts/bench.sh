#!/usr/bin/env sh
# Perf smoke: wall-clock throughput figures plus the deterministic span
# profile, both from fixed seeded workloads (see crates/bench/src/bin/
# perf_smoke.rs). Emits BENCH_<date>.json — one point of the perf
# trajectory; wall-clock numbers are host-dependent, so the file is an
# artifact, not a gate — plus profile.json / profile.folded, then gates
# span *call counts* (exact across identical seeded runs under the
# virtual clock) against the committed PROFILE_baseline.json and the
# per-op allocation footprint (alloc.json, exact under the counting
# allocator) against ALLOC_baseline.json.
#
# After an intentional instrumentation or workload change, regenerate the
# baselines with `scripts/bench.sh --regen` and commit the result. The
# flags here must stay in lockstep with the "perf-smoke" and "alloc-gate"
# jobs in .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc-bench -p omnc-report
out="BENCH_$(date +%F).json"
./target/release/perf_smoke --out "$out" \
  --profile profile.json --profile-folded profile.folded \
  --alloc-out alloc.json
echo "wrote $out"
if [ "${1:-}" = "--regen" ]; then
  cp profile.json PROFILE_baseline.json
  cp alloc.json ALLOC_baseline.json
  echo "wrote PROFILE_baseline.json and ALLOC_baseline.json"
else
  ./target/release/omnc-report profile compare \
    --baseline PROFILE_baseline.json --current profile.json --metric calls
  # Per-op allocs/bytes are lower-is-better metrics; 25% headroom absorbs
  # allocator-rounding jitter while still catching a new hot-path alloc.
  # --strict also fails if a family disappears from the current run.
  ./target/release/omnc-report compare \
    --baseline ALLOC_baseline.json --current alloc.json \
    --threshold 0.25 --strict --json alloc_gate.json
fi
