#!/usr/bin/env sh
# Perf smoke: wall-clock throughput figures plus the deterministic span
# profile, both from fixed seeded workloads (see crates/bench/src/bin/
# perf_smoke.rs). Appends the run's records to the committed BENCH
# trajectory (results/bench/trajectory.jsonl) — wall-clock numbers are
# host-dependent, so a single point is an artifact, not a gate; the
# *history* is gated by `omnc-report trend` — then gates span *call
# counts* (exact across identical seeded runs under the virtual clock)
# against the committed PROFILE_baseline.json and the per-op allocation
# footprint (alloc.json, exact under the counting allocator) against
# ALLOC_baseline.json.
#
# After an intentional instrumentation or workload change, regenerate the
# baselines with `scripts/bench.sh --regen` and commit the result —
# including the trajectory: the regen record carries an epoch-reset
# marker so `omnc-report trend` starts its drift fit at the new
# workload instead of straddling the change. The flags here must stay
# in lockstep with the "perf-smoke", "alloc-gate" and "trend-gate" jobs
# in .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc-bench -p omnc-report
trajectory="results/bench/trajectory.jsonl"
mkdir -p "$(dirname "$trajectory")"
reset_flag=""
if [ "${1:-}" = "--regen" ]; then
  reset_flag="--trajectory-reset"
fi
out="$(mktemp)"
# shellcheck disable=SC2086 # reset_flag is empty or one flag
./target/release/perf_smoke --out "$out" $reset_flag \
  --profile profile.json --profile-folded profile.folded \
  --alloc-out alloc.json
cat "$out" >> "$trajectory"
rm -f "$out"
echo "appended $(wc -l < "$trajectory" | tr -d ' ') total records to $trajectory"
if [ "${1:-}" = "--regen" ]; then
  cp profile.json PROFILE_baseline.json
  cp alloc.json ALLOC_baseline.json
  echo "wrote PROFILE_baseline.json and ALLOC_baseline.json"
else
  ./target/release/omnc-report profile compare \
    --baseline PROFILE_baseline.json --current profile.json --metric calls
  # Per-op allocs/bytes are lower-is-better metrics; 25% headroom absorbs
  # allocator-rounding jitter while still catching a new hot-path alloc.
  # --strict also fails if a family disappears from the current run.
  ./target/release/omnc-report compare \
    --baseline ALLOC_baseline.json --current alloc.json \
    --threshold 0.25 --strict --json alloc_gate.json
  # Multi-run drift across the trajectory just extended above.
  ./target/release/omnc-report trend \
    --trajectory "$trajectory" --strict --json trend_gate.json
fi
