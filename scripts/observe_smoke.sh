#!/usr/bin/env sh
# Observability smoke: prove the live plane and the flight recorder work
# end to end, the way CI consumes them.
#
# 1. Start the 16-cell bench campaign with `--serve 127.0.0.1:0`, read
#    the bound address from the run log, and scrape `/progress` and
#    `/metrics` while cells are still running: the progress snapshot
#    must carry a "total" and the exposition must carry the
#    campaign_cells_* series. The run must still exit 0.
# 2. Run the committed expected-failure campaign
#    (crates/omnc-campaign/specs/flight-smoke.json, one cell whose hop
#    bounds are unsatisfiable): it must exit non-zero, leave a readable
#    flight-*.jsonl black box, and `omnc-report flight` must render it
#    with the recorded panic.
#
# The flags here must stay in lockstep with the "campaign-smoke" job in
# .github/workflows/ci.yml. Artifacts left behind for upload:
# observe_run.log, flight-out/flight-*.jsonl, flight.txt.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc-campaign -p omnc-report

out="observe-out"
rm -rf "$out" observe_run.log
./target/release/omnc-campaign run \
  --spec crates/omnc-campaign/specs/bench.json --out "$out" \
  --jobs 2 --serve 127.0.0.1:0 >observe_run.log 2>&1 &
pid=$!

# The observer line is logged before the worker pool starts, so the
# address appears (and the endpoints answer) while cells are in flight.
addr=""
i=0
while [ "$i" -lt 100 ]; do
  addr=$(sed -n 's|.*observer serving.*http://\([0-9.:]*\).*|\1|p' observe_run.log | head -n 1)
  [ -n "$addr" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "FAIL: observer address never appeared in observe_run.log" >&2
  cat observe_run.log >&2
  exit 1
fi
echo "observer at $addr"

progress=$(curl -sf "http://$addr/progress")
case "$progress" in
  *'"total"'*) echo "mid-flight /progress: $progress" ;;
  *)
    echo "FAIL: /progress snapshot missing \"total\": $progress" >&2
    exit 1
    ;;
esac

metrics=$(curl -sf "http://$addr/metrics")
if ! printf '%s\n' "$metrics" | grep -q '^campaign_cells_total'; then
  echo "FAIL: campaign_cells_total missing from /metrics:" >&2
  printf '%s\n' "$metrics" >&2
  exit 1
fi
printf '%s\n' "$metrics" | grep '^campaign_cells'
curl -sf "http://$addr/series" >/dev/null

wait "$pid" || {
  echo "FAIL: served campaign run exited non-zero" >&2
  cat observe_run.log >&2
  exit 1
}
echo "served campaign finished clean"

flight_out="flight-out"
rm -rf "$flight_out" flight.txt
if ./target/release/omnc-campaign run \
  --spec crates/omnc-campaign/specs/flight-smoke.json --out "$flight_out" \
  --jobs 1 >flight_run.log 2>&1; then
  echo "FAIL: flight-smoke campaign unexpectedly succeeded" >&2
  cat flight_run.log >&2
  exit 1
fi
dump="$flight_out/flight-bad__OMNC__0000000000.jsonl"
if [ ! -f "$dump" ]; then
  echo "FAIL: expected flight dump $dump" >&2
  cat flight_run.log >&2
  exit 1
fi
./target/release/omnc-report flight "$dump" | tee flight.txt
grep -q '^panic: ' flight.txt
grep -q 'cell/start' flight.txt
echo "observability smoke passed"
