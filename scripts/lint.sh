#!/usr/bin/env sh
# Runs the same static-analysis gate as CI's "lint-gate" job:
#   1. omnc-lint check        — determinism / panic-freedom / unsafe-audit /
#                               float-hygiene / kernel-hygiene rules over
#                               crates/, with hot-path obligation propagation
#   2. omnc-lint check-scenario — model invariants of the committed gate
#                               scenario (probabilities, capacity condition)
#   3. cargo clippy -D warnings under the workspace lint table
# Exits nonzero on any deny-level finding. See DESIGN.md ("Determinism &
# static analysis policy") for the rule table and escape hatches.
#
# --changed-only: report findings only for .rs files that differ from the
# merge base with origin/main (analysis still covers the whole workspace so
# blame chains stay correct). Any other arguments pass through to
# `omnc-lint check` (e.g. --cache, --sarif).
set -eu
cd "$(dirname "$0")/.."

only_args=""
passthrough=""
for arg in "$@"; do
  if [ "$arg" = "--changed-only" ]; then
    base=$(git merge-base origin/main HEAD 2>/dev/null || git rev-parse HEAD~1)
    changed=$(git diff --name-only "$base" -- 'crates/*.rs' 'crates/**/*.rs')
    if [ -z "$changed" ]; then
      echo "lint gate: no changed .rs files vs $(git rev-parse --short "$base")"
    fi
    for f in $changed; do
      only_args="$only_args --only $f"
    done
  else
    passthrough="$passthrough $arg"
  fi
done

# shellcheck disable=SC2086 # word splitting of the flag lists is intended
cargo run --release -p omnc-lint -- check $only_args $passthrough
cargo run --release -p omnc-lint -- check-scenario \
  crates/omnc-lint/tests/fixtures/scenarios/good_diamond.json --quiet
cargo clippy --workspace --all-targets -- -D warnings
echo "lint gate: clean"
