#!/usr/bin/env sh
# Runs the same static-analysis gate as CI's "lint-gate" job:
#   1. omnc-lint check        — determinism / panic-freedom / unsafe-audit /
#                               float-hygiene rules over crates/
#   2. omnc-lint check-scenario — model invariants of the committed gate
#                               scenario (probabilities, capacity condition)
#   3. cargo clippy -D warnings under the workspace lint table
# Exits nonzero on any deny-level finding. See DESIGN.md ("Determinism &
# static analysis policy") for the rule table and escape hatches.
set -eu
cd "$(dirname "$0")/.."
cargo run --release -p omnc-lint -- check "$@"
cargo run --release -p omnc-lint -- check-scenario \
  crates/omnc-lint/tests/fixtures/scenarios/good_diamond.json --quiet
cargo clippy --workspace --all-targets -- -D warnings
echo "lint gate: clean"
