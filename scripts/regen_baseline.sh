#!/usr/bin/env sh
# Regenerates BENCH_baseline.json, the committed reference for the CI
# report-gate job. Run after an *intentional* performance change and commit
# the result. The scenario, seed, and flags must stay in lockstep with the
# "report-gate" job in .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
cargo build --release -p omnc -p omnc-report
./target/release/omnc-sim --nodes 30 --sessions 2 --duration 30 \
  --protocols all --seed 2008 --trace /tmp/omnc_baseline_trace.jsonl \
  --format json
./target/release/omnc-report analyze --trace /tmp/omnc_baseline_trace.jsonl \
  --json BENCH_baseline.json --quiet
echo "wrote BENCH_baseline.json"
