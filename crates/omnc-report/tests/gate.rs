//! The PR's acceptance demo, end to end: a seeded traced session run,
//! serialized to JSONL, re-ingested by the analyzer — per-forwarder
//! innovative-packet counts must sum to the destination's final decoder
//! rank — and the `compare` gate must fail a synthetically degraded run.

use std::process::Command;

use omnc::runner::{run_session_traced, Protocol, RunOptions};
use omnc::scenario::Scenario;
use omnc_report::{analyze, compare, parse_trace, Report};

fn traced_run(fault_fraction: Option<f64>) -> (omnc::runner::SessionOutcome, Report) {
    let scenario = Scenario::small_test();
    let (topology, src, dst) = scenario.build_session(0);
    let options = RunOptions {
        // Killing the source part-way through collapses throughput — the
        // synthetic regression the gate must catch.
        fault: fault_fraction.map(|f| (src, scenario.session.duration * f)),
        trace_capacity: Some(500_000),
        ..RunOptions::default()
    };
    let (out, trace) = run_session_traced(
        &topology,
        src,
        dst,
        Protocol::Omnc,
        &scenario.session,
        17,
        &options,
    );
    let trace = trace.expect("tracing was enabled");
    assert_eq!(trace.dropped_mac_events, 0, "raise trace capacity");
    let mut jsonl = Vec::new();
    trace.write_jsonl(&mut jsonl).unwrap();
    let records = parse_trace(std::io::Cursor::new(jsonl)).unwrap();
    (out, analyze(&records, &[]))
}

#[test]
fn forwarder_contributions_sum_to_the_destination_rank() {
    let (out, report) = traced_run(None);
    assert_eq!(report.sessions.len(), 1);
    let s = &report.sessions[0];
    assert!(s.final_rank > 0, "session must decode something");
    let innovative: u64 = s.forwarders.values().map(|f| f.innovative).sum();
    assert_eq!(
        innovative, s.final_rank,
        "per-forwarder innovative counts must sum to the decoder's rank"
    );
    assert_eq!(innovative, out.packet_counts.0);
    assert!(s.contributing_forwarders() >= 1);
    assert_eq!(s.throughput, out.throughput);
}

#[test]
fn compare_gate_fails_a_degraded_run_and_passes_a_clean_one() {
    let (_, baseline) = traced_run(None);
    let (_, same) = traced_run(None);
    assert!(
        compare(&baseline.metrics, &same.metrics, 0.15).is_empty(),
        "identical seeded runs must pass the gate"
    );
    let (_, degraded) = traced_run(Some(0.1));
    let regressions = compare(&baseline.metrics, &degraded.metrics, 0.15);
    assert!(
        regressions
            .iter()
            .any(|r| r.metric.ends_with("/throughput")),
        "killing the source must register as a throughput regression: {regressions:?}"
    );
}

#[test]
fn compare_binary_exits_nonzero_on_regression() {
    let (_, baseline) = traced_run(None);
    let (_, degraded) = traced_run(Some(0.1));
    let dir = std::env::temp_dir();
    let base_path = dir.join("omnc_report_gate_baseline.json");
    let cur_path = dir.join("omnc_report_gate_degraded.json");
    std::fs::write(&base_path, serde_json::to_string(&baseline).unwrap()).unwrap();
    std::fs::write(&cur_path, serde_json::to_string(&degraded).unwrap()).unwrap();

    let bin = env!("CARGO_BIN_EXE_omnc-report");
    let ok = Command::new(bin)
        .args(["compare", "--baseline"])
        .arg(&base_path)
        .arg("--current")
        .arg(&base_path)
        .output()
        .unwrap();
    assert!(ok.status.success(), "self-compare must pass");

    let bad = Command::new(bin)
        .args(["compare", "--baseline"])
        .arg(&base_path)
        .arg("--current")
        .arg(&cur_path)
        .output()
        .unwrap();
    assert_eq!(
        bad.status.code(),
        Some(1),
        "degraded run must fail the gate: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
}

#[test]
fn compare_binary_warns_on_missing_metrics_and_fails_only_under_strict() {
    let (_, baseline) = traced_run(None);
    let mut pruned = baseline.clone();
    let removed: Vec<String> = pruned
        .metrics
        .keys()
        .filter(|k| k.ends_with("/final_rank"))
        .cloned()
        .collect();
    for k in &removed {
        pruned.metrics.remove(k);
    }
    assert!(!removed.is_empty(), "fixture must drop a metric");
    let dir = std::env::temp_dir();
    let base_path = dir.join("omnc_report_gate_strict_baseline.json");
    let cur_path = dir.join("omnc_report_gate_strict_pruned.json");
    std::fs::write(&base_path, serde_json::to_string(&baseline).unwrap()).unwrap();
    std::fs::write(&cur_path, serde_json::to_string(&pruned).unwrap()).unwrap();

    let bin = env!("CARGO_BIN_EXE_omnc-report");
    let lax = Command::new(bin)
        .args(["compare", "--baseline"])
        .arg(&base_path)
        .arg("--current")
        .arg(&cur_path)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&lax.stdout);
    assert!(
        lax.status.success(),
        "missing metrics alone must not fail the lax gate: {stdout}"
    );
    assert!(
        stdout.contains("warning: metric") && stdout.contains("missing from current report"),
        "missing metrics must be warned about distinctly: {stdout}"
    );

    let strict = Command::new(bin)
        .args(["compare", "--baseline"])
        .arg(&base_path)
        .arg("--current")
        .arg(&cur_path)
        .arg("--strict")
        .output()
        .unwrap();
    assert_eq!(
        strict.status.code(),
        Some(1),
        "--strict must fail on missing metrics: {}",
        String::from_utf8_lossy(&strict.stdout)
    );
}

fn profiled_run(sessions: usize) -> omnc_report::ProfileReport {
    let scenario = Scenario::small_test();
    let profiler = omnc::telemetry::Profiler::virtual_clock();
    let options = RunOptions {
        profiler: profiler.clone(),
        ..RunOptions::default()
    };
    for k in 0..sessions {
        let (topology, src, dst) = scenario.build_session(k as u64);
        let _ = run_session_traced(
            &topology,
            src,
            dst,
            Protocol::Omnc,
            &scenario.session,
            17,
            &options,
        );
    }
    profiler.report()
}

#[test]
fn profile_binary_renders_a_real_run_and_gates_span_growth() {
    let baseline = profiled_run(1);
    let grown = profiled_run(3);
    assert!(!baseline.spans.is_empty(), "profiled run must record spans");
    let dir = std::env::temp_dir();
    let base_path = dir.join("omnc_report_gate_profile_baseline.json");
    let cur_path = dir.join("omnc_report_gate_profile_grown.json");
    let folded_path = dir.join("omnc_report_gate_profile.folded");
    std::fs::write(&base_path, serde_json::to_string(&baseline).unwrap()).unwrap();
    std::fs::write(&cur_path, serde_json::to_string(&grown).unwrap()).unwrap();

    let bin = env!("CARGO_BIN_EXE_omnc-report");
    let show = Command::new(bin)
        .arg("profile")
        .arg(&base_path)
        .args(["--top", "5", "--folded"])
        .arg(&folded_path)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&show.stdout);
    assert!(show.status.success(), "{stdout}");
    assert!(stdout.contains("span tree:"), "{stdout}");
    assert!(stdout.contains("drift.run"), "{stdout}");
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    assert!(
        folded.lines().any(|l| l.starts_with("drift.run;")),
        "folded stacks must carry full paths: {folded}"
    );

    let clean = Command::new(bin)
        .args(["profile", "compare", "--baseline"])
        .arg(&base_path)
        .arg("--current")
        .arg(&base_path)
        .args(["--metric", "calls"])
        .output()
        .unwrap();
    assert!(
        clean.status.success(),
        "self-compare must pass: {}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let bad = Command::new(bin)
        .args(["profile", "compare", "--baseline"])
        .arg(&base_path)
        .arg("--current")
        .arg(&cur_path)
        .args(["--metric", "calls"])
        .output()
        .unwrap();
    assert_eq!(
        bad.status.code(),
        Some(1),
        "tripled workload must fail the span gate: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
}
