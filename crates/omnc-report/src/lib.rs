//! Offline analysis of OMNC causal packet-lifecycle traces.
//!
//! The `omnc-sim --trace` JSONL stream gives every coded packet a
//! birth-to-death story: minted at a coder ([`drift::PacketTag`]), carried
//! through MAC `TxStart`/`Delivered`/`Lost` events, resolved by the
//! destination decoder into an `Absorbed` outcome. This crate joins those
//! streams back together and answers the paper's evaluation questions
//! offline:
//!
//! * per-link delivery/loss timelines (the empirical loss processes);
//! * per-forwarder redundancy ratio and innovative-packet contribution
//!   (Fig. 4's effective multipath spread);
//! * queue evolution per node (Fig. 3);
//! * decode timeline and throughput summary;
//! * rate-control convergence summaries from optimizer `IterationRecord`
//!   streams (Fig. 1).
//!
//! [`analyze`] reduces a record stream to a [`Report`]; [`compare`] diffs
//! two reports' metric maps for the CI perf-regression gate. The
//! profiler side ([`render_profile`], [`compare_profiles`]) renders and
//! gates the hierarchical span profiles `omnc-sim --profile` exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufRead};

use omnc::drift::TraceEvent;
use omnc::trace::{Absorbed, TraceRecord};
use omnc_opt::IterationRecord;
use serde::{Deserialize, Serialize};

pub use omnc::telemetry::{
    FlightEvent, FlightHeader, ProfileReport, ProfileSpan, ProgressSnapshot, TimelineBucket,
    TimelineReport, TimelineSeries, WorkerProgress,
};

/// Per-link delivery accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets delivered over the link.
    pub delivered: u64,
    /// Packets lost on the link.
    pub lost: u64,
}

impl LinkStats {
    /// Empirical delivery probability (1.0 for an unexercised link).
    pub fn delivery_rate(&self) -> f64 {
        let total = self.delivered + self.lost;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }
}

/// Per-forwarder accounting, joining MAC transmissions with the
/// destination decoder's verdicts on the packets this node *coded*
/// (grouped by `PacketTag::origin`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwarderStats {
    /// Broadcasts started by this node.
    pub transmissions: u64,
    /// Copies of this node's transmissions that reached some receiver.
    pub delivered: u64,
    /// Copies that were lost in the air.
    pub lost: u64,
    /// Packets coded by this node and absorbed by the destination decoder.
    pub absorbed: u64,
    /// Of those, the ones that increased the decoder's rank.
    pub innovative: u64,
}

impl ForwarderStats {
    /// Fraction of this node's decoder-absorbed packets that were
    /// redundant (0.0 when nothing was absorbed).
    pub fn redundancy_ratio(&self) -> f64 {
        if self.absorbed == 0 {
            0.0
        } else {
            (self.absorbed - self.innovative) as f64 / self.absorbed as f64
        }
    }
}

/// Sampled queue-length statistics for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Number of queue samples.
    pub samples: u64,
    /// Mean of the sampled lengths.
    pub mean: f64,
    /// Largest sampled length.
    pub max: u64,
}

/// One fully analyzed session (a `SessionStart ..= SessionEnd` span).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Session identifier (the tag namespace).
    pub session: u64,
    /// Protocol display name ("OMNC", "MORE", ...).
    pub protocol: String,
    /// Source node (original topology id).
    pub src: usize,
    /// Destination node (original topology id).
    pub dst: usize,
    /// End-to-end throughput, bytes/second.
    pub throughput: f64,
    /// Fully decoded generations.
    pub generations_decoded: u64,
    /// Innovative packets absorbed at the destination.
    pub innovative: u64,
    /// Redundant packets absorbed at the destination.
    pub redundant: u64,
    /// Total decoder rank accumulated (innovative absorptions).
    pub final_rank: u64,
    /// MAC events dropped by the bounded in-simulator trace.
    pub dropped_mac_events: u64,
    /// Per-link delivery/loss counts, keyed by `(from, to)`.
    pub links: BTreeMap<(usize, usize), LinkStats>,
    /// Per-forwarder stats, keyed by node id.
    pub forwarders: BTreeMap<usize, ForwarderStats>,
    /// Sampled queue statistics, keyed by node id.
    pub queues: BTreeMap<usize, QueueStats>,
    /// `(completion time, generation)` for every decoded generation, in
    /// completion order.
    pub decode_timeline: Vec<(f64, u64)>,
}

impl SessionReport {
    /// Overall redundancy ratio at the destination.
    pub fn redundancy_ratio(&self) -> f64 {
        let total = self.innovative + self.redundant;
        if total == 0 {
            0.0
        } else {
            self.redundant as f64 / total as f64
        }
    }

    /// Mean of the per-node mean queue lengths.
    pub fn mean_queue(&self) -> f64 {
        if self.queues.is_empty() {
            0.0
        } else {
            self.queues.values().map(|q| q.mean).sum::<f64>() / self.queues.len() as f64
        }
    }

    /// Aggregate delivery rate across every exercised link.
    pub fn delivery_rate(&self) -> f64 {
        let (d, l) = self
            .links
            .values()
            .fold((0u64, 0u64), |(d, l), s| (d + s.delivered, l + s.lost));
        LinkStats {
            delivered: d,
            lost: l,
        }
        .delivery_rate()
    }

    /// Forwarders that contributed at least one innovative packet.
    pub fn contributing_forwarders(&self) -> usize {
        self.forwarders
            .values()
            .filter(|f| f.innovative > 0)
            .count()
    }
}

/// Convergence summary distilled from an optimizer `IterationRecord`
/// stream (the `fig1_convergence --json` export).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSummary {
    /// Iterations recorded.
    pub iterations: u64,
    /// Recovered end-to-end rate at the final iteration.
    pub final_rate: f64,
    /// Worst primal violation at the final iteration.
    pub final_violation: f64,
    /// First iteration whose recovered rate reached 90% of the final rate.
    pub iterations_to_90pct: u64,
}

/// Cross-session aggregates over every session of the trace. Populated
/// whenever the trace holds more than one session — a concurrent
/// multi-session workload or a sequential sweep — so a multi-session
/// report always answers "who got the channel" next to the per-session
/// tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSessionSummary {
    /// Sessions in the trace.
    pub sessions: usize,
    /// Sum of per-session end-to-end throughputs, bytes/second.
    pub total_throughput: f64,
    /// Sessions that delivered anything end to end (decoded a generation
    /// or absorbed an innovative packet).
    pub sessions_completed: usize,
    /// `(session id, share of all trace transmissions)`, stream order.
    /// Shares sum to 1 when anything transmitted.
    pub airtime_shares: Vec<(u64, f64)>,
    /// Jain fairness index of the airtime shares: 1 when every session
    /// gets equal airtime, `1/K` when one session monopolizes the channel.
    pub airtime_fairness: f64,
}

/// A full analysis: per-session reports, optional convergence summary, and
/// the flat metric map the regression gate consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// One report per `SessionStart ..= SessionEnd` span, in stream order.
    pub sessions: Vec<SessionReport>,
    /// Cross-session aggregates (`None` for single-session traces and
    /// reports written before this field existed — the deserializer maps
    /// a missing field to `None`).
    pub cross: Option<CrossSessionSummary>,
    /// Convergence summary, when an optimizer stream was supplied.
    pub convergence: Option<ConvergenceSummary>,
    /// Flat `name → value` metrics (deterministically ordered). Keys are
    /// `"<protocol>/<k>/<metric>"` with `k` the per-protocol session index,
    /// plus `"opt/<metric>"` for the convergence summary.
    pub metrics: BTreeMap<String, f64>,
}

/// Parses a JSONL stream of [`TraceRecord`] lines (blank lines skipped).
///
/// # Errors
///
/// Fails on I/O errors or any line that is not a valid record.
pub fn parse_trace<R: BufRead>(reader: R) -> io::Result<Vec<TraceRecord>> {
    let mut records = Vec::new();
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: TraceRecord = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", n + 1))
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Parses a JSONL stream of optimizer [`IterationRecord`] lines.
///
/// # Errors
///
/// Fails on I/O errors or any line that is not a valid record.
pub fn parse_opt<R: BufRead>(reader: R) -> io::Result<Vec<IterationRecord>> {
    let mut records = Vec::new();
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: IterationRecord = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", n + 1))
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Parses and analyzes an in-memory JSONL trace text in one step — the
/// entry point `omnc-campaign` uses to turn a merged campaign trace into
/// a gateable [`Report`] without touching the filesystem twice.
///
/// # Errors
///
/// Fails on any line that is not a valid [`TraceRecord`].
pub fn analyze_trace_text(text: &str) -> io::Result<Report> {
    let records = parse_trace(text.as_bytes())?;
    Ok(analyze(&records, &[]))
}

/// Reduces a trace stream (plus an optional optimizer stream) to a
/// [`Report`].
pub fn analyze(trace: &[TraceRecord], opt: &[IterationRecord]) -> Report {
    let mut sessions = Vec::new();
    let mut current: Option<SessionReport> = None;
    for record in trace {
        match record {
            TraceRecord::SessionStart {
                session,
                protocol,
                src,
                dst,
                ..
            } => {
                current = Some(SessionReport {
                    session: *session,
                    protocol: protocol.name().to_string(),
                    src: src.index(),
                    dst: dst.index(),
                    throughput: 0.0,
                    generations_decoded: 0,
                    innovative: 0,
                    redundant: 0,
                    final_rank: 0,
                    dropped_mac_events: 0,
                    links: BTreeMap::new(),
                    forwarders: BTreeMap::new(),
                    queues: BTreeMap::new(),
                    decode_timeline: Vec::new(),
                });
            }
            TraceRecord::Mac(event) => {
                if let Some(s) = current.as_mut() {
                    absorb_mac(s, event);
                }
            }
            TraceRecord::Absorbed(a) => {
                if let Some(s) = current.as_mut() {
                    absorb_decode(s, a);
                }
            }
            TraceRecord::SessionEnd {
                throughput,
                generations_decoded,
                innovative,
                redundant,
                final_rank,
                dropped_mac_events,
                ..
            } => {
                if let Some(mut s) = current.take() {
                    s.throughput = *throughput;
                    s.generations_decoded = *generations_decoded;
                    s.innovative = *innovative;
                    s.redundant = *redundant;
                    s.final_rank = *final_rank;
                    s.dropped_mac_events = *dropped_mac_events;
                    sessions.push(s);
                }
            }
        }
    }
    // An unterminated stream still yields its partial last session.
    if let Some(s) = current.take() {
        sessions.push(s);
    }
    let convergence = summarize_convergence(opt);
    let cross = summarize_cross(&sessions);
    let metrics = collect_metrics(&sessions, cross.as_ref(), convergence.as_ref());
    Report {
        sessions,
        cross,
        convergence,
        metrics,
    }
}

/// Reduces multi-session traces to [`CrossSessionSummary`]; `None` for
/// fewer than two sessions.
fn summarize_cross(sessions: &[SessionReport]) -> Option<CrossSessionSummary> {
    if sessions.len() < 2 {
        return None;
    }
    let tx: Vec<f64> = sessions
        .iter()
        .map(|s| s.forwarders.values().map(|f| f.transmissions).sum::<u64>() as f64)
        .collect();
    let total_tx: f64 = tx.iter().sum();
    let airtime_shares = sessions
        .iter()
        .zip(&tx)
        .map(|(s, &t)| {
            let share = if total_tx > 0.0 { t / total_tx } else { 0.0 };
            (s.session, share)
        })
        .collect();
    let sum_sq: f64 = tx.iter().map(|x| x * x).sum();
    let airtime_fairness = if sum_sq > 0.0 {
        total_tx * total_tx / (tx.len() as f64 * sum_sq)
    } else {
        0.0
    };
    Some(CrossSessionSummary {
        sessions: sessions.len(),
        total_throughput: sessions.iter().map(|s| s.throughput).sum(),
        sessions_completed: sessions
            .iter()
            .filter(|s| s.generations_decoded > 0 || s.innovative > 0)
            .count(),
        airtime_shares,
        airtime_fairness,
    })
}

fn absorb_mac(s: &mut SessionReport, event: &TraceEvent) {
    match event {
        TraceEvent::TxStart { node, .. } => {
            s.forwarders.entry(node.index()).or_default().transmissions += 1;
        }
        TraceEvent::TxComplete { .. } => {}
        TraceEvent::Delivered { from, to, .. } => {
            s.links
                .entry((from.index(), to.index()))
                .or_default()
                .delivered += 1;
            s.forwarders.entry(from.index()).or_default().delivered += 1;
        }
        TraceEvent::Lost { from, to, .. } => {
            s.links.entry((from.index(), to.index())).or_default().lost += 1;
            s.forwarders.entry(from.index()).or_default().lost += 1;
        }
        TraceEvent::Queue { node, len, .. } => {
            let q = s.queues.entry(node.index()).or_default();
            let n = q.samples as f64;
            q.mean = (q.mean * n + *len as f64) / (n + 1.0);
            q.samples += 1;
            q.max = q.max.max(*len as u64);
        }
    }
}

fn absorb_decode(s: &mut SessionReport, a: &Absorbed) {
    if let Some(tag) = a.tag {
        let f = s.forwarders.entry(tag.origin.index()).or_default();
        f.absorbed += 1;
        if a.innovative {
            f.innovative += 1;
        }
    }
    if a.completed {
        s.decode_timeline.push((a.at, a.generation.as_u64()));
    }
}

fn summarize_convergence(opt: &[IterationRecord]) -> Option<ConvergenceSummary> {
    let last = opt.last()?;
    let target = last.recovered_rate * 0.9;
    let iterations_to_90pct = opt
        .iter()
        .find(|r| r.recovered_rate >= target)
        .map(|r| r.iter)
        .unwrap_or(last.iter);
    Some(ConvergenceSummary {
        iterations: opt.len() as u64,
        final_rate: last.recovered_rate,
        final_violation: last.max_violation,
        iterations_to_90pct,
    })
}

fn collect_metrics(
    sessions: &[SessionReport],
    cross: Option<&CrossSessionSummary>,
    convergence: Option<&ConvergenceSummary>,
) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let mut per_protocol: BTreeMap<&str, usize> = BTreeMap::new();
    for s in sessions {
        let k = per_protocol.entry(s.protocol.as_str()).or_insert(0);
        let prefix = format!("{}/{k}", s.protocol.to_ascii_lowercase());
        *k += 1;
        metrics.insert(format!("{prefix}/throughput"), s.throughput);
        metrics.insert(
            format!("{prefix}/generations_decoded"),
            s.generations_decoded as f64,
        );
        metrics.insert(format!("{prefix}/innovative"), s.innovative as f64);
        metrics.insert(format!("{prefix}/final_rank"), s.final_rank as f64);
        metrics.insert(format!("{prefix}/redundancy_ratio"), s.redundancy_ratio());
        metrics.insert(format!("{prefix}/mean_queue"), s.mean_queue());
        metrics.insert(format!("{prefix}/delivery_rate"), s.delivery_rate());
        metrics.insert(
            format!("{prefix}/contributing_forwarders"),
            s.contributing_forwarders() as f64,
        );
        metrics.insert(
            format!("{prefix}/dropped_mac_events"),
            s.dropped_mac_events as f64,
        );
    }
    if let Some(x) = cross {
        metrics.insert("cross/total_throughput".into(), x.total_throughput);
        metrics.insert(
            "cross/sessions_completed".into(),
            x.sessions_completed as f64,
        );
        metrics.insert("cross/airtime_fairness".into(), x.airtime_fairness);
    }
    if let Some(c) = convergence {
        metrics.insert("opt/iterations".into(), c.iterations as f64);
        metrics.insert("opt/final_rate".into(), c.final_rate);
        metrics.insert("opt/final_violation".into(), c.final_violation);
        metrics.insert(
            "opt/iterations_to_90pct".into(),
            c.iterations_to_90pct as f64,
        );
    }
    metrics
}

// ---------------------------------------------------------------- rendering

/// Renders the report as human-readable ASCII tables.
pub fn render_ascii(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>5}->{:<5} {:>12} {:>5} {:>6} {:>6} {:>6} {:>7} {:>7}",
        "protocol", "src", "dst", "B/s", "gens", "innov", "redun", "rank", "redun%", "queue"
    );
    for s in &report.sessions {
        let _ = writeln!(
            out,
            "{:>12} {:>5}->{:<5} {:>12.1} {:>5} {:>6} {:>6} {:>6} {:>6.1}% {:>7.2}",
            s.protocol,
            s.src,
            s.dst,
            s.throughput,
            s.generations_decoded,
            s.innovative,
            s.redundant,
            s.final_rank,
            s.redundancy_ratio() * 100.0,
            s.mean_queue(),
        );
    }
    for s in &report.sessions {
        let _ = writeln!(
            out,
            "\n== {} session {} ({} -> {}) ==",
            s.protocol, s.session, s.src, s.dst
        );
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>10} {:>8} {:>9} {:>9} {:>8}",
            "node", "tx", "delivered", "lost", "absorbed", "innov", "contrib"
        );
        let total_innovative: u64 = s.forwarders.values().map(|f| f.innovative).sum();
        for (node, f) in &s.forwarders {
            let contrib = if total_innovative == 0 {
                0.0
            } else {
                f.innovative as f64 / total_innovative as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>10} {:>8} {:>9} {:>9} {:>7.1}%",
                node, f.transmissions, f.delivered, f.lost, f.absorbed, f.innovative, contrib
            );
        }
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>8} {:>9}",
            "link", "delivered", "lost", "p"
        );
        for ((from, to), l) in &s.links {
            let _ = writeln!(
                out,
                "{:>3}->{:<3} {:>9} {:>8} {:>9.3}",
                from,
                to,
                l.delivered,
                l.lost,
                l.delivery_rate()
            );
        }
        if !s.decode_timeline.is_empty() {
            let _ = writeln!(out, "decoded generations:");
            for (at, generation) in &s.decode_timeline {
                let _ = writeln!(out, "  gen {generation:>4} at {at:>9.3}s");
            }
        }
        if s.dropped_mac_events > 0 {
            let _ = writeln!(
                out,
                "Warning: {} MAC events dropped (incomplete stream; per-link and \
                 per-forwarder counts undercount — raise --trace-capacity)",
                s.dropped_mac_events
            );
        }
    }
    if let Some(x) = &report.cross {
        let _ = writeln!(
            out,
            "\ncross-session: {} sessions, {} completed, total {:.1} B/s, \
             airtime fairness {:.3}",
            x.sessions, x.sessions_completed, x.total_throughput, x.airtime_fairness
        );
        let _ = write!(out, "airtime shares:");
        for (session, share) in &x.airtime_shares {
            let _ = write!(out, " s{session} {:.1}%", share * 100.0);
        }
        let _ = writeln!(out);
    }
    if let Some(c) = &report.convergence {
        let _ = writeln!(
            out,
            "\nconvergence: {} iterations, final rate {:.1}, final violation {:.2e}, 90% at iter {}",
            c.iterations, c.final_rate, c.final_violation, c.iterations_to_90pct
        );
    }
    out
}

/// Renders the per-forwarder table as CSV
/// (`session,protocol,node,transmissions,delivered,lost,absorbed,innovative`).
pub fn render_csv(report: &Report) -> String {
    let mut out =
        String::from("session,protocol,node,transmissions,delivered,lost,absorbed,innovative\n");
    for s in &report.sessions {
        for (node, f) in &s.forwarders {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                s.session,
                s.protocol,
                node,
                f.transmissions,
                f.delivered,
                f.lost,
                f.absorbed,
                f.innovative
            );
        }
    }
    out
}

// ----------------------------------------------------------------- compare

/// One metric that moved past the regression threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// The metric's key in the report's metric map.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

/// Whether a smaller value of `metric` is the better one.
pub fn lower_is_better(metric: &str) -> bool {
    [
        "queue",
        "redundan",
        "lost",
        "violation",
        "dropped",
        "alloc",
        "rss",
    ]
    .iter()
    .any(|needle| metric.contains(needle))
}

/// Compares `current` against `baseline`, returning every metric that
/// regressed beyond the relative `threshold` (e.g. `0.15` = 15%).
///
/// Direction is inferred from the metric name ([`lower_is_better`]);
/// lower-is-better metrics get an absolute slack of `threshold / 10` so a
/// zero baseline (e.g. empty queues) tolerates noise. Metrics present in
/// the baseline but missing from `current` are a *distinct* condition —
/// usually a schema change or a shorter run, not a numeric slide — so
/// they are not folded into the regression list; surface them with
/// [`missing_metrics`]. New metrics in `current` are ignored (the
/// baseline only ratchets what it knows).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (metric, &base) in baseline {
        let Some(&cur) = current.get(metric) else {
            continue;
        };
        let failed = if lower_is_better(metric) {
            cur > base * (1.0 + threshold) + threshold / 10.0
        } else {
            cur < base * (1.0 - threshold)
        };
        if failed {
            regressions.push(Regression {
                metric: metric.clone(),
                baseline: base,
                current: cur,
            });
        }
    }
    regressions
}

/// Metric keys present in `baseline` but absent from `current`.
///
/// The CLI prints these as warnings and fails the gate on them only
/// under `--strict`, so a deliberate schema change does not masquerade
/// as a performance slide.
pub fn missing_metrics(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
) -> Vec<String> {
    baseline
        .keys()
        .filter(|metric| !current.contains_key(*metric))
        .cloned()
        .collect()
}

// -------------------------------------------------------------- gate report

/// One metric's verdict inside a machine-readable [`GateReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricVerdict {
    /// Metric key (or span path for profile gates).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`0.0` when `status` is `"missing"`).
    pub current: f64,
    /// `"ok"`, `"regressed"`, or `"missing"`.
    pub status: String,
}

/// Machine-readable outcome of a `compare` / `profile compare` gate run,
/// written by the CLI's `--json` flag so CI jobs stop scraping text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// `"metrics"` for report compares, `"profile"` for profile compares.
    pub gate: String,
    /// The gated field: `"value"` for metric maps, else the
    /// [`ProfileMetric`] spelling.
    pub metric: String,
    /// Relative regression threshold the gate ran with.
    pub threshold: f64,
    /// Whether missing metrics were promoted to failures.
    pub strict: bool,
    /// Overall verdict: no regressions, and under `--strict` nothing
    /// missing either.
    pub passed: bool,
    /// Number of `"regressed"` verdicts.
    pub regressed: usize,
    /// Number of `"missing"` verdicts.
    pub missing: usize,
    /// Per-metric verdicts, in the baseline's deterministic order.
    pub verdicts: Vec<MetricVerdict>,
}

/// Builds the machine-readable gate report for a metric-map compare:
/// every baseline key gets a verdict, and `passed` mirrors the CLI exit
/// code (`regressions empty`, plus `missing empty` under `strict`).
#[must_use]
pub fn gate_report(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold: f64,
    strict: bool,
) -> GateReport {
    let regressions = compare(baseline, current, threshold);
    let regressed: std::collections::BTreeSet<&str> =
        regressions.iter().map(|r| r.metric.as_str()).collect();
    let mut missing = 0usize;
    let verdicts: Vec<MetricVerdict> = baseline
        .iter()
        .map(|(metric, &base)| {
            let (current, status) = match current.get(metric) {
                Some(&cur) if regressed.contains(metric.as_str()) => (cur, "regressed"),
                Some(&cur) => (cur, "ok"),
                None => {
                    missing += 1;
                    (0.0, "missing")
                }
            };
            MetricVerdict {
                metric: metric.clone(),
                baseline: base,
                current,
                status: status.to_string(),
            }
        })
        .collect();
    GateReport {
        gate: "metrics".into(),
        metric: "value".into(),
        threshold,
        strict,
        passed: regressions.is_empty() && (!strict || missing == 0),
        regressed: regressions.len(),
        missing,
        verdicts,
    }
}

/// Builds the machine-readable gate report for a profile compare; verdict
/// keys are span paths and values are the gated [`ProfileMetric`].
#[must_use]
pub fn profile_gate_report(
    baseline: &ProfileReport,
    current: &ProfileReport,
    threshold: f64,
    metric: ProfileMetric,
    strict: bool,
) -> GateReport {
    let cmp = compare_profiles(baseline, current, threshold, metric);
    let regressed: std::collections::BTreeSet<&str> =
        cmp.regressions.iter().map(|r| r.path.as_str()).collect();
    let verdicts: Vec<MetricVerdict> = baseline
        .spans
        .iter()
        .map(|base| {
            let (current, status) = match current.span(&base.path) {
                Some(cur) if regressed.contains(base.path.as_str()) => {
                    (metric.get(cur) as f64, "regressed")
                }
                Some(cur) => (metric.get(cur) as f64, "ok"),
                None => (0.0, "missing"),
            };
            MetricVerdict {
                metric: base.path.clone(),
                baseline: metric.get(base) as f64,
                current,
                status: status.to_string(),
            }
        })
        .collect();
    GateReport {
        gate: "profile".into(),
        metric: metric.name().to_string(),
        threshold,
        strict,
        passed: cmp.regressions.is_empty() && (!strict || cmp.missing.is_empty()),
        regressed: cmp.regressions.len(),
        missing: cmp.missing.len(),
        verdicts,
    }
}

// ---------------------------------------------------------------- timeline

/// Sparkline glyphs, lowest to highest; index 0 is the gap glyph for
/// windows with no samples.
const SPARK: &[u8] = b" .:-=+*#%@";

/// Renders `cells` (None = no samples) as one sparkline row, scaling the
/// populated cells between the row's own min and max.
fn spark_row(cells: &[Option<f64>]) -> String {
    let (lo, hi) = cells
        .iter()
        .flatten()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    cells
        .iter()
        .map(|cell| match cell {
            None => ' ',
            Some(v) => {
                let levels = SPARK.len() - 1; // glyphs available to data
                let idx = if hi > lo {
                    1 + (((v - lo) / (hi - lo)) * (levels - 1) as f64).round() as usize
                } else {
                    1 + levels / 2
                };
                SPARK[idx.min(SPARK.len() - 1)] as char
            }
        })
        .collect()
}

/// Folds a series' (sparse, windowed) buckets into at most `cols` chart
/// cells, keeping each cell's largest bucket mean so peaks survive.
fn chart_cells(series: &TimelineSeries, cols: usize) -> Vec<Option<f64>> {
    let (Some(first), Some(last)) = (series.buckets.first(), series.buckets.last()) else {
        return Vec::new();
    };
    let span = last.index - first.index + 1;
    let cols = (span as usize).min(cols);
    let mut cells: Vec<Option<f64>> = vec![None; cols];
    for b in &series.buckets {
        let col = ((b.index - first.index) * cols as u64 / span) as usize;
        let mean = b.sum / b.count as f64;
        let cell = &mut cells[col.min(cols - 1)];
        *cell = Some(cell.map_or(mean, |prev: f64| prev.max(mean)));
    }
    cells
}

/// Does `name` pass the (substring) series filter?
fn series_selected(name: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|f| name.contains(f))
}

/// Renders a timeline report as one step chart per series: a header with
/// the series' window, sample count and value range, then a sparkline
/// over the bucket means (spaces are windows with no samples). Series
/// that never recorded a sample are counted but not charted; `filter`
/// keeps only series whose name contains it.
pub fn render_timeline(report: &TimelineReport, filter: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: base window {}s, {} buckets/series cap",
        report.base_window, report.capacity
    );
    let mut hidden = 0usize;
    for series in &report.series {
        if !series_selected(&series.name, filter) {
            continue;
        }
        if series.buckets.is_empty() {
            hidden += 1;
            continue;
        }
        let (lo, hi) = series
            .buckets
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), b| {
                (lo.min(b.min), hi.max(b.max))
            });
        let first = series.buckets.first().expect("non-empty");
        let last = series.buckets.last().expect("non-empty");
        let _ = writeln!(
            out,
            "\n{}  window {}s  {} samples  min {lo:.3} max {hi:.3}",
            series.name,
            series.window,
            series.total_count()
        );
        let _ = writeln!(
            out,
            "{:>10.2} |{}| {:.2}",
            first.index as f64 * series.window,
            spark_row(&chart_cells(series, 64)),
            (last.index + 1) as f64 * series.window
        );
    }
    if hidden > 0 {
        let _ = writeln!(out, "\n({hidden} series with no samples not shown)");
    }
    out
}

/// Exports a timeline report as CSV
/// (`series,window,bucket_start,count,min,max,sum,mean`), one row per
/// bucket, in series order.
pub fn timeline_csv(report: &TimelineReport, filter: Option<&str>) -> String {
    let mut out = String::from("series,window,bucket_start,count,min,max,sum,mean\n");
    for series in &report.series {
        if !series_selected(&series.name, filter) {
            continue;
        }
        for b in &series.buckets {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                series.name,
                series.window,
                b.index as f64 * series.window,
                b.count,
                b.min,
                b.max,
                b.sum,
                b.sum / b.count as f64
            );
        }
    }
    out
}

/// One notable epoch distilled from a timeline series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesMoment {
    /// The series the moment was found in.
    pub series: String,
    /// Epoch on the series' own axis (seconds or iterations).
    pub epoch: f64,
    /// The value that made the epoch notable.
    pub value: f64,
}

/// Convergence facts distilled from a timeline report's dynamics series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineSummary {
    /// Per rank series (`…/rank/g<N>`): the earliest window end at which
    /// the decoder held 90% of its final rank.
    pub rank_90pct: Vec<SeriesMoment>,
    /// Per queue series (`…/queue/n<id>`): the window start of the
    /// deepest observed queue.
    pub queue_peak: Vec<SeriesMoment>,
    /// Per `…/opt/max_violation` series: the window end after which the
    /// violation never again exceeds 10% of its peak — the rate-control
    /// settling point, in iterations.
    pub settling: Vec<SeriesMoment>,
}

/// Distills [`TimelineSummary`] convergence facts from the dynamics
/// series an instrumented run records (rank progress, queue depth,
/// optimizer violation). Series of other shapes are ignored.
#[must_use]
pub fn summarize_timeline(report: &TimelineReport) -> TimelineSummary {
    let mut summary = TimelineSummary::default();
    for series in &report.series {
        if series.buckets.is_empty() {
            continue;
        }
        let name = series.name.as_str();
        let is_rank = name.contains("/rank/") || name.starts_with("rank/");
        let is_queue = name.contains("/queue/") || name.starts_with("queue/");
        let peak = series
            .buckets
            .iter()
            .fold(f64::NEG_INFINITY, |m, b| m.max(b.max));
        if is_rank {
            let target = peak * 0.9;
            if let Some(b) = series.buckets.iter().find(|b| b.max >= target) {
                summary.rank_90pct.push(SeriesMoment {
                    series: series.name.clone(),
                    epoch: (b.index + 1) as f64 * series.window,
                    value: b.max,
                });
            }
        } else if is_queue {
            let b = series
                .buckets
                .iter()
                .find(|b| b.max >= peak)
                .expect("non-empty series has a peak bucket");
            summary.queue_peak.push(SeriesMoment {
                series: series.name.clone(),
                epoch: b.index as f64 * series.window,
                value: b.max,
            });
        } else if name.ends_with("opt/max_violation") {
            let threshold = peak * 0.1;
            let settled_after = series
                .buckets
                .iter()
                .rfind(|b| b.max > threshold)
                .map_or(0.0, |b| (b.index + 1) as f64 * series.window);
            summary.settling.push(SeriesMoment {
                series: series.name.clone(),
                epoch: settled_after,
                value: threshold,
            });
        }
    }
    summary
}

/// Renders a [`TimelineSummary`] as short human-readable lines.
pub fn render_timeline_summary(summary: &TimelineSummary) -> String {
    let mut out = String::new();
    for m in &summary.rank_90pct {
        let _ = writeln!(
            out,
            "rank 90%: {} reached rank {:.0} by {:.2}s",
            m.series, m.value, m.epoch
        );
    }
    for m in &summary.queue_peak {
        let _ = writeln!(
            out,
            "queue peak: {} hit {:.0} at {:.2}s",
            m.series, m.value, m.epoch
        );
    }
    for m in &summary.settling {
        let _ = writeln!(
            out,
            "settling: {} within 10% of peak after iteration {:.0}",
            m.series, m.epoch
        );
    }
    out
}

// ------------------------------------------------------------------- trend

/// One point of the BENCH trajectory: the record a bench binary appends
/// per run (`scripts/bench.sh` → `results/bench/trajectory.jsonl`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryRecord {
    /// The bench that produced the record (`perf-smoke`, `campaign-bench`).
    pub bench: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Flat `name → value` metrics, as in a committed BENCH file.
    pub metrics: BTreeMap<String, f64>,
    /// Epoch marker: `Some(true)` means this record starts a fresh
    /// trend epoch for its bench — [`analyze_trends`] drops the bench's
    /// accumulated histories before ingesting this record's metrics.
    /// Written by `scripts/bench.sh --regen` after an *intentional*
    /// workload change, so the drift fit never straddles two different
    /// workloads. Older records predate the field; the deserializer
    /// maps a missing field to `None` (no reset).
    pub reset: Option<bool>,
}

/// Parses a JSONL trajectory (blank lines skipped), keeping file order —
/// the trajectory's line order *is* its time axis.
///
/// # Errors
///
/// Fails on I/O errors or any line that is not a valid record.
pub fn parse_trajectory<R: BufRead>(reader: R) -> io::Result<Vec<TrajectoryRecord>> {
    let mut records = Vec::new();
    for (n, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: TrajectoryRecord = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", n + 1))
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Histories shorter than this many points are reported but never gated:
/// two or three bench runs cannot separate drift from wall-clock noise.
pub const TREND_MIN_POINTS: usize = 4;

/// The across-PRs history of one `(bench, metric)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricTrend {
    /// The bench the metric belongs to.
    pub bench: String,
    /// The metric key inside the bench's records.
    pub metric: String,
    /// The metric's values in trajectory order.
    pub values: Vec<f64>,
    /// Least-squares slope per trajectory step.
    pub slope: f64,
    /// Relative drift over the whole history:
    /// `slope * (n-1) / |mean|` — the fitted total change as a fraction
    /// of the typical value, signed in the metric's own units.
    pub drift: f64,
    /// The split index maximizing the prefix/suffix mean gap (the most
    /// likely single changepoint), when the history has one.
    pub changepoint: Option<usize>,
    /// `"ok"`, `"regressed"`, or `"missing"` (dropped from the bench's
    /// latest record).
    pub status: String,
}

fn mean_of(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

fn least_squares_slope(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    if values.len() < 2 {
        return 0.0;
    }
    let x_mean = (n - 1.0) / 2.0;
    let y_mean = mean_of(values);
    let (num, den) = values
        .iter()
        .enumerate()
        .fold((0.0, 0.0), |(num, den), (i, &y)| {
            let dx = i as f64 - x_mean;
            (num + dx * (y - y_mean), den + dx * dx)
        });
    num / den
}

fn changepoint_of(values: &[f64]) -> Option<usize> {
    if values.len() < 3 {
        return None;
    }
    (1..values.len()).max_by(|&a, &b| {
        let gap = |k: usize| (mean_of(&values[..k]) - mean_of(&values[k..])).abs();
        gap(a).partial_cmp(&gap(b)).expect("finite means")
    })
}

/// Reduces a trajectory to one [`MetricTrend`] per `(bench, metric)`
/// pair, in deterministic key order.
///
/// A trend is `"regressed"` when its fitted [`MetricTrend::drift`] moves
/// in the metric's bad direction ([`lower_is_better`]) by more than
/// `threshold`, *and* the history has at least `min_points` points —
/// short histories are always `"ok"`. A metric with history that is
/// absent from its bench's latest record is `"missing"` (a schema change
/// or a silently dropped bench — gate it with `--strict`).
///
/// A record with [`TrajectoryRecord::reset`] set starts a fresh epoch
/// for its bench: earlier history is dropped and the fit runs over the
/// reset record and everything after it. Pre-reset records stay in the
/// committed trajectory as the permanent record of the old workload —
/// they just no longer feed the slope of the new one.
#[must_use]
pub fn analyze_trends(
    records: &[TrajectoryRecord],
    threshold: f64,
    min_points: usize,
) -> Vec<MetricTrend> {
    let mut histories: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    let mut latest: BTreeMap<&str, &TrajectoryRecord> = BTreeMap::new();
    for record in records {
        if record.reset.unwrap_or(false) {
            histories.retain(|(bench, _), _| *bench != record.bench);
        }
        for (metric, &value) in &record.metrics {
            histories
                .entry((record.bench.clone(), metric.clone()))
                .or_default()
                .push(value);
        }
        latest.insert(record.bench.as_str(), record);
    }
    histories
        .into_iter()
        .map(|((bench, metric), values)| {
            let in_latest = latest
                .get(bench.as_str())
                .is_some_and(|r| r.metrics.contains_key(&metric));
            let slope = least_squares_slope(&values);
            let mean = mean_of(&values);
            let drift = slope * (values.len() as f64 - 1.0) / mean.abs().max(1e-12);
            let bad = if lower_is_better(&metric) {
                drift > threshold
            } else {
                drift < -threshold
            };
            let status = if !in_latest {
                "missing"
            } else if bad && values.len() >= min_points {
                "regressed"
            } else {
                "ok"
            };
            MetricTrend {
                changepoint: changepoint_of(&values),
                status: status.to_string(),
                bench,
                metric,
                values,
                slope,
                drift,
            }
        })
        .collect()
}

/// Builds the machine-readable gate report for a trend run — the same
/// [`GateReport`] schema `compare` and `profile compare` emit, so CI
/// consumes all three gates identically. Verdict keys are
/// `"<bench>/<metric>"`, `baseline` is the history's first value and
/// `current` its latest.
#[must_use]
pub fn trend_gate_report(trends: &[MetricTrend], threshold: f64, strict: bool) -> GateReport {
    let mut regressed = 0usize;
    let mut missing = 0usize;
    let verdicts: Vec<MetricVerdict> = trends
        .iter()
        .map(|t| {
            match t.status.as_str() {
                "regressed" => regressed += 1,
                "missing" => missing += 1,
                _ => {}
            }
            MetricVerdict {
                metric: format!("{}/{}", t.bench, t.metric),
                baseline: t.values.first().copied().unwrap_or(0.0),
                current: t.values.last().copied().unwrap_or(0.0),
                status: t.status.clone(),
            }
        })
        .collect();
    GateReport {
        gate: "trend".into(),
        metric: "drift".into(),
        threshold,
        strict,
        passed: regressed == 0 && (!strict || missing == 0),
        regressed,
        missing,
        verdicts,
    }
}

/// Renders metric trends as one line per `(bench, metric)`: history
/// sparkline, endpoints, fitted drift, changepoint, status.
pub fn render_trends(trends: &[MetricTrend]) -> String {
    let mut out = String::new();
    let width = trends
        .iter()
        .map(|t| t.bench.len() + t.metric.len() + 1)
        .max()
        .unwrap_or(0);
    for t in trends {
        let cells: Vec<Option<f64>> = t.values.iter().map(|&v| Some(v)).collect();
        let change = t
            .changepoint
            .map_or(String::new(), |k| format!("  shift@{k}"));
        let flag = match t.status.as_str() {
            "regressed" => "  REGRESSED",
            "missing" => "  MISSING",
            _ => "",
        };
        let _ = writeln!(
            out,
            "{:<width$}  n={:<2} |{}| {:.4} -> {:.4}  drift {:+.1}%{change}{flag}",
            format!("{}/{}", t.bench, t.metric),
            t.values.len(),
            spark_row(&cells),
            t.values.first().copied().unwrap_or(0.0),
            t.values.last().copied().unwrap_or(0.0),
            t.drift * 100.0,
        );
    }
    out
}

// ----------------------------------------------------------------- profile

/// Which [`ProfileSpan`] field `profile compare` gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMetric {
    /// Span call counts — exact across identical seeded runs under the
    /// virtual clock, so the tightest (and default) gate.
    Calls,
    /// Self ticks (total minus direct children).
    SelfTicks,
    /// Total ticks between entry and exit.
    TotalTicks,
    /// Allocation events attributed to the span (self + descendants);
    /// all-zero unless the run counted allocations.
    Allocs,
    /// Bytes allocated under the span (self + descendants).
    AllocBytes,
}

impl ProfileMetric {
    /// Parses the CLI spelling
    /// (`calls` | `self` | `total` | `allocs` | `alloc-bytes`).
    #[must_use]
    pub fn parse(name: &str) -> Option<ProfileMetric> {
        match name {
            "calls" => Some(ProfileMetric::Calls),
            "self" => Some(ProfileMetric::SelfTicks),
            "total" => Some(ProfileMetric::TotalTicks),
            "allocs" => Some(ProfileMetric::Allocs),
            "alloc-bytes" => Some(ProfileMetric::AllocBytes),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProfileMetric::Calls => "calls",
            ProfileMetric::SelfTicks => "self",
            ProfileMetric::TotalTicks => "total",
            ProfileMetric::Allocs => "allocs",
            ProfileMetric::AllocBytes => "alloc-bytes",
        }
    }

    fn get(self, span: &ProfileSpan) -> u64 {
        match self {
            ProfileMetric::Calls => span.calls,
            ProfileMetric::SelfTicks => span.self_ticks,
            ProfileMetric::TotalTicks => span.total_ticks,
            ProfileMetric::Allocs => span.allocs,
            ProfileMetric::AllocBytes => span.alloc_bytes,
        }
    }
}

/// One span whose cost grew past the threshold between two profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRegression {
    /// Full `;`-joined span path.
    pub path: String,
    /// Baseline value of the gated metric.
    pub baseline: u64,
    /// Current value of the gated metric.
    pub current: u64,
}

/// Result of diffing two profiles with [`compare_profiles`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileComparison {
    /// Spans whose metric grew beyond the tolerance.
    pub regressions: Vec<ProfileRegression>,
    /// Baseline span paths the current profile never entered.
    pub missing: Vec<String>,
}

/// Compares `current` against `baseline` on one span `metric`.
///
/// Profile metrics are costs, so the direction is fixed: growth beyond
/// the relative `threshold` (plus one tick of absolute slack, so tiny
/// counts do not flap on a single extra event) is a regression and
/// shrinkage is an improvement. Baseline spans missing from `current`
/// are listed separately; spans new in `current` are ignored.
pub fn compare_profiles(
    baseline: &ProfileReport,
    current: &ProfileReport,
    threshold: f64,
    metric: ProfileMetric,
) -> ProfileComparison {
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.spans {
        let Some(cur) = current.span(&base.path) else {
            missing.push(base.path.clone());
            continue;
        };
        let (b, c) = (metric.get(base), metric.get(cur));
        if c as f64 > b as f64 * (1.0 + threshold) + 1.0 {
            regressions.push(ProfileRegression {
                path: base.path.clone(),
                baseline: b,
                current: c,
            });
        }
    }
    ProfileComparison {
        regressions,
        missing,
    }
}

/// Renders a profile as a top-`top` table of spans ranked by self time
/// followed by the full span tree (indent = nesting depth).
///
/// Percentages are of [`ProfileReport::total_root_ticks`], so the
/// `self%` column over the whole report sums to at most 100%. Allocation
/// columns (`allocs` / `alloc B`, self + descendants per span) appear
/// only when some span actually attributed allocations — runs without
/// the counting allocator keep the historical tick-only layout.
pub fn render_profile(report: &ProfileReport, top: usize) -> String {
    let mut out = String::new();
    let root = report.total_root_ticks();
    let with_allocs = report
        .spans
        .iter()
        .any(|s| s.allocs > 0 || s.alloc_bytes > 0);
    let _ = writeln!(
        out,
        "clock: {} ({} spans, {} root {})",
        report.clock,
        report.spans.len(),
        root,
        report.unit
    );
    let mut by_self: Vec<&ProfileSpan> = report.spans.iter().collect();
    by_self.sort_by(|a, b| b.self_ticks.cmp(&a.self_ticks).then(a.path.cmp(&b.path)));
    let _ = writeln!(
        out,
        "\ntop {} spans by self {}:",
        top.min(by_self.len()),
        report.unit
    );
    if with_allocs {
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>12} {:>12} {:>10} {:>12}  path",
            "calls", "self%", "self", "total", "allocs", "alloc B"
        );
    } else {
        let _ = writeln!(
            out,
            "{:>10} {:>6} {:>12} {:>12}  path",
            "calls", "self%", "self", "total"
        );
    }
    for s in by_self.iter().take(top) {
        let pct = if root == 0 {
            0.0
        } else {
            s.self_ticks as f64 / root as f64 * 100.0
        };
        if with_allocs {
            let _ = writeln!(
                out,
                "{:>10} {:>5.1}% {:>12} {:>12} {:>10} {:>12}  {}",
                s.calls, pct, s.self_ticks, s.total_ticks, s.allocs, s.alloc_bytes, s.path
            );
        } else {
            let _ = writeln!(
                out,
                "{:>10} {:>5.1}% {:>12} {:>12}  {}",
                s.calls, pct, s.self_ticks, s.total_ticks, s.path
            );
        }
    }
    let _ = writeln!(out, "\nspan tree:");
    if with_allocs {
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>12} {:>10} {:>12}  span",
            "calls", "total", "self", "allocs", "alloc B"
        );
    } else {
        let _ = writeln!(out, "{:>10} {:>12} {:>12}  span", "calls", "total", "self");
    }
    // The report is already depth-first with children sorted by name, so
    // printing in order with depth indentation reproduces the tree.
    for s in &report.spans {
        let indent = "  ".repeat(s.depth as usize);
        if with_allocs {
            let _ = writeln!(
                out,
                "{:>10} {:>12} {:>12} {:>10} {:>12}  {indent}{}",
                s.calls, s.total_ticks, s.self_ticks, s.allocs, s.alloc_bytes, s.name
            );
        } else {
            let _ = writeln!(
                out,
                "{:>10} {:>12} {:>12}  {indent}{}",
                s.calls, s.total_ticks, s.self_ticks, s.name
            );
        }
    }
    out
}

// ------------------------------------------------------------ live & flight

/// Renders a live [`ProgressSnapshot`] (from an observer's `/progress`
/// endpoint) as a progress bar plus one line per worker.
#[must_use]
pub fn render_progress(p: &ProgressSnapshot) -> String {
    let mut out = String::new();
    let done = p.completed + p.failed;
    let frac = if p.total > 0 {
        done as f64 / p.total as f64
    } else {
        1.0
    };
    let cols = 40usize;
    let filled = (frac * cols as f64).round() as usize;
    let bar: String = (0..cols)
        .map(|i| if i < filled { '#' } else { '.' })
        .collect();
    let _ = write!(
        out,
        "{} [{bar}] {done}/{} cells ({:.0}%), {} failed, {:.1}s elapsed",
        p.name,
        p.total,
        frac * 100.0,
        p.failed,
        p.elapsed_s
    );
    match (p.cells_per_s, p.eta_s) {
        (Some(rate), Some(eta)) => {
            let _ = writeln!(out, ", {rate:.2} cells/s, eta {eta:.0}s");
        }
        _ => out.push('\n'),
    }
    for w in &p.workers {
        let state = match (&w.cell, w.busy) {
            (Some(cell), true) => format!("busy on {cell}"),
            _ => "idle".to_owned(),
        };
        let _ = writeln!(
            out,
            "  w{:02}  {:<40}  {} done  busy {:.1}s",
            w.worker, state, w.cells_done, w.busy_s
        );
    }
    out
}

/// Parses a flight-recorder dump (from [`omnc::telemetry::FlightRecorder`]):
/// a [`FlightHeader`] line followed by one [`FlightEvent`] per line.
///
/// # Errors
///
/// Returns `InvalidData` if the header or any event line fails to parse,
/// or the underlying I/O error.
pub fn parse_flight(reader: impl BufRead) -> io::Result<(FlightHeader, Vec<FlightEvent>)> {
    let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| invalid("empty flight dump".to_owned()))??;
    let header: FlightHeader = serde_json::from_str(&header_line)
        .map_err(|e| invalid(format!("bad flight header: {e}")))?;
    let mut events = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: FlightEvent = serde_json::from_str(&line)
            .map_err(|e| invalid(format!("bad flight event line: {e}")))?;
        events.push(event);
    }
    Ok((header, events))
}

/// Pretty-prints a parsed flight dump: the crashed cell, the panic
/// message, eviction accounting, then the surviving breadcrumbs oldest
/// first with virtual-time stamps.
#[must_use]
pub fn render_flight(header: &FlightHeader, events: &[FlightEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "flight {}", header.flight);
    match &header.panic {
        Some(message) => {
            let _ = writeln!(out, "panic: {message}");
        }
        None => {
            let _ = writeln!(out, "panic: (none — dump was taken manually)");
        }
    }
    let _ = writeln!(
        out,
        "{} event(s) kept, {} older event(s) evicted from the ring",
        events.len(),
        header.dropped
    );
    for e in events {
        let _ = writeln!(
            out,
            "{:>6}  t={:<10.3} {:<14} {}",
            e.seq, e.t, e.kind, e.detail
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnc::drift::{PacketTag, SimTime};
    use omnc::net_topo::graph::NodeId;
    use omnc::rlnc::GenerationId;
    use omnc::runner::Protocol;

    fn tag(origin: usize, seq: u64) -> Option<PacketTag> {
        Some(PacketTag {
            session: 7,
            generation: GenerationId::new(0),
            seq,
            origin: NodeId::new(origin),
        })
    }

    fn synthetic_trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord::SessionStart {
                session: 7,
                protocol: Protocol::Omnc,
                src: NodeId::new(0),
                dst: NodeId::new(2),
                seed: 1,
                duration: 10.0,
            },
            TraceRecord::Mac(TraceEvent::TxStart {
                at: SimTime::new(0.1),
                node: NodeId::new(0),
                wire_len: 100,
                rate: 1000.0,
                tag: tag(0, 0),
            }),
            TraceRecord::Mac(TraceEvent::Delivered {
                at: SimTime::new(0.2),
                from: NodeId::new(0),
                to: NodeId::new(1),
                tag: tag(0, 0),
            }),
            TraceRecord::Mac(TraceEvent::Lost {
                at: SimTime::new(0.2),
                from: NodeId::new(0),
                to: NodeId::new(2),
                tag: tag(0, 0),
            }),
            TraceRecord::Mac(TraceEvent::Queue {
                at: SimTime::new(0.2),
                node: NodeId::new(1),
                len: 3,
            }),
            TraceRecord::Mac(TraceEvent::TxStart {
                at: SimTime::new(0.3),
                node: NodeId::new(1),
                wire_len: 100,
                rate: 1000.0,
                tag: tag(1, 0),
            }),
            TraceRecord::Mac(TraceEvent::Delivered {
                at: SimTime::new(0.4),
                from: NodeId::new(1),
                to: NodeId::new(2),
                tag: tag(1, 0),
            }),
            TraceRecord::Absorbed(Absorbed {
                at: 0.4,
                node: NodeId::new(2),
                from: NodeId::new(1),
                tag: tag(1, 0),
                generation: GenerationId::new(0),
                innovative: true,
                rank_after: 1,
                completed: false,
            }),
            TraceRecord::Absorbed(Absorbed {
                at: 0.5,
                node: NodeId::new(2),
                from: NodeId::new(1),
                tag: tag(1, 1),
                generation: GenerationId::new(0),
                innovative: false,
                rank_after: 1,
                completed: false,
            }),
            TraceRecord::Absorbed(Absorbed {
                at: 0.6,
                node: NodeId::new(2),
                from: NodeId::new(0),
                tag: tag(0, 3),
                generation: GenerationId::new(0),
                innovative: true,
                rank_after: 2,
                completed: true,
            }),
            TraceRecord::SessionEnd {
                session: 7,
                throughput: 256.0,
                generations_decoded: 1,
                innovative: 2,
                redundant: 1,
                final_rank: 2,
                dropped_mac_events: 0,
            },
        ]
    }

    #[test]
    fn cross_session_summary_covers_multi_session_traces() {
        // A second session with three times the airtime and nothing
        // delivered end to end.
        let mut trace = synthetic_trace();
        trace.push(TraceRecord::SessionStart {
            session: 9,
            protocol: Protocol::Omnc,
            src: NodeId::new(3),
            dst: NodeId::new(0),
            seed: 2,
            duration: 10.0,
        });
        for i in 0..6 {
            trace.push(TraceRecord::Mac(TraceEvent::TxStart {
                at: SimTime::new(1.0 + i as f64),
                node: NodeId::new(3),
                wire_len: 100,
                rate: 1000.0,
                tag: tag(3, i),
            }));
        }
        trace.push(TraceRecord::SessionEnd {
            session: 9,
            throughput: 0.0,
            generations_decoded: 0,
            innovative: 0,
            redundant: 0,
            final_rank: 0,
            dropped_mac_events: 0,
        });

        // Single-session traces carry no cross summary.
        assert!(analyze(&synthetic_trace(), &[]).cross.is_none());

        let report = analyze(&trace, &[]);
        let x = report.cross.as_ref().expect("two sessions -> cross");
        assert_eq!(x.sessions, 2);
        assert_eq!(x.sessions_completed, 1);
        assert!((x.total_throughput - 256.0).abs() < 1e-12);
        // Session 7 transmitted 2 of 8 packets, session 9 the other 6.
        assert_eq!(x.airtime_shares, vec![(7, 0.25), (9, 0.75)]);
        // Jain index of (2, 6): (2+6)^2 / (2 * (4+36)) = 0.8.
        assert!((x.airtime_fairness - 0.8).abs() < 1e-12, "{x:?}");
        assert_eq!(report.metrics["cross/sessions_completed"], 1.0);
        assert!((report.metrics["cross/airtime_fairness"] - 0.8).abs() < 1e-12);
        assert!((report.metrics["cross/total_throughput"] - 256.0).abs() < 1e-12);
        // The ASCII rendering names the shares next to the fairness index.
        let text = render_ascii(&report);
        assert!(
            text.contains("cross-session: 2 sessions, 1 completed"),
            "{text}"
        );
        assert!(text.contains("s7 25.0%"), "{text}");
        assert!(text.contains("airtime fairness 0.800"), "{text}");
    }

    #[test]
    fn analysis_joins_mac_and_decoder_views() {
        let report = analyze(&synthetic_trace(), &[]);
        assert_eq!(report.sessions.len(), 1);
        let s = &report.sessions[0];
        assert_eq!(s.protocol, "OMNC");
        assert_eq!(
            s.links[&(0, 1)],
            LinkStats {
                delivered: 1,
                lost: 0
            }
        );
        assert_eq!(
            s.links[&(0, 2)],
            LinkStats {
                delivered: 0,
                lost: 1
            }
        );
        assert_eq!(s.forwarders[&0].transmissions, 1);
        assert_eq!(s.forwarders[&0].innovative, 1);
        assert_eq!(s.forwarders[&1].innovative, 1);
        assert_eq!(s.forwarders[&1].absorbed, 2);
        // Per-forwarder innovative contributions sum to the final rank.
        let innovative: u64 = s.forwarders.values().map(|f| f.innovative).sum();
        assert_eq!(innovative, s.final_rank);
        assert_eq!(s.queues[&1].max, 3);
        assert_eq!(s.decode_timeline, vec![(0.6, 0)]);
        assert_eq!(report.metrics["omnc/0/throughput"], 256.0);
        assert_eq!(report.metrics["omnc/0/final_rank"], 2.0);
        assert!((report.metrics["omnc/0/redundancy_ratio"] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.metrics["omnc/0/contributing_forwarders"], 2.0);
    }

    #[test]
    fn parse_round_trips_the_trace() {
        let trace = synthetic_trace();
        let mut buf = Vec::new();
        for r in &trace {
            buf.extend_from_slice(serde_json::to_string(r).unwrap().as_bytes());
            buf.push(b'\n');
        }
        let back = parse_trace(io::Cursor::new(buf)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn report_serializes_and_renders() {
        let report = analyze(&synthetic_trace(), &[]);
        let json = serde_json::to_string(&report).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let ascii = render_ascii(&report);
        assert!(ascii.contains("OMNC"), "{ascii}");
        let csv = render_csv(&report);
        assert!(csv.lines().count() > 2, "{csv}");
    }

    #[test]
    fn convergence_summary_reads_the_final_iterate() {
        let opt: Vec<IterationRecord> = (1..=10)
            .map(|i| IterationRecord {
                iter: i,
                step_size: 1.0 / i as f64,
                gamma: 1.0,
                dual_value: 0.0,
                max_violation: 1.0 / i as f64,
                recovered_rate: 10.0 * i as f64,
                recovery_gap: 0.0,
            })
            .collect();
        let report = analyze(&[], &opt);
        let c = report.convergence.unwrap();
        assert_eq!(c.iterations, 10);
        assert_eq!(c.final_rate, 100.0);
        assert_eq!(c.iterations_to_90pct, 9);
        assert_eq!(report.metrics["opt/final_rate"], 100.0);
    }

    #[test]
    fn compare_flags_only_true_regressions() {
        let report = analyze(&synthetic_trace(), &[]);
        // Identical runs: clean.
        assert!(compare(&report.metrics, &report.metrics, 0.1).is_empty());
        // Degrade throughput by more than the threshold: flagged, with the
        // higher-is-better direction.
        let mut degraded = report.metrics.clone();
        degraded.insert("omnc/0/throughput".into(), 256.0 * 0.5);
        let regs = compare(&report.metrics, &degraded, 0.15);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "omnc/0/throughput");
        // Improve throughput: not flagged.
        let mut improved = report.metrics.clone();
        improved.insert("omnc/0/throughput".into(), 512.0);
        assert!(compare(&report.metrics, &improved, 0.15).is_empty());
        // Queue growth is a regression (lower is better)...
        let mut queued = report.metrics.clone();
        queued.insert("omnc/0/mean_queue".into(), 50.0);
        assert_eq!(compare(&report.metrics, &queued, 0.15).len(), 1);
        // ...and a queue decrease is an improvement.
        let mut drained = report.metrics.clone();
        drained.insert("omnc/0/mean_queue".into(), 0.0);
        assert!(compare(&report.metrics, &drained, 0.15).is_empty());
        // A metric vanishing from the current run is not a numeric
        // regression — it is surfaced as a distinct missing-metric list.
        let mut missing = report.metrics.clone();
        missing.remove("omnc/0/final_rank");
        assert!(compare(&report.metrics, &missing, 0.15).is_empty());
        assert_eq!(
            missing_metrics(&report.metrics, &missing),
            vec!["omnc/0/final_rank".to_string()]
        );
        // New metrics in the current run are neither regressed nor missing.
        assert!(missing_metrics(&missing, &report.metrics).is_empty());
    }

    /// Satellite: the runner's dropped-MAC-event count must surface as an
    /// explicit warning line and as a gate metric.
    #[test]
    fn dropped_mac_events_surface_as_warning_and_metric() {
        let mut trace = synthetic_trace();
        if let Some(TraceRecord::SessionEnd {
            dropped_mac_events, ..
        }) = trace.last_mut()
        {
            *dropped_mac_events = 5;
        }
        let report = analyze(&trace, &[]);
        assert_eq!(report.sessions[0].dropped_mac_events, 5);
        assert_eq!(report.metrics["omnc/0/dropped_mac_events"], 5.0);
        let ascii = render_ascii(&report);
        assert!(ascii.contains("Warning: 5 MAC events dropped"), "{ascii}");
        // A complete trace stays warning-free.
        let clean = render_ascii(&analyze(&synthetic_trace(), &[]));
        assert!(!clean.contains("Warning"), "{clean}");
    }

    fn nested_profile(rounds: usize) -> ProfileReport {
        let p = omnc::telemetry::Profiler::virtual_clock();
        for _ in 0..rounds {
            let _outer = p.span("decode");
            let _inner = p.span("eliminate");
        }
        p.report()
    }

    #[test]
    fn profile_renders_ranked_table_and_indented_tree() {
        let report = nested_profile(3);
        let text = render_profile(&report, 2);
        assert!(text.contains("clock: virtual"), "{text}");
        assert!(text.contains("decode;eliminate"), "{text}");
        // The tree view indents children under their parent.
        assert!(text.contains("  eliminate"), "{text}");
        assert_eq!(
            report.span("decode").map(|s| s.calls),
            Some(3),
            "fixture sanity"
        );
    }

    #[test]
    fn gate_report_classifies_every_baseline_metric() {
        let report = analyze(&synthetic_trace(), &[]);
        let mut current = report.metrics.clone();
        current.insert("omnc/0/throughput".into(), 256.0 * 0.5); // regressed
        current.remove("omnc/0/final_rank"); // missing
        let gate = gate_report(&report.metrics, &current, 0.15, false);
        assert_eq!(gate.gate, "metrics");
        assert!(!gate.passed); // a regression fails even without --strict
        assert_eq!(gate.regressed, 1);
        assert_eq!(gate.missing, 1);
        assert_eq!(gate.verdicts.len(), report.metrics.len());
        let by_status = |status: &str| {
            gate.verdicts
                .iter()
                .filter(|v| v.status == status)
                .map(|v| v.metric.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(by_status("regressed"), vec!["omnc/0/throughput"]);
        assert_eq!(by_status("missing"), vec!["omnc/0/final_rank"]);
        // Missing-only fails the gate only under --strict.
        let mut shrunk = report.metrics.clone();
        shrunk.remove("omnc/0/final_rank");
        assert!(gate_report(&report.metrics, &shrunk, 0.15, false).passed);
        assert!(!gate_report(&report.metrics, &shrunk, 0.15, true).passed);
        // Clean compare passes strictly and round-trips through JSON.
        let clean = gate_report(&report.metrics, &report.metrics, 0.15, true);
        assert!(clean.passed);
        let back: GateReport =
            serde_json::from_str(&serde_json::to_string(&clean).unwrap()).unwrap();
        assert_eq!(back, clean);
    }

    #[test]
    fn profile_gate_report_keys_verdicts_by_span_path() {
        let base = nested_profile(8);
        let gate =
            profile_gate_report(&base, &nested_profile(20), 0.15, ProfileMetric::Calls, true);
        assert_eq!(gate.gate, "profile");
        assert_eq!(gate.metric, "calls");
        assert!(!gate.passed);
        assert!(gate
            .verdicts
            .iter()
            .any(|v| v.metric == "decode;eliminate" && v.status == "regressed"));
        // A span the current run never entered shows up as missing and
        // fails only under --strict.
        let p = omnc::telemetry::Profiler::virtual_clock();
        drop(p.span("decode"));
        let shorter = p.report();
        assert!(!profile_gate_report(&base, &shorter, 0.15, ProfileMetric::Calls, true).passed);
        assert!(profile_gate_report(&base, &shorter, 0.15, ProfileMetric::Calls, false).passed);
    }

    #[test]
    fn alloc_metrics_and_rss_gate_as_lower_is_better() {
        assert!(lower_is_better("alloc/rlnc_encode/allocs_per_op"));
        assert!(lower_is_better("alloc/sim_dispatch/bytes_per_op"));
        assert!(lower_is_better("mem/peak_rss_mb"));
        // Existing higher-is-better metrics keep their direction.
        assert!(!lower_is_better("omnc/0/throughput"));
        assert!(!lower_is_better("opt/final_rate"));
        assert!(!lower_is_better("campaign/parallel_s"));
    }

    #[test]
    fn profile_metric_parses_alloc_spellings() {
        assert_eq!(ProfileMetric::parse("allocs"), Some(ProfileMetric::Allocs));
        assert_eq!(
            ProfileMetric::parse("alloc-bytes"),
            Some(ProfileMetric::AllocBytes)
        );
        assert_eq!(ProfileMetric::Allocs.name(), "allocs");
        assert_eq!(ProfileMetric::AllocBytes.name(), "alloc-bytes");
    }

    #[test]
    fn profile_render_adds_alloc_columns_only_when_counted() {
        let plain = nested_profile(2);
        assert!(!render_profile(&plain, 3).contains("alloc B"));
        let mut counted = plain.clone();
        counted.spans[0].allocs = 4;
        counted.spans[0].alloc_bytes = 4096;
        counted.spans[0].self_allocs = 4;
        counted.spans[0].self_alloc_bytes = 4096;
        let text = render_profile(&counted, 3);
        assert!(text.contains("alloc B"), "{text}");
        assert!(text.contains("4096"), "{text}");
        // Alloc columns gate through profile compare too.
        let cmp = compare_profiles(&plain, &counted, 0.15, ProfileMetric::AllocBytes);
        assert!(
            cmp.regressions.iter().any(|r| r.path == "decode"),
            "{cmp:?}"
        );
    }

    #[test]
    fn profile_compare_flags_growth_not_shrinkage() {
        let base = nested_profile(8);
        // Identical runs are clean.
        let same = compare_profiles(&base, &nested_profile(8), 0.15, ProfileMetric::Calls);
        assert!(same.regressions.is_empty() && same.missing.is_empty());
        // More calls than the tolerance is a regression on both spans.
        let grown = compare_profiles(&base, &nested_profile(20), 0.15, ProfileMetric::Calls);
        assert!(
            grown.regressions.iter().any(|r| r.path == "decode"),
            "{grown:?}"
        );
        assert!(grown.missing.is_empty());
        // Fewer calls is an improvement, not a regression.
        let shrunk = compare_profiles(&base, &nested_profile(4), 0.15, ProfileMetric::Calls);
        assert!(shrunk.regressions.is_empty(), "{shrunk:?}");
        // A span the current run never entered is reported missing.
        let p = omnc::telemetry::Profiler::virtual_clock();
        drop(p.span("decode"));
        let cmp = compare_profiles(&base, &p.report(), 0.15, ProfileMetric::Calls);
        assert_eq!(cmp.missing, vec!["decode;eliminate".to_string()]);
        // The tick-based metrics gate too.
        let ticks = compare_profiles(&base, &nested_profile(20), 0.15, ProfileMetric::TotalTicks);
        assert!(!ticks.regressions.is_empty());
    }

    fn dynamics_timeline() -> TimelineReport {
        let recorder = omnc::telemetry::TimeSeries::enabled(0.25, 64);
        // Rank climbs 1..=10 over 5s; 90% of 10 is first reached at t=4.5.
        for i in 1..=10u64 {
            recorder.record("omnc/s0/rank/g0", i as f64 * 0.5, i as f64);
        }
        // Queue ramps to a peak of 9 at t=3, then drains.
        for (t, depth) in [(1.0, 3.0), (2.0, 6.0), (3.0, 9.0), (4.0, 4.0), (5.0, 1.0)] {
            recorder.record("omnc/s0/queue/n1", t, depth);
        }
        // Optimizer violation decays below 10% of its peak after iter 2.
        for (iter, v) in [(0.0, 1.0), (1.0, 0.4), (2.0, 0.2), (3.0, 0.05), (4.0, 0.01)] {
            recorder.record("omnc/s0/opt/max_violation", iter, v);
        }
        // A registered-but-never-sampled series stays out of the charts.
        let _ = recorder.series("omnc/s0/link/0-1/lost");
        recorder.snapshot()
    }

    #[test]
    fn timeline_summary_finds_convergence_moments() {
        let summary = summarize_timeline(&dynamics_timeline());
        assert_eq!(summary.rank_90pct.len(), 1);
        let rank = &summary.rank_90pct[0];
        assert_eq!(rank.series, "omnc/s0/rank/g0");
        assert!(rank.value >= 9.0, "{rank:?}");
        assert!((4.0..=5.0).contains(&rank.epoch), "{rank:?}");

        assert_eq!(summary.queue_peak.len(), 1);
        let queue = &summary.queue_peak[0];
        assert_eq!(queue.value, 9.0);
        assert!((2.75..=3.0).contains(&queue.epoch), "{queue:?}");

        assert_eq!(summary.settling.len(), 1);
        let settle = &summary.settling[0];
        // Violation last exceeds 0.1 at iteration 2 (bucket [2, 2.25)).
        assert!((2.0..=2.5).contains(&settle.epoch), "{settle:?}");

        let text = render_timeline_summary(&summary);
        assert!(text.contains("rank 90%"), "{text}");
        assert!(text.contains("queue peak"), "{text}");
        assert!(text.contains("settling"), "{text}");
    }

    #[test]
    fn timeline_render_charts_sampled_series_and_filters() {
        let report = dynamics_timeline();
        let text = render_timeline(&report, None);
        assert!(text.contains("omnc/s0/rank/g0"), "{text}");
        assert!(text.contains("omnc/s0/queue/n1"), "{text}");
        assert!(text.contains("1 series with no samples"), "{text}");
        // The rank chart rises: its sparkline ends on the densest glyph.
        let rank_row = text
            .lines()
            .skip_while(|l| !l.starts_with("omnc/s0/rank/g0"))
            .nth(1)
            .expect("rank chart row");
        let inner = rank_row.split('|').nth(1).expect("chart between pipes");
        assert!(inner.trim_end().ends_with('@'), "{rank_row}");

        // Filtering keeps only matching series.
        let only_queue = render_timeline(&report, Some("/queue/"));
        assert!(only_queue.contains("queue/n1"), "{only_queue}");
        assert!(!only_queue.contains("rank/g0"), "{only_queue}");

        // CSV has one row per bucket with the documented header.
        let csv = timeline_csv(&report, Some("rank"));
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("series,window,bucket_start,count,min,max,sum,mean")
        );
        assert_eq!(
            lines.count(),
            report.series("omnc/s0/rank/g0").unwrap().buckets.len()
        );
    }

    fn trajectory(values: &[(&str, &[f64])], points: usize) -> Vec<TrajectoryRecord> {
        (0..points)
            .map(|i| TrajectoryRecord {
                bench: "perf-smoke".into(),
                seed: 2008,
                metrics: values
                    .iter()
                    .map(|(name, history)| ((*name).to_string(), history[i]))
                    .collect(),
                reset: None,
            })
            .collect()
    }

    #[test]
    fn trend_gates_sustained_drift_but_not_short_or_flat_histories() {
        // A monotone 20% throughput decay over 5 points is a regression.
        let decaying: &[f64] = &[100.0, 95.0, 90.0, 85.0, 80.0];
        let steady: &[f64] = &[50.0, 50.5, 49.5, 50.0, 50.2];
        let records = trajectory(
            &[
                ("opt/iterations_per_s", decaying),
                ("sim/events_per_s", steady),
            ],
            5,
        );
        let trends = analyze_trends(&records, 0.1, TREND_MIN_POINTS);
        assert_eq!(trends.len(), 2);
        let decay = trends
            .iter()
            .find(|t| t.metric == "opt/iterations_per_s")
            .unwrap();
        assert_eq!(decay.status, "regressed");
        assert!(decay.drift < -0.1, "{decay:?}");
        let flat = trends
            .iter()
            .find(|t| t.metric == "sim/events_per_s")
            .unwrap();
        assert_eq!(flat.status, "ok");

        let gate = trend_gate_report(&trends, 0.1, false);
        assert_eq!(gate.gate, "trend");
        assert_eq!(gate.metric, "drift");
        assert!(!gate.passed);
        assert_eq!(gate.regressed, 1);
        assert_eq!(gate.verdicts[0].metric, "perf-smoke/opt/iterations_per_s");
        assert_eq!(gate.verdicts[0].baseline, 100.0);
        assert_eq!(gate.verdicts[0].current, 80.0);

        // The same decay over only 3 points is below min_points: never gated.
        let short = analyze_trends(
            &trajectory(&[("opt/iterations_per_s", &decaying[..3])], 3),
            0.1,
            TREND_MIN_POINTS,
        );
        assert_eq!(short[0].status, "ok");
        assert!(trend_gate_report(&short, 0.1, true).passed);

        // A lower-is-better metric regresses in the other direction.
        let queue_up: &[f64] = &[2.0, 2.5, 3.0, 3.5, 4.0];
        let up = analyze_trends(
            &trajectory(&[("sim/mean_queue", queue_up)], 5),
            0.1,
            TREND_MIN_POINTS,
        );
        assert_eq!(up[0].status, "regressed");
        assert!(up[0].drift > 0.1, "{:?}", up[0]);
    }

    #[test]
    fn trend_flags_metrics_dropped_from_the_latest_record() {
        let mut records = trajectory(&[("opt/iterations_per_s", &[100.0, 101.0, 99.0])], 3);
        records.push(TrajectoryRecord {
            bench: "perf-smoke".into(),
            seed: 2008,
            metrics: [("sim/events_per_s".to_string(), 7.0)]
                .into_iter()
                .collect(),
            reset: None,
        });
        let trends = analyze_trends(&records, 0.1, TREND_MIN_POINTS);
        let dropped = trends
            .iter()
            .find(|t| t.metric == "opt/iterations_per_s")
            .unwrap();
        assert_eq!(dropped.status, "missing");
        let gate = trend_gate_report(&trends, 0.1, false);
        assert!(gate.passed, "missing only gates under --strict");
        assert_eq!(gate.missing, 1);
        assert!(!trend_gate_report(&trends, 0.1, true).passed);
    }

    #[test]
    fn trend_reset_record_starts_a_fresh_epoch() {
        // A 40% throughput collapse over six points: regressed as one
        // history, ok once the workload change is marked as an epoch
        // reset at the collapse point.
        let mut records = trajectory(&[("sim/events_per_s", &[100.0, 98.0, 99.0])], 3);
        let make = |value: f64, reset: Option<bool>| TrajectoryRecord {
            bench: "perf-smoke".into(),
            seed: 2008,
            metrics: [("sim/events_per_s".to_string(), value)]
                .into_iter()
                .collect(),
            reset,
        };
        records.extend([60.0, 59.0, 61.0].map(|v| make(v, None)));
        let unbroken = analyze_trends(&records, 0.15, TREND_MIN_POINTS);
        assert_eq!(unbroken[0].status, "regressed", "{:?}", unbroken[0]);

        records[3].reset = Some(true);
        let epoched = analyze_trends(&records, 0.15, TREND_MIN_POINTS);
        assert_eq!(epoched[0].status, "ok", "{:?}", epoched[0]);
        assert_eq!(epoched[0].values, vec![60.0, 59.0, 61.0]);

        // The reset is bench-scoped: other benches keep their history.
        let mut mixed = records.clone();
        for (i, r) in mixed.iter_mut().enumerate() {
            r.bench = "campaign-bench".into();
            r.reset = None;
            r.metrics = [("campaign/serial_s".to_string(), 1.0 + i as f64 * 0.01)]
                .into_iter()
                .collect();
        }
        let both: Vec<TrajectoryRecord> = records
            .iter()
            .cloned()
            .chain(mixed.iter().cloned())
            .collect();
        let trends = analyze_trends(&both, 0.15, TREND_MIN_POINTS);
        let other = trends
            .iter()
            .find(|t| t.bench == "campaign-bench")
            .expect("campaign history survives the perf-smoke reset");
        assert_eq!(other.values.len(), 6);

        // Records that predate the field still parse (reset -> None).
        let legacy = r#"{"bench":"perf-smoke","seed":2008,"metrics":[["sim/events_per_s",7.0]]}"#;
        let parsed = parse_trajectory(format!("{legacy}\n").as_bytes()).expect("parses");
        assert_eq!(parsed[0].reset, None);
    }

    #[test]
    fn trend_locates_a_level_shift() {
        let stepped: &[f64] = &[10.0, 10.1, 9.9, 10.0, 14.0, 14.1, 13.9, 14.0];
        let trends = analyze_trends(
            &trajectory(&[("sim/events_per_s", stepped)], 8),
            0.5,
            TREND_MIN_POINTS,
        );
        assert_eq!(trends[0].changepoint, Some(4), "{:?}", trends[0]);
        let text = render_trends(&trends);
        assert!(text.contains("shift@4"), "{text}");
        assert!(text.contains("perf-smoke/sim/events_per_s"), "{text}");
    }

    #[test]
    fn trajectory_parses_committed_bench_record_shape() {
        // The exact line shape `scripts/bench.sh` appends (metrics as
        // key/value pair arrays, the vendored BTreeMap encoding).
        let record = TrajectoryRecord {
            bench: "perf-smoke".into(),
            seed: 2008,
            metrics: [("opt/iterations_per_s".to_string(), 602052.97)]
                .into_iter()
                .collect(),
            reset: None,
        };
        let line = serde_json::to_string(&record).expect("serializes");
        let text = format!("{line}\n\n{line}\n");
        let parsed = parse_trajectory(text.as_bytes()).expect("parses");
        assert_eq!(parsed, vec![record.clone(), record]);

        let err = parse_trajectory("{broken\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn progress_renders_bar_workers_and_eta() {
        let snap = ProgressSnapshot {
            name: "smoke".into(),
            total: 8,
            completed: 3,
            failed: 1,
            elapsed_s: 10.0,
            cells_per_s: Some(0.4),
            eta_s: Some(10.0),
            workers: vec![
                WorkerProgress {
                    worker: 0,
                    busy: true,
                    cell: Some("lossy/OMNC/0000000001".into()),
                    cells_done: 2,
                    busy_s: 8.5,
                },
                WorkerProgress {
                    worker: 1,
                    busy: false,
                    cell: None,
                    cells_done: 2,
                    busy_s: 7.0,
                },
            ],
        };
        let text = render_progress(&snap);
        assert!(text.contains("smoke ["), "{text}");
        assert!(text.contains("4/8 cells (50%)"), "{text}");
        assert!(text.contains("0.40 cells/s, eta 10s"), "{text}");
        assert!(text.contains("busy on lossy/OMNC/0000000001"), "{text}");
        assert!(text.contains("w01  idle"), "{text}");
    }

    #[test]
    fn flight_dumps_parse_and_render_round_trip() {
        let dump = "{\"flight\":\"bad/OMNC/0000000000\",\"panic\":\"boom\",\
                    \"dropped\":3,\"events\":2}\n\
                    {\"seq\":3,\"t\":0.0,\"kind\":\"cell/start\",\"detail\":\"protocol=OMNC\"}\n\
                    {\"seq\":4,\"t\":2.5,\"kind\":\"sim/done\",\"detail\":\"OMNC\"}\n";
        let (header, events) = parse_flight(dump.as_bytes()).expect("parses");
        assert_eq!(header.flight, "bad/OMNC/0000000000");
        assert_eq!(header.panic.as_deref(), Some("boom"));
        assert_eq!(events.len(), 2);
        let text = render_flight(&header, &events);
        assert!(text.contains("flight bad/OMNC/0000000000"), "{text}");
        assert!(text.contains("panic: boom"), "{text}");
        assert!(text.contains("2 event(s) kept, 3 older"), "{text}");
        assert!(text.contains("cell/start"), "{text}");
        assert!(text.contains("t=2.5"), "{text}");

        let err = parse_flight("not json\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("flight header"), "{err}");
        assert!(parse_flight("".as_bytes()).is_err(), "empty dump rejected");
    }
}
