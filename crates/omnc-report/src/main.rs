//! `omnc-report` — analyze causal packet-lifecycle traces and gate
//! performance regressions.
//!
//! ```sh
//! omnc-sim --sessions 2 --trace run.jsonl --profile run.profile.json --timeline run.timeline.json
//! omnc-report analyze --trace run.jsonl --json report.json --csv forwarders.csv
//! omnc-report compare --baseline BENCH_baseline.json --current report.json
//! omnc-report profile run.profile.json --top 10
//! omnc-report profile compare --baseline PROFILE_baseline.json --current run.profile.json
//! omnc-report timeline run.timeline.json --filter queue
//! omnc-report trend --trajectory results/bench/trajectory.jsonl --strict
//! ```
//!
//! `analyze` prints ASCII tables to stdout; `timeline` charts the
//! windowed dynamics series a run records; `compare`, `profile compare`
//! and `trend` exit nonzero when any metric (span, history) regressed
//! beyond the threshold, all three emitting the same `--json` gate
//! schema.

#![forbid(unsafe_code)]

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};

use omnc_report::{
    analyze, analyze_trends, compare, compare_profiles, gate_report, missing_metrics, parse_flight,
    parse_opt, parse_trace, parse_trajectory, profile_gate_report, render_ascii, render_csv,
    render_flight, render_profile, render_progress, render_timeline, render_timeline_summary,
    render_trends, summarize_timeline, timeline_csv, trend_gate_report, GateReport, ProfileMetric,
    ProfileReport, ProgressSnapshot, Report, TimelineReport, TREND_MIN_POINTS,
};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("analyze") => run_analyze(&argv[1..]),
        Some("compare") => run_compare(&argv[1..]),
        Some("profile") => run_profile(&argv[1..]),
        Some("timeline") => run_timeline(&argv[1..]),
        Some("trend") => run_trend(&argv[1..]),
        Some("live") => run_live(&argv[1..]),
        Some("flight") => run_flight(&argv[1..]),
        Some("--help" | "-h") | None => {
            print_help();
            Ok(0)
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match code {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn print_help() {
    println!(
        "omnc-report — analyze omnc-sim packet-lifecycle traces

USAGE:
    omnc-report analyze --trace <PATH> [--opt <PATH>] [--json <OUT>] [--csv <OUT>] [--quiet]
    omnc-report compare --baseline <PATH> --current <PATH> [--threshold <T>]
                        [--strict] [--json <OUT>]
    omnc-report profile <PATH> [--top <N>] [--folded <OUT>]
    omnc-report profile compare --baseline <PATH> --current <PATH>
                                [--threshold <T>] [--metric <M>] [--strict]
                                [--json <OUT>]
    omnc-report timeline <PATH> [--filter <S>] [--csv <OUT>] [--json <OUT>]
                                [--quiet]
    omnc-report trend [--trajectory <PATH>] [--threshold <T>]
                      [--min-points <N>] [--strict] [--json <OUT>]
    omnc-report live <ADDR> [--watch] [--interval <SECS>] [--series]
    omnc-report flight <PATH>

ANALYZE:
    --trace <PATH>      JSONL trace from `omnc-sim --trace` ('-' = stdin)
    --opt <PATH>        optimizer IterationRecord JSONL (fig1_convergence --json)
    --json <OUT>        write the full report (incl. the metric map) as JSON
    --csv <OUT>         write the per-forwarder table as CSV
    --quiet             suppress the ASCII tables

COMPARE:
    --baseline <PATH>   committed report.json to gate against
    --current <PATH>    report.json of the run under test
    --threshold <T>     relative regression tolerance    [default: 0.15]
    --strict            baseline metrics missing from the current report
                        fail the gate instead of only warning
    --json <OUT>        write a machine-readable gate report (per-metric
                        verdicts) to <OUT> ('-' = stdout)

PROFILE:
    <PATH>              span profile JSON from `omnc-sim --profile`
    --top <N>           rows in the self-time ranking    [default: 10]
    --folded <OUT>      re-export Brendan-Gregg folded stacks
                        (flamegraph.pl / speedscope input)

PROFILE COMPARE:
    --baseline <PATH>   committed profile JSON to gate against
    --current <PATH>    profile JSON of the run under test
    --threshold <T>     relative growth tolerance        [default: 0.15]
    --metric <M>        calls | self | total | allocs | alloc-bytes
                        [default: calls] (calls is exact across identical
                        seeded runs under the virtual clock; allocs /
                        alloc-bytes need a run with allocation counting)
    --strict            baseline spans missing from the current profile
                        fail the gate instead of only warning
    --json <OUT>        write a machine-readable gate report (per-span
                        verdicts) to <OUT> ('-' = stdout)

TIMELINE:
    <PATH>              timeline JSON from `omnc-sim --timeline` or a
                        campaign's merged timeline.json ('-' = stdin)
    --filter <S>        only series whose name contains <S>
    --csv <OUT>         export buckets as CSV
                        (series,window,bucket_start,count,min,max,sum,mean)
    --json <OUT>        write the convergence summary (time-to-90%-rank,
                        queue peaks, rate-control settling) as JSON
    --quiet             suppress the sparkline charts

TREND:
    --trajectory <PATH> BENCH trajectory JSONL, one record per bench run
                        [default: results/bench/trajectory.jsonl]
    --threshold <T>     relative drift tolerance over a full history
                        [default: 0.15]
    --min-points <N>    shorter histories are never gated  [default: 4]
    --strict            metrics dropped from a bench's latest record
                        fail the gate instead of only warning
    --json <OUT>        write a machine-readable gate report (per-history
                        verdicts) to <OUT> ('-' = stdout)

LIVE:
    <ADDR>              observer address printed by a `--serve` run
                        (e.g. 127.0.0.1:9100)
    --watch             poll /progress until the run completes (or the
                        observer goes away) instead of one-shot
    --interval <SECS>   polling interval under --watch     [default: 2]
    --series            also fetch /series and chart the live timeline
                        windows as sparklines

FLIGHT:
    <PATH>              flight-recorder dump (flight-<cell>.jsonl from a
                        panicked campaign cell, or the --flight-recorder
                        path of omnc-sim)

compare / profile compare / trend exit 0 when nothing regressed,
1 otherwise."
    );
}

/// Minimal HTTP/1.0 GET against the observer; returns the response body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::net::TcpStream;
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("sending request to '{addr}': {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading response from '{addr}': {e}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or(&response);
    Ok(body.to_owned())
}

fn fetch_progress(addr: &str) -> Result<Option<ProgressSnapshot>, String> {
    let body = http_get(addr, "/progress")?;
    if body.trim() == "{}" {
        return Ok(None); // observer up, progress board disabled
    }
    serde_json::from_str(&body)
        .map(Some)
        .map_err(|e| format!("parsing /progress: {e}"))
}

fn run_live(args: &[String]) -> Result<i32, String> {
    let mut addr: Option<String> = None;
    let mut watch = false;
    let mut interval_s = 2.0f64;
    let mut series = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--watch" => watch = true,
            "--interval" => {
                let v = next_value(&mut it, "--interval")?;
                interval_s = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0)
                    .ok_or_else(|| format!("could not parse --interval '{v}'"))?;
            }
            "--series" => series = true,
            other if !other.starts_with("--") && addr.is_none() => addr = Some(other.to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let addr = addr.ok_or("live requires the observer address (e.g. 127.0.0.1:9100)")?;
    let mut polled_once = false;
    loop {
        let progress = match fetch_progress(&addr) {
            Ok(p) => p,
            // A vanished observer after a successful poll means the run
            // finished and took its --serve thread with it: clean exit.
            Err(_) if watch && polled_once => {
                println!("observer at {addr} gone — run finished");
                return Ok(0);
            }
            Err(e) => return Err(e),
        };
        let done = match &progress {
            Some(p) => {
                print!("{}", render_progress(p));
                p.total > 0 && p.completed + p.failed >= p.total
            }
            None => {
                println!("observer at {addr} is serving, but no progress board is attached");
                true
            }
        };
        if series {
            let body = http_get(&addr, "/series")?;
            let report: TimelineReport =
                serde_json::from_str(&body).map_err(|e| format!("parsing /series: {e}"))?;
            print!("{}", render_timeline(&report, None));
        }
        polled_once = true;
        if !watch || done {
            return Ok(0);
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval_s));
    }
}

fn run_flight(args: &[String]) -> Result<i32, String> {
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--flight" => path = Some(next_value(&mut it, "--flight")?.clone()),
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let path = path.ok_or("flight requires a dump path (flight-<cell>.jsonl)")?;
    let (header, events) = parse_flight(reader_for(&path)?)
        .map_err(|e| format!("reading flight dump '{path}': {e}"))?;
    print!("{}", render_flight(&header, &events));
    Ok(0)
}

fn reader_for(path: &str) -> Result<Box<dyn BufRead>, String> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        let file = File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
        Ok(Box::new(BufReader::new(file)))
    }
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, name: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{name} requires a value"))
}

fn run_analyze(args: &[String]) -> Result<i32, String> {
    let mut trace_path: Option<String> = None;
    let mut opt_path: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut csv_out: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => trace_path = Some(next_value(&mut it, "--trace")?.clone()),
            "--opt" => opt_path = Some(next_value(&mut it, "--opt")?.clone()),
            "--json" => json_out = Some(next_value(&mut it, "--json")?.clone()),
            "--csv" => csv_out = Some(next_value(&mut it, "--csv")?.clone()),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let trace_path = trace_path.ok_or("analyze requires --trace")?;
    let trace = parse_trace(reader_for(&trace_path)?).map_err(|e| e.to_string())?;
    let opt = match opt_path {
        Some(path) => parse_opt(reader_for(&path)?).map_err(|e| e.to_string())?,
        None => Vec::new(),
    };
    let report = analyze(&trace, &opt);
    if !quiet {
        print!("{}", render_ascii(&report));
    }
    if let Some(path) = json_out {
        let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
        write_file(&path, json.as_bytes())?;
    }
    if let Some(path) = csv_out {
        write_file(&path, render_csv(&report).as_bytes())?;
    }
    Ok(0)
}

fn run_compare(args: &[String]) -> Result<i32, String> {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut threshold = 0.15;
    let mut strict = false;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => baseline_path = Some(next_value(&mut it, "--baseline")?.clone()),
            "--current" => current_path = Some(next_value(&mut it, "--current")?.clone()),
            "--threshold" => {
                let v = next_value(&mut it, "--threshold")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("could not parse threshold '{v}'"))?;
            }
            "--strict" => strict = true,
            "--json" => json_out = Some(next_value(&mut it, "--json")?.clone()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let baseline = load_report(&baseline_path.ok_or("compare requires --baseline")?)?;
    let current = load_report(&current_path.ok_or("compare requires --current")?)?;
    let gate = gate_report(&baseline.metrics, &current.metrics, threshold, strict);
    let missing = missing_metrics(&baseline.metrics, &current.metrics);
    for metric in &missing {
        println!("warning: metric '{metric}' missing from current report");
    }
    let regressions = compare(&baseline.metrics, &current.metrics, threshold);
    if !regressions.is_empty() {
        println!(
            "REGRESSION: {} of {} metrics beyond {:.0}% tolerance",
            regressions.len(),
            baseline.metrics.len() - missing.len(),
            threshold * 100.0
        );
        println!("{:>34} {:>14} {:>14}", "metric", "baseline", "current");
        for r in &regressions {
            println!("{:>34} {:>14.3} {:>14.3}", r.metric, r.baseline, r.current);
        }
    } else {
        println!(
            "OK: {} metrics within {:.0}% of baseline",
            baseline.metrics.len() - missing.len(),
            threshold * 100.0
        );
        if strict && !missing.is_empty() {
            println!("STRICT: {} baseline metric(s) missing", missing.len());
        }
    }
    finish_gate(&gate, json_out.as_deref())
}

fn run_profile(args: &[String]) -> Result<i32, String> {
    if args.first().map(String::as_str) == Some("compare") {
        return run_profile_compare(&args[1..]);
    }
    let mut path: Option<String> = None;
    let mut top = 10usize;
    let mut folded_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--profile" => path = Some(next_value(&mut it, "--profile")?.clone()),
            "--top" => {
                let v = next_value(&mut it, "--top")?;
                top = v
                    .parse()
                    .map_err(|_| format!("could not parse --top '{v}'"))?;
            }
            "--folded" => folded_out = Some(next_value(&mut it, "--folded")?.clone()),
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let path = path.ok_or("profile requires a profile JSON path (from `omnc-sim --profile`)")?;
    let report = load_profile(&path)?;
    print!("{}", render_profile(&report, top));
    if let Some(out) = folded_out {
        write_file(&out, report.folded().as_bytes())?;
    }
    Ok(0)
}

fn run_profile_compare(args: &[String]) -> Result<i32, String> {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut threshold = 0.15;
    let mut metric = ProfileMetric::Calls;
    let mut strict = false;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => baseline_path = Some(next_value(&mut it, "--baseline")?.clone()),
            "--current" => current_path = Some(next_value(&mut it, "--current")?.clone()),
            "--threshold" => {
                let v = next_value(&mut it, "--threshold")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("could not parse threshold '{v}'"))?;
            }
            "--metric" => {
                let v = next_value(&mut it, "--metric")?;
                metric = ProfileMetric::parse(v).ok_or_else(|| {
                    format!("unknown profile metric '{v}' (calls|self|total|allocs|alloc-bytes)")
                })?;
            }
            "--strict" => strict = true,
            "--json" => json_out = Some(next_value(&mut it, "--json")?.clone()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let baseline = load_profile(&baseline_path.ok_or("profile compare requires --baseline")?)?;
    let current = load_profile(&current_path.ok_or("profile compare requires --current")?)?;
    let gate = profile_gate_report(&baseline, &current, threshold, metric, strict);
    let cmp = compare_profiles(&baseline, &current, threshold, metric);
    for path in &cmp.missing {
        println!("warning: span '{path}' missing from current profile");
    }
    if !cmp.regressions.is_empty() {
        println!(
            "REGRESSION: {} of {} spans grew beyond {:.0}% tolerance ({})",
            cmp.regressions.len(),
            baseline.spans.len() - cmp.missing.len(),
            threshold * 100.0,
            metric.name()
        );
        println!("{:>12} {:>12}  span", "baseline", "current");
        for r in &cmp.regressions {
            println!("{:>12} {:>12}  {}", r.baseline, r.current, r.path);
        }
    } else {
        println!(
            "OK: {} spans within {:.0}% of baseline ({})",
            baseline.spans.len() - cmp.missing.len(),
            threshold * 100.0,
            metric.name()
        );
        if strict && !cmp.missing.is_empty() {
            println!("STRICT: {} baseline span(s) missing", cmp.missing.len());
        }
    }
    finish_gate(&gate, json_out.as_deref())
}

fn run_timeline(args: &[String]) -> Result<i32, String> {
    let mut path: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut csv_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--timeline" => path = Some(next_value(&mut it, "--timeline")?.clone()),
            "--filter" => filter = Some(next_value(&mut it, "--filter")?.clone()),
            "--csv" => csv_out = Some(next_value(&mut it, "--csv")?.clone()),
            "--json" => json_out = Some(next_value(&mut it, "--json")?.clone()),
            "--quiet" => quiet = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let path = path.ok_or("timeline requires a timeline JSON path (from `omnc-sim --timeline`)")?;
    let report = load_timeline(&path)?;
    if !quiet {
        print!("{}", render_timeline(&report, filter.as_deref()));
    }
    let summary = summarize_timeline(&report);
    if !quiet {
        let text = render_timeline_summary(&summary);
        if !text.is_empty() {
            println!("\nconvergence:");
            print!("{text}");
        }
    }
    if let Some(out) = csv_out {
        write_file(&out, timeline_csv(&report, filter.as_deref()).as_bytes())?;
    }
    if let Some(out) = json_out {
        let json = serde_json::to_string(&summary).map_err(|e| e.to_string())?;
        write_file(&out, json.as_bytes())?;
    }
    Ok(0)
}

fn run_trend(args: &[String]) -> Result<i32, String> {
    let mut trajectory_path = "results/bench/trajectory.jsonl".to_string();
    let mut threshold = 0.15;
    let mut min_points = TREND_MIN_POINTS;
    let mut strict = false;
    let mut json_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trajectory" => trajectory_path = next_value(&mut it, "--trajectory")?.clone(),
            "--threshold" => {
                let v = next_value(&mut it, "--threshold")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("could not parse threshold '{v}'"))?;
            }
            "--min-points" => {
                let v = next_value(&mut it, "--min-points")?;
                min_points = v
                    .parse()
                    .map_err(|_| format!("could not parse --min-points '{v}'"))?;
            }
            "--strict" => strict = true,
            "--json" => json_out = Some(next_value(&mut it, "--json")?.clone()),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    let records = parse_trajectory(reader_for(&trajectory_path)?)
        .map_err(|e| format!("parsing '{trajectory_path}': {e}"))?;
    if records.is_empty() {
        return Err(format!("'{trajectory_path}' holds no trajectory records"));
    }
    let trends = analyze_trends(&records, threshold, min_points);
    let gate = trend_gate_report(&trends, threshold, strict);
    print!("{}", render_trends(&trends));
    for v in &gate.verdicts {
        if v.status == "missing" {
            println!(
                "warning: metric '{}' missing from its bench's latest record",
                v.metric
            );
        }
    }
    if gate.regressed > 0 {
        println!(
            "REGRESSION: {} of {} metric histories drifting beyond {:.0}% tolerance",
            gate.regressed,
            gate.verdicts.len(),
            threshold * 100.0
        );
    } else {
        println!(
            "OK: {} metric histories within {:.0}% drift over {} bench runs",
            gate.verdicts.len(),
            threshold * 100.0,
            records.len()
        );
        if strict && gate.missing > 0 {
            println!("STRICT: {} tracked metric(s) missing", gate.missing);
        }
    }
    finish_gate(&gate, json_out.as_deref())
}

fn load_timeline(path: &str) -> Result<TimelineReport, String> {
    let mut text = String::new();
    reader_for(path)?
        .read_to_string(&mut text)
        .map_err(|e| format!("reading '{path}': {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing '{path}': {e}"))
}

fn load_profile(path: &str) -> Result<ProfileReport, String> {
    let mut text = String::new();
    reader_for(path)?
        .read_to_string(&mut text)
        .map_err(|e| format!("reading '{path}': {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing '{path}': {e}"))
}

fn load_report(path: &str) -> Result<Report, String> {
    let mut text = String::new();
    reader_for(path)?
        .read_to_string(&mut text)
        .map_err(|e| format!("reading '{path}': {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing '{path}': {e}"))
}

/// The shared tail of every gate command (`compare`, `profile compare`,
/// `trend`): optionally writes the machine-readable [`GateReport`] —
/// one schema for all three gates — and derives the exit code from its
/// `passed` verdict.
fn finish_gate(gate: &GateReport, json_out: Option<&str>) -> Result<i32, String> {
    if let Some(path) = json_out {
        let json = serde_json::to_string(gate).map_err(|e| e.to_string())?;
        if path == "-" {
            println!("{json}");
        } else {
            write_file(path, json.as_bytes())?;
        }
    }
    Ok(i32::from(!gate.passed))
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), String> {
    let mut file = File::create(path).map_err(|e| format!("cannot create '{path}': {e}"))?;
    file.write_all(bytes)
        .map_err(|e| format!("writing '{path}': {e}"))
}
