//! Fixture event-queue engine: `EventQueue::pop` is a registered hot
//! entry, so the drain path inherits the allocation-free obligation —
//! handing a popped packet out through a fresh `Box` is a planted
//! hot-alloc deny two hops down the chain.

pub struct Packet {
    pub payload: Vec<u8>,
}

pub struct EventQueue {
    heap: Vec<(u64, Packet)>,
}

impl EventQueue {
    pub fn pop(&mut self) -> Option<Box<Packet>> {
        let (_, packet) = self.heap.pop()?;
        Some(deliver(packet))
    }
}

fn deliver(packet: Packet) -> Box<Packet> {
    Box::new(packet)
}
