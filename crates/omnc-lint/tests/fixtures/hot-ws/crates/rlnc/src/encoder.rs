//! Fixture encoder: `Encoder::emit` is a registered hot entry; the call
//! chain crosses into the gf256 fixture crate.

use gf256::slice::lead_coefficient;

pub struct Encoder {
    rows: Vec<Vec<u8>>,
}

impl Encoder {
    pub fn emit(&self) -> u8 {
        accumulate(&self.rows)
    }
}

fn accumulate(rows: &[Vec<u8>]) -> u8 {
    let mut acc = 0;
    for row in rows {
        acc ^= lead_coefficient(row);
    }
    acc
}
