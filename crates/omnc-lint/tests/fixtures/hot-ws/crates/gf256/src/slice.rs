//! Fixture gf256 helper with a planted unwrap reachable from the
//! encoder's hot entry point.

pub fn lead_coefficient(row: &[u8]) -> u8 {
    *row.iter().find(|&&c| c != 0).unwrap()
}
