#![forbid(unsafe_code)]
// Crate root of the seeded bad workspace; clean on its own.

mod sim;
