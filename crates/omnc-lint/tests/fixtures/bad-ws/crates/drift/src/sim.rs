// Seeded deny violation: a wall-clock read inside a sim crate. This file
// lives under tests/fixtures (which the workspace walker skips for the real
// workspace) and is only reached when `--root` points at `bad-ws`.

fn schedule_tick() -> std::time::Instant {
    std::time::Instant::now()
}
