// Fixture: the time-series recorder is held to the determinism bar even
// though it lives in the (otherwise exempt) telemetry crate. A series
// sampled on the wall clock would differ between identical seeded runs
// and break the byte-compared timeline artifacts; epochs must come from
// the virtual clock. Not compiled.

struct Series;

impl Series {
    fn record(&self, _epoch: f64, _value: f64) {}
}

fn wall_clock_sampled(series: &Series) {
    let epoch = std::time::Instant::now().elapsed().as_secs_f64(); // finding: wall-clock
    series.record(epoch, 1.0);
}

fn wall_clock_sampled_again(series: &Series) {
    let now = std::time::SystemTime::now(); // finding: wall-clock
    drop(now);
    series.record(0.0, 1.0);
}

fn virtual_clock_sampled(series: &Series, sim_now: f64) {
    series.record(sim_now, 1.0);
}

fn hot_alloc_in_recorder() -> Box<f64> {
    Box::new(0.0) // finding: hot-alloc
}
