// Fixture: float-eq rule. Linted under a fake optimizer-crate path; not compiled.

fn exact_compare_positive(x: f64) -> bool {
    x == 0.0 // finding: float-eq
}

fn not_equal_positive(x: f64) -> bool {
    x != 1.5 // finding: float-eq
}

fn exact_compare_allowed(scale: f64) -> bool {
    // lint: allow(float-eq) -- fixture: exact-zero guard before division
    scale == 0.0
}

fn tolerance_is_fine(x: f64, tol: f64) -> bool {
    (x - 1.0).abs() < tol
}

fn integer_compare_is_fine(i: u32) -> bool {
    i == 0
}
