// Fixture: determinism rules (wall-clock, nondet-rng, env-dep).
// Linted under a fake sim-crate path; not compiled.

fn clock_positive() {
    let t = std::time::Instant::now(); // finding: wall-clock
    let s = std::time::SystemTime::now(); // finding: wall-clock
    drop((t, s));
}

fn clock_allowed() {
    // lint: allow(wall-clock) -- fixture: suppressed on the next line
    let t = std::time::Instant::now();
    drop(t);
}

fn rng_positive() {
    let mut rng = rand::thread_rng(); // finding: nondet-rng
    let x: u64 = rand::random(); // finding: nondet-rng
    drop((rng, x));
}

fn rng_allowed() {
    let mut rng = rand::thread_rng(); // lint: allow(nondet-rng) fixture
    drop(rng);
}

fn env_positive() {
    let v = std::env::var("OMNC_SEED"); // finding: env-dep
    drop(v);
}

fn env_allowed() {
    // lint: allow(env-dep) -- fixture
    let v = std::env::var("OMNC_SEED");
    drop(v);
}
