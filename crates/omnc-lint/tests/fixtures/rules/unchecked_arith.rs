//! Unchecked-arithmetic fixture: bare ops on index-like values fire,
//! wrapping helpers and plain operands stay quiet.

pub struct Queue {
    next_seq: u64,
    pivot: usize,
}

impl Queue {
    pub fn bump(&mut self) {
        self.next_seq += 1;
    }

    pub fn offset(&self, block: usize) -> usize {
        self.pivot * block
    }

    pub fn bump_safely(&mut self) {
        self.next_seq = self.next_seq.wrapping_add(1);
    }

    pub fn offset_justified(&self, block: usize) -> usize {
        // Bounded by payload_len by construction.
        self.pivot * block // lint: allow(unchecked-arith)
    }

    pub fn plain_sum(a: u64, b: u64) -> u64 {
        a + b
    }
}
