// Fixture: hash-iter rule. Linted under a fake sim-crate path; not compiled.

use std::collections::BTreeMap;
use std::collections::HashMap;

fn iteration_positive(seen: HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in seen.iter() {
        // finding above: hash-order iteration
        total += v;
    }
    total
}

fn for_loop_positive() {
    let roles: HashMap<u32, u64> = HashMap::new();
    for (k, v) in roles {
        // finding above: hash-order iteration
        drop((k, v));
    }
}

fn iteration_allowed(seen: HashMap<u32, u64>) -> u64 {
    // lint: allow(hash-iter) -- fixture: order folded through a commutative sum
    seen.values().sum()
}

fn lookup_is_fine(seen: &HashMap<u32, u64>) -> Option<u64> {
    seen.get(&1).copied()
}

fn btree_is_fine(ordered: BTreeMap<u32, u64>) {
    for (k, v) in ordered.iter() {
        drop((k, v));
    }
}
