// Fixture: unsafe-audit rule. Linted as a crate root (fake src/lib.rs path);
// it carries no forbid attribute for unsafe code, so the crate-root audit
// denies it. The first unsafe block below has no justifying comment and is
// flagged; the second one is properly documented and accepted. Not compiled.

fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } // finding: unsafe-audit (no justifying comment)
}
