// Fixture: concurrency rule (thread spawning / channel plumbing).
// Linted under fake sim-crate and campaign paths; not compiled.

fn spawn_positive() {
    let h = std::thread::spawn(|| 42); // finding: concurrency
    drop(h);
}

fn scope_positive() {
    std::thread::scope(|s| {
        // finding: concurrency (the scope call above)
        drop(s);
    });
}

fn builder_positive() {
    let b = std::thread::Builder::new(); // finding: concurrency
    drop(b);
}

fn channel_positive() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>(); // finding: concurrency
    drop((tx, rx));
}

fn listener_positive() {
    let l = std::net::TcpListener::bind("127.0.0.1:0"); // finding: concurrency
    drop(l);
}

fn spawn_allowed() {
    // lint: allow(concurrency) -- fixture: suppressed on the next line
    let h = std::thread::spawn(|| 42);
    drop(h);
}
