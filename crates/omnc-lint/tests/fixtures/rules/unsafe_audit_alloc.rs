// Fixture: the counting-allocator pattern for the unsafe-audit rule.
// Mirrors omnc-telemetry's alloc module: unsafe allowed back in exactly
// one module, with every unsafe item SAFETY-documented inside the audit
// window (same line or the three lines above). Produces zero findings;
// linted as a crate root it passes the audit because the allow is paired
// with SAFETY documentation. Not compiled.

// SAFETY: every unsafe item in this module carries its own comment.
#![allow(unsafe_code)]

struct CountingAlloc;

// SAFETY: every call is forwarded to `System` with the caller's layout
// unchanged, so `System`'s `GlobalAlloc` guarantees carry over; the
// counter updates touch only thread-local `Cell`s and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract identical to `System.alloc`; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }

    // SAFETY: contract identical to `System.dealloc`; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
