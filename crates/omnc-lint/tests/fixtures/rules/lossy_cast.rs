//! Narrowing-cast fixture: two hits, one justified allow, widening is fine.

pub fn header_len(total: usize) -> u32 {
    total as u32
}

pub fn tag(seq: u16) -> u8 {
    (seq >> 8) as u8
}

pub fn coeff_index(i: usize) -> u8 {
    // Bounded by generation_size < 256 at the call site.
    i as u8 // lint: allow(lossy-cast)
}

pub fn widen(b: u8) -> u64 {
    b as u64
}

pub fn to_float(n: u32) -> f64 {
    n as f64
}
