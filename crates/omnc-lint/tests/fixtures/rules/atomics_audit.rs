//! Atomics-audit fixture: an undocumented `Ordering::` fires; a
//! `// ordering:` note within the window or an explicit allow is quiet.

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);

pub fn record() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn read() -> u64 {
    // ordering: monotonic counter; observers tolerate staleness.
    HITS.load(Ordering::Acquire)
}

pub fn reset() {
    HITS.store(0, Ordering::SeqCst); // lint: allow(atomics-audit)
}
