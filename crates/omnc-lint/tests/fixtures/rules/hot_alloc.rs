// Fixture: hot-alloc rule. In the spans-instrumented hot-path modules,
// direct heap constructs are denied unless they carry the documented
// `// lint: allow(hot-alloc)` escape hatch; sized Vec reservations are
// fine. Not compiled.

fn boxed() -> Box<u32> {
    Box::new(7) // finding: hot-alloc
}

fn degenerate() -> Vec<u8> {
    Vec::with_capacity(0) // finding: hot-alloc (allocates on first push)
}

fn sanctioned() -> Box<u32> {
    Box::new(7) // lint: allow(hot-alloc)
}

fn sized(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}
