//! Clone-in-hot-loop fixture: per-iteration `.clone()`/`.to_vec()` fire;
//! clones outside loops and justified allows stay quiet.

pub fn fanout(rows: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for row in rows {
        out.push(row.clone());
    }
    out
}

pub fn tails(rows: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rows.len() {
        out.push(rows[i][1..].to_vec());
        i += 1;
    }
    out
}

pub fn once(row: &[u8]) -> Vec<u8> {
    row.to_vec()
}

pub fn handoff(rows: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for row in rows {
        // Ownership handed to the queue; the copy is the semantics.
        out.push(row.clone()); // lint: allow(clone-in-hot-loop)
    }
    out
}
