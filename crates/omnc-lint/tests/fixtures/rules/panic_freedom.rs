// Fixture: panic-freedom rules (unwrap, panic, index).
// Linted under a fake hot-path module path; not compiled.

fn unwrap_positive(x: Option<u32>) -> u32 {
    x.unwrap() // finding: unwrap (deny)
}

fn unwrap_allowed(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(unwrap) fixture: checked by caller
}

fn expect_positive(x: Option<u32>) -> u32 {
    x.expect("fixture") // finding: panic (warn)
}

fn macro_positive(flag: bool) {
    if flag {
        panic!("fixture"); // finding: panic (warn)
    }
}

fn index_positive(v: &[u8]) -> u8 {
    v[0] // finding: index (warn)
}

fn index_allowed(v: &[u8]) -> u8 {
    v[0] // lint: allow(index) fixture: length checked above
}

fn get_is_fine(v: &[u8]) -> Option<u8> {
    v.first().copied()
}
