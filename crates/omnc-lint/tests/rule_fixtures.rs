//! Every rule exercised against the fixture files: positive hits fire,
//! `// lint: allow(...)`-annotated occurrences stay quiet.

use std::path::Path;

use omnc_lint::analyzer::audit_crate_root;
use omnc_lint::{analyze_source, Finding, RuleTable, Severity};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/rules")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn lint_as(fake_path: &str, fixture_name: &str) -> Vec<Finding> {
    analyze_source(fake_path, &fixture(fixture_name), &RuleTable::default())
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn determinism_rules_fire_and_respect_allows() {
    let fs = lint_as("crates/drift/src/model.rs", "determinism.rs");
    assert_eq!(count(&fs, "wall-clock"), 2, "{fs:#?}");
    assert_eq!(count(&fs, "nondet-rng"), 2, "{fs:#?}");
    assert_eq!(count(&fs, "env-dep"), 1, "{fs:#?}");
    assert!(fs.iter().all(|f| f.severity == Severity::Deny));
}

#[test]
fn determinism_rules_are_scoped_to_sim_crates() {
    // The same source under the telemetry crate (allowlisted: clocks are
    // its job) produces nothing.
    let fs = lint_as("crates/omnc-telemetry/src/timer.rs", "determinism.rs");
    assert!(fs.is_empty(), "{fs:#?}");
}

#[test]
fn hash_iteration_fires_and_respects_allows() {
    let fs = lint_as("crates/omnc/src/runner.rs", "hash_iter.rs");
    assert_eq!(count(&fs, "hash-iter"), 2, "{fs:#?}");
}

#[test]
fn panic_freedom_fires_in_hot_path_only() {
    let fs = lint_as("crates/rlnc/src/decoder.rs", "panic_freedom.rs");
    assert_eq!(count(&fs, "unwrap"), 1, "{fs:#?}");
    assert_eq!(count(&fs, "panic"), 2, "{fs:#?}");
    assert_eq!(count(&fs, "index"), 1, "{fs:#?}");
    // unwrap denies; expect/panic!/indexing warn.
    assert!(fs
        .iter()
        .all(|f| (f.rule == "unwrap") == (f.severity == Severity::Deny)));

    // Outside the designated hot-path modules the rules are silent.
    let cold = lint_as("crates/omnc/src/runner.rs", "panic_freedom.rs");
    assert!(cold.is_empty(), "{cold:#?}");
}

#[test]
fn float_eq_fires_in_optimizer_crates_only() {
    let fs = lint_as("crates/omnc-opt/src/flow.rs", "float_eq.rs");
    assert_eq!(count(&fs, "float-eq"), 2, "{fs:#?}");
    let elsewhere = lint_as("crates/drift/src/sim.rs", "float_eq.rs");
    assert_eq!(count(&elsewhere, "float-eq"), 0, "{elsewhere:#?}");
}

#[test]
fn concurrency_fires_everywhere_but_the_sanctioned_modules() {
    // Denied in the simulation core (threads, channels, and a rogue
    // TcpListener are all findings)...
    let fs = lint_as("crates/drift/src/sim.rs", "concurrency.rs");
    assert_eq!(count(&fs, "concurrency"), 5, "{fs:#?}");
    assert!(fs.iter().all(|f| f.severity == Severity::Deny));
    // ...and in the campaign crate at large (spec parsing, merge, CLI)...
    let fs = lint_as("crates/omnc-campaign/src/journal.rs", "concurrency.rs");
    assert_eq!(count(&fs, "concurrency"), 5, "{fs:#?}");
    // ...and in the telemetry crate at large...
    let fs = lint_as("crates/omnc-telemetry/src/sink.rs", "concurrency.rs");
    assert_eq!(count(&fs, "concurrency"), 5, "{fs:#?}");
    // ...but the executor and the observer are the sanctioned surfaces.
    let fs = lint_as("crates/omnc-campaign/src/executor.rs", "concurrency.rs");
    assert_eq!(count(&fs, "concurrency"), 0, "{fs:#?}");
    let fs = lint_as("crates/omnc-telemetry/src/export.rs", "concurrency.rs");
    assert_eq!(count(&fs, "concurrency"), 0, "{fs:#?}");
    // Crates outside the scope (e.g. the reporting tool, whose `live`
    // command is a TcpStream *client*) are untouched.
    let fs = lint_as("crates/omnc-report/src/main.rs", "concurrency.rs");
    assert_eq!(count(&fs, "concurrency"), 0, "{fs:#?}");
}

#[test]
fn unsafe_audit_fires_on_blocks_and_crate_roots() {
    let source = fixture("unsafe_audit.rs");
    let table = RuleTable::default();
    let fs = analyze_source("crates/demo/src/lib.rs", &source, &table);
    assert_eq!(count(&fs, "unsafe-audit"), 1, "{fs:#?}");

    let root = audit_crate_root("crates/demo/src/lib.rs", &source, &table);
    assert!(root.is_some(), "crate root without forbid must be denied");

    let clean_root = "#![forbid(unsafe_code)]\npub fn ok() {}\n";
    assert!(audit_crate_root("crates/demo/src/lib.rs", clean_root, &table).is_none());
}

#[test]
fn unsafe_audit_accepts_the_counting_allocator_pattern() {
    let source = fixture("unsafe_audit_alloc.rs");
    let table = RuleTable::default();
    // Every unsafe item is SAFETY-documented within the audit window.
    let fs = analyze_source("crates/omnc-telemetry/src/alloc.rs", &source, &table);
    assert_eq!(count(&fs, "unsafe-audit"), 0, "{fs:#?}");
    // As a crate root, a SAFETY-paired `#![allow(unsafe_code)]` passes...
    assert!(audit_crate_root("crates/demo/src/lib.rs", &source, &table).is_none());
    // ...and so does the deny-at-root flavor omnc-telemetry itself uses
    // (deny, unlike forbid, can be overridden by the one audited module).
    let deny_root =
        "// SAFETY documented per module; see alloc.rs.\n#![deny(unsafe_code)]\nmod alloc;\n";
    assert!(audit_crate_root("crates/demo/src/lib.rs", deny_root, &table).is_none());
    let bare_deny = "#![deny(unsafe_code)]\nmod alloc;\n";
    assert!(audit_crate_root("crates/demo/src/lib.rs", bare_deny, &table).is_some());
}

#[test]
fn hot_alloc_fires_in_hot_path_modules_only() {
    let fs = lint_as("crates/rlnc/src/kernel.rs", "hot_alloc.rs");
    assert_eq!(count(&fs, "hot-alloc"), 2, "{fs:#?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "hot-alloc")
        .all(|f| f.severity == Severity::Deny));
    // Outside the designated hot-path modules the rule is silent.
    let cold = lint_as("crates/omnc/src/runner.rs", "hot_alloc.rs");
    assert_eq!(count(&cold, "hot-alloc"), 0, "{cold:#?}");
}

#[test]
fn lossy_cast_fires_in_wire_and_kernel_code_only() {
    let fs = lint_as("crates/omnc/src/wire.rs", "lossy_cast.rs");
    assert_eq!(count(&fs, "lossy-cast"), 2, "{fs:#?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "lossy-cast")
        .all(|f| f.severity == Severity::Deny));
    // The gf256 kernel surface is covered too...
    let kernel = lint_as("crates/gf256/src/arith.rs", "lossy_cast.rs");
    assert_eq!(count(&kernel, "lossy-cast"), 2, "{kernel:#?}");
    // ...but code outside the wire/kernel scope is not.
    let cold = lint_as("crates/omnc-opt/src/flow.rs", "lossy_cast.rs");
    assert_eq!(count(&cold, "lossy-cast"), 0, "{cold:#?}");
}

#[test]
fn unchecked_arith_fires_in_hot_paths_only() {
    let fs = lint_as("crates/drift/src/event.rs", "unchecked_arith.rs");
    assert_eq!(count(&fs, "unchecked-arith"), 2, "{fs:#?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "unchecked-arith")
        .all(|f| f.severity == Severity::Deny));
    let cold = lint_as("crates/omnc/src/runner.rs", "unchecked_arith.rs");
    assert_eq!(count(&cold, "unchecked-arith"), 0, "{cold:#?}");
}

#[test]
fn atomics_audit_fires_in_the_alloc_module_only() {
    let fs = lint_as("crates/omnc-telemetry/src/alloc.rs", "atomics_audit.rs");
    assert_eq!(count(&fs, "atomics-audit"), 1, "{fs:#?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "atomics-audit")
        .all(|f| f.severity == Severity::Deny));
    let cold = lint_as("crates/omnc-telemetry/src/sink.rs", "atomics_audit.rs");
    assert_eq!(count(&cold, "atomics-audit"), 0, "{cold:#?}");
}

#[test]
fn clone_in_hot_loop_fires_in_hot_paths_only() {
    let fs = lint_as("crates/rlnc/src/kernel.rs", "clone_in_hot_loop.rs");
    assert_eq!(count(&fs, "clone-in-hot-loop"), 2, "{fs:#?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "clone-in-hot-loop")
        .all(|f| f.severity == Severity::Deny));
    let cold = lint_as("crates/omnc/src/runner.rs", "clone_in_hot_loop.rs");
    assert_eq!(count(&cold, "clone-in-hot-loop"), 0, "{cold:#?}");
}

#[test]
fn timeseries_recorder_is_held_to_determinism_and_hot_alloc_bars() {
    // Linted under its real path, a wall-clock-sampled series is denied
    // even though the telemetry crate is otherwise exempt from the
    // determinism rules.
    let fs = lint_as(
        "crates/omnc-telemetry/src/timeseries.rs",
        "timeseries_wall_clock.rs",
    );
    assert_eq!(count(&fs, "wall-clock"), 2, "{fs:#?}");
    assert_eq!(count(&fs, "hot-alloc"), 1, "{fs:#?}");
    assert!(fs.iter().all(|f| f.severity == Severity::Deny));

    // The rest of the telemetry crate keeps its exemption: clocks are
    // its job (timer.rs wraps the wall clock deliberately).
    let exempt = lint_as(
        "crates/omnc-telemetry/src/timer.rs",
        "timeseries_wall_clock.rs",
    );
    assert!(exempt.is_empty(), "{exempt:#?}");
}
