//! End-to-end tests of the `omnc-lint` binary: exit codes, JSONL export,
//! the seeded deny fixture, and scenario validation.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_omnc-lint"))
        .args(args)
        .output()
        .expect("spawn omnc-lint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code")
}

#[test]
fn check_exits_zero_on_the_real_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = run(&["check", "--root", &root.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}");
    assert!(stdout.contains("0 deny"), "stdout:\n{stdout}");
}

#[test]
fn check_exits_nonzero_on_seeded_deny_fixture() {
    let bad = fixture_dir().join("bad-ws");
    let out = run(&["check", "--root", &bad.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("wall-clock"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("crates/drift/src/sim.rs"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn check_writes_jsonl_findings() {
    let bad = fixture_dir().join("bad-ws");
    let out = run(&[
        "check",
        "--root",
        &bad.to_string_lossy(),
        "--json",
        "-",
        "--quiet",
    ]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "expected JSONL findings, got:\n{stdout}");
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v.get("rule").is_some(), "line missing rule: {line}");
        assert!(v.get("severity").is_some(), "line missing severity: {line}");
    }
}

#[test]
fn good_scenario_is_accepted() {
    let s = fixture_dir().join("scenarios/good_diamond.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}");
}

#[test]
fn infeasible_capacity_scenario_is_rejected() {
    let s = fixture_dir().join("scenarios/infeasible_capacity.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("scenario-capacity"), "stdout:\n{stdout}");
}

#[test]
fn out_of_range_probability_scenario_is_rejected() {
    let s = fixture_dir().join("scenarios/bad_probability.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("scenario-prob"), "stdout:\n{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(exit_code(&run(&[])), 2);
    assert_eq!(exit_code(&run(&["frobnicate"])), 2);
    assert_eq!(exit_code(&run(&["check-scenario"])), 2);
    assert_eq!(
        exit_code(&run(&["check-scenario", "does-not-exist.json"])),
        2
    );
}

#[test]
fn rules_lists_every_rule() {
    let out = run(&["rules"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wall-clock",
        "nondet-rng",
        "env-dep",
        "hash-iter",
        "unwrap",
        "panic",
        "index",
        "unsafe-audit",
        "float-eq",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
