//! End-to-end tests of the `omnc-lint` binary: exit codes, JSONL export,
//! the seeded deny fixture, and scenario validation.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_omnc-lint"))
        .args(args)
        .output()
        .expect("spawn omnc-lint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no exit code")
}

#[test]
fn check_exits_zero_on_the_real_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = run(&["check", "--root", &root.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}");
    assert!(stdout.contains("0 deny"), "stdout:\n{stdout}");
}

#[test]
fn check_exits_nonzero_on_seeded_deny_fixture() {
    let bad = fixture_dir().join("bad-ws");
    let out = run(&["check", "--root", &bad.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("wall-clock"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("crates/drift/src/sim.rs"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn check_writes_jsonl_findings() {
    let bad = fixture_dir().join("bad-ws");
    let out = run(&[
        "check",
        "--root",
        &bad.to_string_lossy(),
        "--json",
        "-",
        "--quiet",
    ]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "expected JSONL findings, got:\n{stdout}");
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v.get("rule").is_some(), "line missing rule: {line}");
        assert!(v.get("severity").is_some(), "line missing severity: {line}");
    }
}

#[test]
fn good_scenario_is_accepted() {
    let s = fixture_dir().join("scenarios/good_diamond.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}");
}

#[test]
fn good_multi_session_scenario_is_accepted() {
    let s = fixture_dir().join("scenarios/good_multi_diamond.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}");
}

#[test]
fn infeasible_capacity_scenario_is_rejected() {
    let s = fixture_dir().join("scenarios/infeasible_capacity.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("scenario-capacity"), "stdout:\n{stdout}");
}

#[test]
fn out_of_range_probability_scenario_is_rejected() {
    let s = fixture_dir().join("scenarios/bad_probability.json");
    let out = run(&["check-scenario", &s.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("scenario-prob"), "stdout:\n{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(exit_code(&run(&[])), 2);
    assert_eq!(exit_code(&run(&["frobnicate"])), 2);
    assert_eq!(exit_code(&run(&["check-scenario"])), 2);
    assert_eq!(
        exit_code(&run(&["check-scenario", "does-not-exist.json"])),
        2
    );
    assert_eq!(exit_code(&run(&["check", "--format", "yaml"])), 2);
}

#[test]
fn check_scenario_reports_every_unreadable_file() {
    // All unreadable inputs are reported before exiting 2, and a valid
    // scenario mixed in does not mask the failure.
    let good = fixture_dir().join("scenarios/good_diamond.json");
    let out = run(&[
        "check-scenario",
        "missing-one.json",
        &good.to_string_lossy(),
        "missing-two.json",
    ]);
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing-one.json"), "stderr:\n{stderr}");
    assert!(stderr.contains("missing-two.json"), "stderr:\n{stderr}");
    assert!(
        stderr.contains("2 of 3 scenario file(s) unreadable"),
        "stderr:\n{stderr}"
    );
}

#[test]
fn hot_ws_blame_chain_is_rendered_and_denied() {
    let ws = fixture_dir().join("hot-ws");
    let out = run(&["check", "--root", &ws.to_string_lossy()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 1, "stdout:\n{stdout}");
    assert!(stdout.contains("deny[unwrap]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("hot path: Encoder::emit → accumulate → lead_coefficient"),
        "stdout:\n{stdout}"
    );
    // The event-queue engine entry propagates the allocation-free bar:
    // boxing a popped packet is denied with the chain rendered.
    assert!(stdout.contains("deny[hot-alloc]"), "stdout:\n{stdout}");
    assert!(
        stdout.contains("hot path: EventQueue::pop → deliver"),
        "stdout:\n{stdout}"
    );
}

#[test]
fn cache_warm_run_is_byte_identical_with_hits() {
    let ws = fixture_dir().join("hot-ws");
    let dir = std::env::temp_dir().join(format!("omnc-lint-cli-cache-{}", std::process::id()));
    let cache = dir.join("cache.json");
    let ws = ws.to_string_lossy();
    let cache = cache.to_string_lossy();
    let args = ["check", "--root", &ws, "--cache", &cache];

    let cold = run(&args);
    let warm = run(&args);
    assert_eq!(exit_code(&cold), 1);
    assert_eq!(exit_code(&warm), 1);
    // Stats go to stderr; stdout must be byte-identical across runs.
    assert_eq!(cold.stdout, warm.stdout);
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        cold_err.contains("cache: 0 hit(s), 3 miss(es)"),
        "stderr:\n{cold_err}"
    );
    assert!(
        warm_err.contains("cache: 3 hit(s), 0 miss(es)"),
        "stderr:\n{warm_err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sarif_output_parses_and_carries_the_chain() {
    let ws = fixture_dir().join("hot-ws");
    let out = run(&[
        "check",
        "--root",
        &ws.to_string_lossy(),
        "--format",
        "sarif",
    ]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid SARIF JSON");
    let results = v.get("runs").and_then(|r| r.as_array()).unwrap()[0]
        .get("results")
        .and_then(|r| r.as_array())
        .unwrap();
    assert!(!results.is_empty());
    let unwrap = results
        .iter()
        .find(|r| r.get("ruleId").and_then(|i| i.as_str()) == Some("unwrap"))
        .expect("unwrap result present");
    assert_eq!(unwrap.get("level").and_then(|l| l.as_str()), Some("error"));
    let msg = unwrap
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(|t| t.as_str())
        .unwrap();
    assert!(msg.contains("hot path: Encoder::emit"), "message: {msg}");
}

#[test]
fn only_filter_limits_reported_findings() {
    let ws = fixture_dir().join("hot-ws");
    // The only deny lives in gf256; filtering to rlnc leaves it out.
    let out = run(&[
        "check",
        "--root",
        &ws.to_string_lossy(),
        "--only",
        "crates/rlnc/",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(exit_code(&out), 0, "stdout:\n{stdout}");
    assert!(!stdout.contains("deny[unwrap]"), "stdout:\n{stdout}");
    let out = run(&[
        "check",
        "--root",
        &ws.to_string_lossy(),
        "--only",
        "crates/gf256/",
    ]);
    assert_eq!(exit_code(&out), 1);
}

#[test]
fn rules_lists_every_rule() {
    let out = run(&["rules"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wall-clock",
        "nondet-rng",
        "env-dep",
        "hash-iter",
        "unwrap",
        "panic",
        "index",
        "unsafe-audit",
        "float-eq",
        "concurrency",
        "hot-alloc",
        "lossy-cast",
        "unchecked-arith",
        "atomics-audit",
        "clone-in-hot-loop",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
