//! The workspace must pass its own static analysis: no deny-level findings
//! anywhere under `crates/`. This is the tripwire that keeps the
//! determinism/panic/unsafe/float policies enforced as code evolves.

use std::path::Path;

use omnc_lint::{check_workspace, RuleTable, Severity};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check_workspace(root, &RuleTable::default()).expect("walk workspace");
    assert!(
        report.files_checked > 50,
        "walked {} files",
        report.files_checked
    );
    let denies: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| f.render())
        .collect();
    assert!(
        denies.is_empty(),
        "deny-level lint findings in the workspace:\n{}",
        denies.join("\n")
    );
}
