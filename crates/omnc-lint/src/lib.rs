//! Workspace static analysis for the OMNC reproduction.
//!
//! The repro's headline claim is that a seeded run is *bit-reproducible*:
//! the perf-regression gate and the paper-figure comparisons are meaningless
//! if wall clocks, entropy-seeded RNGs or hash-order iteration leak into the
//! simulation core. This crate enforces that policy — plus panic-freedom on
//! hot paths, an unsafe-code audit and float-comparison hygiene — with a
//! hand-rolled lexer/line analyzer (the vendored dependency tree has no
//! `syn`), and statically validates scenario inputs against the paper's
//! model invariants before any simulation runs.
//!
//! Five code-rule families (see [`rules`]):
//!
//! * **(D) determinism** — no `Instant::now`/`SystemTime`, no entropy-seeded
//!   RNGs, no environment reads, no `HashMap`/`HashSet` iteration in the sim
//!   crates;
//! * **(P) panic-freedom** — no `.unwrap()` (deny) and flagged
//!   `.expect(`/`panic!`/indexing (warn) in designated hot-path modules;
//! * **(U) unsafe audit** — every crate root carries
//!   `#![forbid(unsafe_code)]` or SAFETY-documents each allow;
//! * **(F) float hygiene** — no `==`/`!=` against float literals in the
//!   optimizer/LP crates;
//! * **(K) kernel/wire hygiene** — no narrowing `as` casts in wire/kernel
//!   code, no bare arithmetic on seq/rank/index values, audited atomic
//!   orderings, no per-iteration clones in hot loops.
//!
//! Analysis is workspace-aware: [`symbols`] extracts declarations and call
//! sites from each file, [`callgraph`] resolves an approximate cross-crate
//! call graph, and the propagating obligations (determinism, panic-freedom,
//! hot-alloc, unchecked-arith, clone-in-hot-loop) apply transitively to
//! everything reachable from the registered hot entry points
//! ([`rules::HOT_ENTRIES`]), with a blame chain rendered on each finding.
//! Per-file results are cacheable ([`cache`], `--cache PATH`) keyed on
//! content hash + [`rules::RULES_VERSION`]; findings export as JSONL or
//! SARIF 2.1.0 ([`sarif`], `--format sarif` / `--sarif PATH`).
//!
//! The semantic half, [`scenario`], checks scenario/topology inputs:
//! reception probabilities in `[0, 1]`, connectivity, interference-clique
//! well-formedness, feasibility of the broadcast capacity condition (paper
//! eq. (4)) and the LP solution's flow-conservation residuals (eq. (2)).
//!
//! Findings are emitted as human-readable text and as JSONL via the
//! `omnc-telemetry` sink conventions; `deny`-level findings fail the run.

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod cache;
pub mod callgraph;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod scenario;
pub mod symbols;

pub use analyzer::{
    analyze_file, analyze_source, check_workspace, check_workspace_cached, find_workspace_root,
    FileAnalysis,
};
pub use findings::{Finding, Report};
pub use rules::{Rule, RuleTable, Severity, HOT_ENTRIES, RULES_VERSION};
pub use scenario::{check_scenario_file, check_scenario_str, ScenarioSpec};
