//! Approximate cross-crate call graph and hot-path obligation propagation.
//!
//! Built from `crate::symbols` output over the simulation crates, the
//! graph resolves each call site to candidate definitions by name, with
//! three precision aids and a deliberate bias toward *over*-approximation
//! (a spurious edge can only make a finding, never hide one):
//!
//! * **Method calls** (`x.emit(...)`) resolve to every `impl`'d function
//!   of that name in the universe — this is how trait-object dispatch
//!   (e.g. `Behavior::on_packet`) is covered without type inference.
//!   Ubiquitous std method names (`len`, `clone`, `iter`, ...) are
//!   excluded to keep the graph sane.
//! * **Qualified calls** (`gf256::slice::dot(...)`, `Kernel::scalar(...)`,
//!   `Self::helper(...)`) resolve through the path: an uppercase final
//!   qualifier matches `impl` owners, a lowercase one matches crates and
//!   file modules, `Self`/`crate`/`self`/`super` anchor to the caller.
//! * **Bare calls** (`helper(...)`) resolve through the file's `use`
//!   imports first, then same-file free functions (shadowing wins), then
//!   same-crate free functions — never blindly across crates.
//!
//! `#[cfg(test)]` functions are excluded from the universe entirely, so
//! test-only callees never acquire hot-path obligations.
//!
//! [`hot_spans`] then runs a BFS from the registered entry points
//! ([`crate::rules::HOT_ENTRIES`]) and returns, per file, the line spans
//! of every reachable function together with its blame chain
//! (`entry → … → offender`) for rendering in findings.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::rules::HotEntry;
use crate::symbols::FileSymbols;

/// One function in the graph universe.
#[derive(Debug, Clone)]
pub struct Node {
    /// Workspace-relative file path.
    pub path: String,
    /// Function name.
    pub name: String,
    /// `impl` owner type, if any.
    pub owner: Option<String>,
    /// `Owner::name` or `name`, for chains.
    pub label: String,
    /// 1-based body span.
    pub start: usize,
    /// 1-based body span end.
    pub end: usize,
}

/// The resolved call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Nodes sorted by `(path, start)` — BFS order is deterministic.
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[i]` = sorted, deduped callee node indices.
    pub edges: Vec<Vec<usize>>,
}

/// A hot (entry-reachable) function's span in one file.
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpan {
    /// 1-based first line.
    pub start: usize,
    /// 1-based last line.
    pub end: usize,
    /// Rendered blame chain `entry → … → this fn`.
    pub chain: String,
}

/// Method names so ubiquitous on std types that resolving a bare `.name(`
/// against every same-named workspace function would wire the graph into
/// a near-clique. Workspace-meaningful names (`emit`, `absorb`, `pivot`,
/// `run_until`, ...) are deliberately absent.
const COMMON_METHODS: [&str; 96] = [
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "map",
    "filter",
    "filter_map",
    "fold",
    "any",
    "all",
    "find",
    "position",
    "count",
    "sum",
    "min",
    "max",
    "rev",
    "zip",
    "enumerate",
    "take",
    "skip",
    "last",
    "extend",
    "clear",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "as_str",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "ok_or",
    "and_then",
    "or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "cmp",
    "partial_cmp",
    "eq",
    "hash",
    "fmt",
    "write",
    "write_all",
    "flush",
    "read",
    "push_str",
    "starts_with",
    "ends_with",
    "split",
    "trim",
    "parse",
    "chars",
    "join",
    "replace",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "binary_search",
    "copy_from_slice",
    "fill",
    "resize",
    "reserve",
    "truncate",
    "drain",
    "retain",
    "swap",
    "split_at_mut",
    "first",
    "windows",
    "chunks",
    "entry",
    "or_insert",
    "map_err",
];

/// Builds the graph from `(workspace-relative path, symbols)` pairs.
pub fn build(files: &[(String, FileSymbols)]) -> Graph {
    // Universe: every non-test, non-decl fn, sorted for determinism.
    let mut nodes = Vec::new();
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut order: Vec<(usize, usize)> = Vec::new();
    for (fi, (_, syms)) in files.iter().enumerate() {
        for (gi, f) in syms.fns.iter().enumerate() {
            if f.is_test || f.decl_only {
                continue;
            }
            order.push((fi, gi));
        }
    }
    order.sort_by(|a, b| {
        let ka = (&files[a.0].0, files[a.0].1.fns[a.1].start);
        let kb = (&files[b.0].0, files[b.0].1.fns[b.1].start);
        ka.cmp(&kb)
    });
    for &(fi, gi) in &order {
        let (path, syms) = &files[fi];
        let f = &syms.fns[gi];
        node_of.insert((fi, gi), nodes.len());
        nodes.push(Node {
            path: path.clone(),
            name: f.name.clone(),
            owner: f.owner.clone(),
            label: f.label(),
            start: f.start,
            end: f.end,
        });
    }

    // Name indices over the universe.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (n, node) in nodes.iter().enumerate() {
        by_name.entry(node.name.as_str()).or_default().push(n);
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(fi, gi) in &order {
        let (path, syms) = &files[fi];
        let caller = node_of[&(fi, gi)];
        let caller_crate = crate_of(path);
        let caller_owner = nodes[caller].owner.clone();
        for site in &syms.fns[gi].calls {
            let empty = Vec::new();
            let named = by_name.get(site.callee.as_str()).unwrap_or(&empty);
            let mut targets: Vec<usize> = Vec::new();
            if site.method {
                if COMMON_METHODS.contains(&site.callee.as_str()) {
                    continue;
                }
                targets.extend(named.iter().filter(|&&n| nodes[n].owner.is_some()));
            } else if let Some(q) = &site.qualifier {
                let segs: Vec<&str> = q.split("::").collect();
                let last = *segs.last().unwrap_or(&"");
                let first = *segs.first().unwrap_or(&"");
                if last == "Self" {
                    targets.extend(named.iter().filter(|&&n| {
                        nodes[n].owner == caller_owner && crate_of(&nodes[n].path) == caller_crate
                    }));
                } else if last.chars().next().is_some_and(char::is_uppercase) {
                    // `Type::assoc_fn(...)` — owner match, any crate.
                    targets.extend(
                        named
                            .iter()
                            .filter(|&&n| nodes[n].owner.as_deref() == Some(last)),
                    );
                } else {
                    // Module-qualified free call.
                    let target_crate = match first {
                        "crate" | "self" | "super" => caller_crate.clone(),
                        other => {
                            let norm = other.replace('_', "-");
                            if files.iter().any(|(p, _)| crate_of(p) == norm) {
                                norm
                            } else {
                                caller_crate.clone()
                            }
                        }
                    };
                    let in_crate: Vec<usize> = named
                        .iter()
                        .copied()
                        .filter(|&n| {
                            nodes[n].owner.is_none() && crate_of(&nodes[n].path) == target_crate
                        })
                        .collect();
                    // Prefer definitions in the module the path names.
                    let module_hit: Vec<usize> = in_crate
                        .iter()
                        .copied()
                        .filter(|&n| path_has_module(&nodes[n].path, last))
                        .collect();
                    targets.extend(if module_hit.is_empty() {
                        in_crate
                    } else {
                        module_hit
                    });
                }
            } else {
                // Bare call: imports, then same-file (shadowing wins),
                // then same-crate free fns.
                let imported_crate = syms
                    .imports
                    .iter()
                    .find(|i| i.name == site.callee)
                    .map(|i| match i.path.split("::").next().unwrap_or("") {
                        "crate" | "self" | "super" => caller_crate.clone(),
                        other => other.replace('_', "-"),
                    });
                if let Some(tc) = imported_crate {
                    targets.extend(
                        named.iter().filter(|&&n| {
                            nodes[n].owner.is_none() && crate_of(&nodes[n].path) == tc
                        }),
                    );
                } else {
                    let same_file: Vec<usize> = named
                        .iter()
                        .copied()
                        .filter(|&n| nodes[n].owner.is_none() && nodes[n].path == *path)
                        .collect();
                    if same_file.is_empty() {
                        targets.extend(named.iter().filter(|&&n| {
                            nodes[n].owner.is_none() && crate_of(&nodes[n].path) == caller_crate
                        }));
                    } else {
                        targets.extend(same_file);
                    }
                }
            }
            edges[caller].extend(targets);
        }
        edges[caller].sort_unstable();
        edges[caller].dedup();
    }

    Graph { nodes, edges }
}

/// The crate directory name of a workspace-relative path
/// (`crates/gf256/src/slice.rs` → `gf256`).
fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_owned()
}

/// `true` if `path` names the module `m` as a file or directory.
fn path_has_module(path: &str, m: &str) -> bool {
    path.ends_with(&format!("/{m}.rs")) || path.contains(&format!("/{m}/"))
}

/// Matches `HOT_ENTRIES` against the universe: the node indices that seed
/// propagation, in registry order.
pub fn entry_nodes(graph: &Graph, entries: &[HotEntry]) -> Vec<usize> {
    let mut out = Vec::new();
    for e in entries {
        for (n, node) in graph.nodes.iter().enumerate() {
            if node.path.starts_with(e.path_prefix)
                && node.name == e.name
                && node.owner.as_deref() == e.owner
                && !out.contains(&n)
            {
                out.push(n);
            }
        }
    }
    out
}

/// BFS from the entry points; returns per-file hot spans with rendered
/// blame chains. BFS order (and therefore every chain) is deterministic:
/// nodes are visited in sorted-index order from a seed list in registry
/// order, and each node keeps its first-discovered parent.
pub fn hot_spans(graph: &Graph, entries: &[HotEntry]) -> BTreeMap<String, Vec<HotSpan>> {
    let seeds = entry_nodes(graph, entries);
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for s in &seeds {
        if parent[*s].is_none() {
            parent[*s] = Some(*s);
            queue.push_back(*s);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in &graph.edges[n] {
            if parent[m].is_none() {
                parent[m] = Some(n);
                queue.push_back(m);
            }
        }
    }

    let mut out: BTreeMap<String, Vec<HotSpan>> = BTreeMap::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        if parent[n].is_none() {
            continue;
        }
        // Render entry → … → n.
        let mut labels = vec![node.label.clone()];
        let mut cur = n;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            labels.push(graph.nodes[p].label.clone());
            cur = p;
        }
        labels.reverse();
        out.entry(node.path.clone()).or_default().push(HotSpan {
            start: node.start,
            end: node.end,
            chain: labels.join(" → "),
        });
    }
    for spans in out.values_mut() {
        spans.sort_by_key(|s| (s.start, s.end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::test_line_mask;
    use crate::lexer::clean;
    use crate::rules::HotEntry;
    use crate::symbols::extract;

    fn file(path: &str, src: &str) -> (String, FileSymbols) {
        let f = clean(src);
        let mask = test_line_mask(&f);
        (path.to_owned(), extract(&f, &mask))
    }

    const ENTRY: HotEntry = HotEntry {
        path_prefix: "crates/rlnc/src/encoder.rs",
        owner: Some("Encoder"),
        name: "emit",
    };

    #[test]
    fn cross_crate_propagation_with_chain() {
        let files = vec![
            file(
                "crates/rlnc/src/encoder.rs",
                "use gf256::slice::lead;\nstruct Encoder;\nimpl Encoder {\n    fn emit(&self) { lead(); }\n}\n",
            ),
            file(
                "crates/gf256/src/slice.rs",
                "pub fn lead() { helper(); }\nfn helper() {}\nfn unrelated() {}\n",
            ),
        ];
        let g = build(&files);
        let hot = hot_spans(&g, &[ENTRY]);
        let gf = &hot["crates/gf256/src/slice.rs"];
        assert_eq!(gf.len(), 2, "{hot:#?}");
        assert_eq!(gf[0].chain, "Encoder::emit → lead");
        assert_eq!(gf[1].chain, "Encoder::emit → lead → helper");
        // `unrelated` is not hot.
        assert!(gf.iter().all(|s| !s.chain.contains("unrelated")));
    }

    #[test]
    fn trait_method_calls_reach_all_impls() {
        let files = vec![
            file(
                "crates/drift/src/sim.rs",
                "struct Simulator;\nimpl Simulator {\n    fn run_until(&self, b: &mut dyn Behavior) { b.on_packet(); }\n}\n",
            ),
            file(
                "crates/omnc/src/proto.rs",
                "pub trait Behavior {\n    fn on_packet(&mut self);\n}\nstruct Flood;\nimpl Behavior for Flood {\n    fn on_packet(&mut self) { self.relay(); }\n}\nimpl Flood {\n    fn relay(&mut self) {}\n}\n",
            ),
        ];
        let g = build(&files);
        let entry = HotEntry {
            path_prefix: "crates/drift/src/sim.rs",
            owner: Some("Simulator"),
            name: "run_until",
        };
        let hot = hot_spans(&g, &[entry]);
        let proto = &hot["crates/omnc/src/proto.rs"];
        let chains: Vec<&str> = proto.iter().map(|s| s.chain.as_str()).collect();
        assert!(
            chains.contains(&"Simulator::run_until → Flood::on_packet"),
            "{chains:?}"
        );
        assert!(
            chains.contains(&"Simulator::run_until → Flood::on_packet → Flood::relay"),
            "{chains:?}"
        );
    }

    #[test]
    fn shadowed_free_fns_resolve_to_same_file_not_union() {
        let files = vec![
            file(
                "crates/rlnc/src/encoder.rs",
                "struct Encoder;\nimpl Encoder {\n    fn emit(&self) { helper(); }\n}\nfn helper() { local_leaf(); }\nfn local_leaf() {}\n",
            ),
            file(
                "crates/rlnc/src/other.rs",
                "pub fn helper() { other_leaf(); }\nfn other_leaf() {}\n",
            ),
        ];
        let g = build(&files);
        let hot = hot_spans(&g, &[ENTRY]);
        // The same-file helper shadows the sibling module's helper.
        assert!(hot.contains_key("crates/rlnc/src/encoder.rs"), "{hot:#?}");
        assert!(!hot.contains_key("crates/rlnc/src/other.rs"), "{hot:#?}");
    }

    #[test]
    fn cfg_test_callees_are_excluded() {
        let files = vec![file(
            "crates/rlnc/src/encoder.rs",
            "struct Encoder;\nimpl Encoder {\n    fn emit(&self) { probe(); }\n}\n#[cfg(test)]\nmod tests {\n    pub fn probe() { super::Encoder.emit(); }\n}\n",
        )];
        let g = build(&files);
        assert!(
            g.nodes.iter().all(|n| n.name != "probe"),
            "test fns must not enter the universe"
        );
        let hot = hot_spans(&g, &[ENTRY]);
        let spans = &hot["crates/rlnc/src/encoder.rs"];
        assert_eq!(spans.len(), 1, "{spans:#?}");
        assert_eq!(spans[0].chain, "Encoder::emit");
    }

    #[test]
    fn common_std_methods_do_not_create_edges() {
        let files = vec![
            file(
                "crates/rlnc/src/encoder.rs",
                "struct Encoder;\nimpl Encoder {\n    fn emit(&self, v: &[u8]) { let _ = v.len(); }\n}\n",
            ),
            file(
                "crates/net-topo/src/lib.rs",
                "pub struct Graph;\nimpl Graph {\n    pub fn len(&self) -> usize { expensive(); 0 }\n}\nfn expensive() {}\n",
            ),
        ];
        let g = build(&files);
        let hot = hot_spans(&g, &[ENTRY]);
        assert!(!hot.contains_key("crates/net-topo/src/lib.rs"), "{hot:#?}");
    }

    #[test]
    fn entry_matching_requires_owner_and_path() {
        let files = vec![file(
            "crates/omnc/src/runner.rs",
            "struct Encoder;\nimpl Encoder {\n    fn emit(&self) {}\n}\n",
        )];
        let g = build(&files);
        // Same owner and name, wrong path prefix: not an entry.
        assert!(entry_nodes(&g, &[ENTRY]).is_empty());
    }
}
