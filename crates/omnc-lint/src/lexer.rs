//! A minimal hand-rolled Rust lexer for line-oriented static analysis.
//!
//! The workspace is built fully offline with no `syn`/`proc-macro2`
//! available, so the lint engine works on a *cleaned* view of each source
//! file: comments and the contents of string/char literals are blanked out
//! (replaced by spaces, preserving columns), while `// lint: allow(...)`
//! escape-hatch directives found in line comments are extracted and attached
//! to the lines they govern. Rules then pattern-match on the cleaned text
//! without tripping over occurrences inside strings or docs.

/// One source line after cleaning.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The line with comments and literal contents blanked to spaces.
    /// Columns line up with the raw text (multi-byte chars become one
    /// space each, which is fine for matching purposes).
    pub code: String,
    /// The raw line, for finding snippets.
    pub raw: String,
    /// Rules allowed on this line via `// lint: allow(rule, ...)` — either
    /// trailing on the line or in a standalone comment directly above.
    pub allows: Vec<String>,
}

/// A whole file after cleaning.
#[derive(Debug, Clone)]
pub struct CleanFile {
    /// Cleaned lines, in order.
    pub lines: Vec<CleanLine>,
    /// Rules allowed for the entire file via `// lint: allow-file(rule)`.
    pub file_allows: Vec<String>,
}

impl CleanFile {
    /// `true` if `rule` is suppressed on `line` (0-based index into
    /// [`CleanFile::lines`]) by a line or file directive.
    pub fn is_allowed(&self, line_index: usize, rule: &str) -> bool {
        self.file_allows.iter().any(|r| r == rule)
            || self
                .lines
                .get(line_index)
                .is_some_and(|l| l.allows.iter().any(|r| r == rule))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lexes `source` into its cleaned representation.
pub fn clean(source: &str) -> CleanFile {
    let mut lines: Vec<CleanLine> = Vec::new();
    let mut file_allows: Vec<String> = Vec::new();

    let mut state = State::Code;
    let mut code = String::new();
    let mut raw_line = String::new();
    let mut comment = String::new();
    let mut line_allows: Vec<String> = Vec::new();
    // Directives from a standalone comment line apply to the next code line.
    let mut pending_allows: Vec<String> = Vec::new();
    let mut number = 1usize;

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i <= chars.len() {
        let c = if i < chars.len() { chars[i] } else { '\n' };
        let at_eof = i == chars.len();
        if c != '\n' {
            raw_line.push(c);
        }
        if c == '\n' {
            // Finish the line: parse any comment directive gathered on it.
            if state == State::LineComment {
                state = State::Code;
            }
            let (allows, allow_file) = parse_directives(&comment);
            file_allows.extend(allow_file);
            let line_only_comment = code.trim().is_empty() && !comment.is_empty();
            line_allows.extend(allows.iter().cloned());
            let mut effective = std::mem::take(&mut line_allows);
            if !code.trim().is_empty() {
                effective.extend(std::mem::take(&mut pending_allows));
            }
            if line_only_comment {
                // A standalone directive comment suppresses on the next
                // code line instead.
                pending_allows.append(&mut effective);
            }
            lines.push(CleanLine {
                number,
                code: std::mem::take(&mut code),
                raw: std::mem::take(&mut raw_line),
                allows: effective,
            });
            comment.clear();
            number += 1;
            if at_eof {
                break;
            }
            i += 1;
            continue;
        }

        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    code.push(' ');
                    raw_line.push('/');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    raw_line.push('*');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                // Raw (and byte/raw-byte) string starts: r"", r#""#, br"".
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, consumed)) = raw_string_start(&chars, i) {
                        state = State::RawStr(hashes);
                        for k in 0..consumed {
                            code.push(chars[i + k]);
                            if k > 0 {
                                raw_line.push(chars[i + k]);
                            }
                        }
                        i += consumed;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime.
                    if let Some(consumed) = char_literal_len(&chars, i) {
                        code.push('\'');
                        for k in 1..consumed {
                            code.push(' ');
                            raw_line.push(chars[i + k]);
                        }
                        i += consumed;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                    code.push(' ');
                    code.push(' ');
                    raw_line.push('/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    raw_line.push('*');
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if let Some(&n) = chars.get(i + 1) {
                        if n != '\n' {
                            code.push(' ');
                            raw_line.push(n);
                            i += 2;
                            continue;
                        }
                    }
                    i += 1;
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    code.push('"');
                    for k in 0..hashes as usize {
                        code.push('#');
                        raw_line.push(chars[i + 1 + k]);
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }

    CleanFile { lines, file_allows }
}

/// `true` if the char before position `i` continues an identifier, which
/// rules out a raw-string prefix (e.g. the final `r` of `for`).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If a raw/raw-byte string literal (`r"…"`, `r#"…"#`, `br"…"`) starts at
/// `i`, returns `(hash_count, chars_consumed_through_opening_quote)`.
///
/// Plain byte strings `b"…"` are *not* raw: they process `\"` escapes, so
/// they must go through the escape-aware [`State::Str`] path (the `b` is
/// left in the code stream and the following quote enters `Str`).
/// Routing them here once made `b"\""` terminate at the escaped quote and
/// leak the rest of the literal into analysis.
fn raw_string_start(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// `true` if the quote at `i` is followed by `hashes` pound signs.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at `i`, returns its length in chars; `None`
/// for lifetimes.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escape: the char after the backslash is consumed
            // unconditionally (so `'\''` measures 4, not 3 — scanning
            // from the escaped char itself once mistook it for the
            // terminator), then scan to the closing quote (bounded).
            let mut j = i + 3;
            while j < chars.len() && j - i < 12 {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Extracts `lint: allow(...)` / `lint: allow-file(...)` directives from a
/// line comment's text. Returns `(line_allows, file_allows)`.
fn parse_directives(comment: &str) -> (Vec<String>, Vec<String>) {
    let mut line = Vec::new();
    let mut file = Vec::new();
    let text = comment.trim();
    let Some(pos) = text.find("lint:") else {
        return (line, file);
    };
    let rest = text[pos + 5..].trim_start();
    for (prefix, out) in [("allow-file(", &mut file), ("allow(", &mut line)] {
        if let Some(body) = rest.strip_prefix(prefix) {
            if let Some(end) = body.find(')') {
                for rule in body[..end].split(',') {
                    let rule = rule.trim().trim_matches('"');
                    if !rule.is_empty() {
                        out.push(rule.to_owned());
                    }
                }
            }
            break;
        }
    }
    (line, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = clean("let x = \"Instant::now\"; // Instant::now\nInstant::now();\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[1].code.contains("Instant::now"));
        assert_eq!(f.lines[0].raw, "let x = \"Instant::now\"; // Instant::now");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = clean("a /* x /* y */ z\nstill comment */ b\n");
        assert_eq!(f.lines[0].code.trim_start().chars().next(), Some('a'));
        assert!(!f.lines[1].code.contains("still"));
        assert!(f.lines[1].code.contains('b'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = clean("let s = r#\"Instant::now \"quoted\" \"#; call();\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let f = clean("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }\n");
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[0].code.contains('x') || f.lines[0].code.contains("x:"));
    }

    #[test]
    fn trailing_directive_attaches_to_its_line() {
        let f = clean("foo(); // lint: allow(wall-clock)\nbar();\n");
        assert!(f.is_allowed(0, "wall-clock"));
        assert!(!f.is_allowed(1, "wall-clock"));
    }

    #[test]
    fn standalone_directive_attaches_to_next_code_line() {
        let f = clean("// lint: allow(unwrap, panic): checked above\nfoo();\n");
        assert!(f.is_allowed(1, "unwrap"));
        assert!(f.is_allowed(1, "panic"));
        assert!(!f.is_allowed(0, "unwrap"));
    }

    #[test]
    fn file_directive_covers_every_line() {
        let f = clean("// lint: allow-file(index)\na[0];\nb[1];\n");
        assert!(f.is_allowed(1, "index"));
        assert!(f.is_allowed(2, "index"));
    }

    #[test]
    fn byte_strings_process_escapes() {
        // Regression: `b"\""` once entered the raw-string state, so the
        // escaped quote closed the literal early and the tail — here a
        // banned call — leaked into the cleaned code stream.
        let f = clean("let s = b\"\\\" Instant::now() \"; call();\n");
        assert!(!f.lines[0].code.contains("Instant"), "{:?}", f.lines[0]);
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn escaped_quote_char_literal_measures_correctly() {
        // Regression: `'\''` once measured 3 chars instead of 4, leaving
        // a stray quote that swallowed the rest of the line as a string.
        let f = clean("let q = '\\''; let bad = banned_call();\n");
        assert!(
            f.lines[0].code.contains("banned_call()"),
            "{:?}",
            f.lines[0]
        );
        let f = clean("let n = '\\n'; keep();\n");
        assert!(f.lines[0].code.contains("keep()"));
        let f = clean("let u = '\\u{1F600}'; keep();\n");
        assert!(f.lines[0].code.contains("keep()"));
    }

    #[test]
    fn raw_byte_strings_and_raw_identifiers() {
        let f = clean("let s = br#\"Instant::now\"#; call();\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].code.contains("call()"));
        // A raw identifier `r#loop` is not a raw string.
        let f = clean("let r#loop = 1; call();\n");
        assert!(f.lines[0].code.contains("call()"));
        assert!(f.lines[0].code.contains("r#loop"));
    }

    #[test]
    fn columns_are_preserved_through_literals() {
        let raw = "let s = \"abc\"; x()";
        let f = clean(&format!("{raw}\n"));
        assert_eq!(f.lines[0].code.len(), raw.len());
        assert_eq!(f.lines[0].code.find("x()"), raw.find("x()"));
    }
}
