//! Semantic model-invariant checks for scenario/topology inputs.
//!
//! `omnc-lint check-scenario FILE` validates a scenario *before* any
//! simulation runs, rejecting inputs that would silently violate the
//! paper's model:
//!
//! * **structure** — node/link indices in range, no self-loops or duplicate
//!   directed links, positive finite capacity and duration;
//! * **probabilities** — every reception probability `p_ij ∈ [0, 1]`;
//! * **connectivity** — the destination is reachable from the source over
//!   links with `p > 0`;
//! * **clique well-formedness** — interference neighborhoods must be
//!   symmetric (a one-way link makes the broadcast MAC cliques of Sec. 3.2
//!   ill-formed), and every node of the forwarder selection must sit in at
//!   least one clique that also covers its downhill links;
//! * **capacity condition (4)** — the sUnicast LP (eqs. (1)–(5)) must admit
//!   a throughput of at least `min_throughput` under the broadcast MAC
//!   constraint `b_i + Σ_{j∈N(i)} b_j ≤ C`;
//! * **flow conservation (2)** — the LP optimum is replayed through
//!   [`SUnicast::feasibility_violation`] and rejected if any residual
//!   exceeds tolerance;
//! * **multi-session well-formedness** — a scenario may declare a
//!   `sessions` array instead of a single `src`/`dst` pair; session ids
//!   must be unique, every session needs distinct connected endpoints,
//!   and the capacity condition is evaluated *jointly*: the coupled
//!   mUnicast LP (Sec. 4.3) with shared MAC rows must admit every
//!   session's `min_throughput` simultaneously, not just one at a time.
//!
//! The scenario file is JSON — single-session:
//!
//! ```json
//! {
//!   "name": "diamond",
//!   "nodes": 4,
//!   "src": 0,
//!   "dst": 3,
//!   "capacity": 100000.0,
//!   "min_throughput": 1000.0,
//!   "links": [ { "from": 0, "to": 1, "p": 0.6 } ]
//! }
//! ```
//!
//! or multi-session, replacing `src`/`dst` with:
//!
//! ```json
//! { "sessions": [ { "id": 0, "src": 0, "dst": 3 },
//!                 { "id": 1, "src": 3, "dst": 0 } ] }
//! ```

use net_topo::graph::{Link, NodeId, Topology};
use net_topo::select::{select_forwarders, Selection};
use omnc_opt::lp::solve_exact;
use omnc_opt::municast::MUnicast;
use omnc_opt::SUnicast;
use serde::{Deserialize, Serialize};

use crate::findings::{Finding, Report};
use crate::rules::Severity;

/// Relative tolerance (times capacity) for LP residual checks.
const RESIDUAL_TOL: f64 = 1e-6;

/// One directed link of a scenario file.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioLink {
    /// Transmitter node index.
    pub from: usize,
    /// Receiver node index.
    pub to: usize,
    /// Reception probability `p_ij`.
    pub p: f64,
}

/// One unicast session of a multi-session scenario file.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioSession {
    /// Stable session identifier (unique within the scenario).
    pub id: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
}

/// A scenario input as validated by `check-scenario`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Display name (defaults to the file name in reports).
    pub name: Option<String>,
    /// Number of deployed nodes.
    pub nodes: usize,
    /// Session source node index (single-session form; mutually
    /// exclusive with `sessions`).
    pub src: Option<usize>,
    /// Session destination node index (single-session form).
    pub dst: Option<usize>,
    /// Concurrent unicast sessions sharing the mesh (multi-session
    /// form; mutually exclusive with `src`/`dst`).
    pub sessions: Option<Vec<ScenarioSession>>,
    /// MAC channel capacity `C` in bytes/second.
    pub capacity: f64,
    /// Required feasible throughput under the capacity condition (4);
    /// scenarios whose LP optimum `γ*` falls below this are rejected.
    /// For multi-session scenarios the requirement is *per session* and
    /// checked against the joint program. Defaults to 0: any connected
    /// scenario with `γ* > 0` passes.
    pub min_throughput: Option<f64>,
    /// Session duration in seconds (optional; checked positive if given).
    pub duration: Option<f64>,
    /// The directed lossy links.
    pub links: Vec<ScenarioLink>,
}

/// Scenario check names (used as the `rule` of scenario findings).
pub const CHECK_STRUCTURE: &str = "scenario-structure";
/// Reception-probability range check.
pub const CHECK_PROB: &str = "scenario-prob";
/// Source-to-destination connectivity check.
pub const CHECK_CONNECTIVITY: &str = "scenario-connectivity";
/// Interference-clique well-formedness check.
pub const CHECK_CLIQUE: &str = "scenario-clique";
/// Broadcast capacity condition (4) feasibility check.
pub const CHECK_CAPACITY: &str = "scenario-capacity";
/// LP flow-conservation residual check (eq. (2)).
pub const CHECK_FLOW: &str = "scenario-flow";
/// Multi-session well-formedness check (unique ids, distinct endpoints).
pub const CHECK_SESSIONS: &str = "scenario-sessions";

/// Parses and checks a scenario from JSON text. `origin` labels findings
/// (typically the file path).
pub fn check_scenario_str(origin: &str, text: &str) -> Report {
    let mut report = Report {
        files_checked: 1,
        ..Report::default()
    };
    let spec: ScenarioSpec = match serde_json::from_str(text) {
        Ok(spec) => spec,
        Err(e) => {
            report.findings.push(Finding::scenario(
                origin,
                CHECK_STRUCTURE,
                Severity::Deny,
                format!("not a valid scenario file: {e}"),
            ));
            return report;
        }
    };
    check_spec(origin, &spec, &mut report);
    report.finish();
    report
}

/// Reads and checks a scenario file.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be read.
pub fn check_scenario_file(path: &std::path::Path) -> std::io::Result<Report> {
    let text = std::fs::read_to_string(path)?;
    Ok(check_scenario_str(&path.to_string_lossy(), &text))
}

/// Runs every check on a parsed spec, appending findings to `report`.
fn check_spec(origin: &str, spec: &ScenarioSpec, report: &mut Report) {
    let mut deny = |rule: &'static str, message: String| {
        report
            .findings
            .push(Finding::scenario(origin, rule, Severity::Deny, message));
    };

    // --- Structure.
    let mut structural_ok = true;
    if spec.nodes < 2 {
        deny(
            CHECK_STRUCTURE,
            format!("need ≥ 2 nodes, got {}", spec.nodes),
        );
        structural_ok = false;
    }
    // --- Session endpoints: either a single src/dst pair or a sessions
    // array, never both. Resolved to labeled (src, dst) pairs so the
    // connectivity check below is uniform across both forms.
    let mut endpoints: Vec<(String, usize, usize)> = Vec::new();
    match (&spec.sessions, spec.src, spec.dst) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
            deny(
                CHECK_SESSIONS,
                "give either src/dst or a sessions array, not both".to_owned(),
            );
            structural_ok = false;
        }
        (Some(sessions), None, None) => {
            if sessions.is_empty() {
                deny(CHECK_SESSIONS, "sessions array is empty".to_owned());
                structural_ok = false;
            }
            let mut ids: Vec<u64> = sessions.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() != sessions.len() {
                deny(CHECK_SESSIONS, "session ids must be unique".to_owned());
                structural_ok = false;
            }
            for s in sessions {
                if s.src >= spec.nodes || s.dst >= spec.nodes {
                    deny(
                        CHECK_SESSIONS,
                        format!(
                            "session {}: src {} / dst {} out of range for {} nodes",
                            s.id, s.src, s.dst, spec.nodes
                        ),
                    );
                    structural_ok = false;
                } else if s.src == s.dst {
                    deny(
                        CHECK_SESSIONS,
                        format!("session {}: src and dst must differ", s.id),
                    );
                    structural_ok = false;
                } else {
                    endpoints.push((format!("session {}", s.id), s.src, s.dst));
                }
            }
        }
        (None, Some(src), Some(dst)) => {
            if src >= spec.nodes || dst >= spec.nodes {
                deny(
                    CHECK_STRUCTURE,
                    format!(
                        "src {src} / dst {dst} out of range for {} nodes",
                        spec.nodes
                    ),
                );
                structural_ok = false;
            } else if src == dst {
                deny(CHECK_STRUCTURE, "src and dst must differ".to_owned());
                structural_ok = false;
            } else {
                endpoints.push(("session".to_owned(), src, dst));
            }
        }
        (None, _, _) => {
            deny(
                CHECK_STRUCTURE,
                "scenario needs src and dst, or a sessions array".to_owned(),
            );
            structural_ok = false;
        }
    }
    if !(spec.capacity.is_finite() && spec.capacity > 0.0) {
        deny(
            CHECK_CAPACITY,
            format!(
                "capacity must be positive and finite, got {}",
                spec.capacity
            ),
        );
        structural_ok = false;
    }
    if let Some(m) = spec.min_throughput {
        if !(m.is_finite() && m >= 0.0) {
            deny(
                CHECK_STRUCTURE,
                format!("min_throughput must be ≥ 0, got {m}"),
            );
            structural_ok = false;
        }
    }
    if let Some(d) = spec.duration {
        if !(d.is_finite() && d > 0.0) {
            deny(
                CHECK_STRUCTURE,
                format!("duration must be positive, got {d}"),
            );
        }
    }
    if spec.links.is_empty() {
        deny(CHECK_STRUCTURE, "scenario has no links".to_owned());
        structural_ok = false;
    }

    // --- Links: ranges, self-loops, duplicates, probabilities.
    let mut seen: Vec<(usize, usize)> = Vec::new();
    for (i, l) in spec.links.iter().enumerate() {
        if l.from >= spec.nodes || l.to >= spec.nodes {
            deny(
                CHECK_STRUCTURE,
                format!("link #{i} ({} → {}) out of range", l.from, l.to),
            );
            structural_ok = false;
        }
        if l.from == l.to {
            deny(
                CHECK_STRUCTURE,
                format!("link #{i} is a self-loop at {}", l.from),
            );
            structural_ok = false;
        }
        if seen.contains(&(l.from, l.to)) {
            deny(
                CHECK_STRUCTURE,
                format!("duplicate directed link {} → {}", l.from, l.to),
            );
            structural_ok = false;
        }
        seen.push((l.from, l.to));
        if !(l.p.is_finite() && (0.0..=1.0).contains(&l.p)) {
            deny(
                CHECK_PROB,
                format!(
                    "link #{i} ({} → {}): reception probability {} outside [0, 1]",
                    l.from, l.to, l.p
                ),
            );
            structural_ok = false;
        }
    }
    if !structural_ok {
        return; // semantic checks need a well-formed topology
    }

    // --- Clique well-formedness: interference must be symmetric, so every
    // directed link needs its reverse (possibly with a different p). The
    // broadcast MAC constraint (4) sums over neighborhoods; a one-way link
    // would make node i contend for j's airtime but not vice versa.
    for l in &spec.links {
        if !spec.links.iter().any(|r| r.from == l.to && r.to == l.from) {
            deny(
                CHECK_CLIQUE,
                format!(
                    "one-way link {} → {} makes interference cliques ill-formed \
                     (add the reverse link, any p > 0)",
                    l.from, l.to
                ),
            );
        }
    }

    // --- Connectivity (over links with p > 0).
    let links: Vec<Link> = spec
        .links
        .iter()
        .map(|l| Link {
            from: NodeId::new(l.from),
            to: NodeId::new(l.to),
            p: l.p,
        })
        .collect();
    let topo = match Topology::from_links(spec.nodes, links) {
        Ok(t) => t,
        Err(e) => {
            deny(CHECK_STRUCTURE, format!("topology rejected the links: {e}"));
            return;
        }
    };
    let mut connected = true;
    for (label, src, dst) in &endpoints {
        if !reachable(&topo, NodeId::new(*src), NodeId::new(*dst)) {
            deny(
                CHECK_CONNECTIVITY,
                format!("{label}: dst {dst} unreachable from src {src}"),
            );
            connected = false;
        }
    }
    if !connected {
        return; // selection/LP need connectivity
    }
    if report.findings.iter().any(|f| f.rule == CHECK_CLIQUE) {
        return;
    }
    if let Some(sessions) = &spec.sessions {
        check_joint_capacity_condition(origin, spec, sessions, &topo, report);
    } else if let Some((_, src, dst)) = endpoints.first() {
        check_capacity_condition(origin, spec, *src, *dst, &topo, report);
    }
}

/// Solves the sUnicast LP and checks condition (4) feasibility at the
/// required throughput plus the optimum's flow-conservation residuals.
fn check_capacity_condition(
    origin: &str,
    spec: &ScenarioSpec,
    src: usize,
    dst: usize,
    topo: &Topology,
    report: &mut Report,
) {
    let selection = select_forwarders(topo, NodeId::new(src), NodeId::new(dst));
    let problem = SUnicast::from_selection(topo, &selection, spec.capacity);
    let sol = match solve_exact(&problem) {
        Ok(sol) => sol,
        Err(e) => {
            report.findings.push(Finding::scenario(
                origin,
                CHECK_CAPACITY,
                Severity::Deny,
                format!("sUnicast LP failed: {e}"),
            ));
            return;
        }
    };
    // Condition (4) feasibility: the optimum γ* is the largest throughput
    // the broadcast MAC admits; demanding more is infeasible.
    let floor = spec
        .min_throughput
        .unwrap_or(0.0)
        .max(spec.capacity * RESIDUAL_TOL);
    if sol.gamma < floor {
        report.findings.push(Finding::scenario(
            origin,
            CHECK_CAPACITY,
            Severity::Deny,
            format!(
                "capacity condition (4) infeasible: optimal throughput γ* = {:.3} \
                 bytes/s < required {:.3} bytes/s (capacity {})",
                sol.gamma, floor, spec.capacity
            ),
        ));
    }
    // Flow-conservation residuals of the optimum (eq. (2), plus (4)/(5)
    // replayed in absolute units).
    if let Some(violation) = problem.feasibility_violation(&sol.b, &sol.x, sol.gamma, RESIDUAL_TOL)
    {
        report.findings.push(Finding::scenario(
            origin,
            CHECK_FLOW,
            Severity::Deny,
            format!("LP optimum violates the model constraints: {violation}"),
        ));
    }
}

/// Checks the capacity condition for a multi-session scenario: every
/// session's sUnicast LP must be feasible in isolation (for attribution),
/// and the coupled mUnicast LP (Sec. 4.3) with MAC rows shared across all
/// sessions must admit `Σγ* ≥ K · min_throughput`. The joint bound is a
/// necessary condition: if even the throughput-sum optimum cannot cover
/// `K` sessions at the floor, no per-session allocation can.
fn check_joint_capacity_condition(
    origin: &str,
    spec: &ScenarioSpec,
    sessions: &[ScenarioSession],
    topo: &Topology,
    report: &mut Report,
) {
    let mut deny = |rule: &'static str, message: String| {
        report
            .findings
            .push(Finding::scenario(origin, rule, Severity::Deny, message));
    };
    let floor = spec
        .min_throughput
        .unwrap_or(0.0)
        .max(spec.capacity * RESIDUAL_TOL);
    let selections: Vec<Selection> = sessions
        .iter()
        .map(|s| select_forwarders(topo, NodeId::new(s.src), NodeId::new(s.dst)))
        .collect();
    // Per-session attribution first: a session that cannot reach the floor
    // even with the whole mesh to itself is named directly, and the joint
    // program cannot do better than isolation.
    let mut isolated_infeasible = false;
    for (s, selection) in sessions.iter().zip(&selections) {
        let problem = SUnicast::from_selection(topo, selection, spec.capacity);
        match solve_exact(&problem) {
            Ok(sol) if sol.gamma < floor => {
                deny(
                    CHECK_CAPACITY,
                    format!(
                        "session {}: capacity condition (4) infeasible even in \
                         isolation: γ* = {:.3} bytes/s < required {:.3} bytes/s",
                        s.id, sol.gamma, floor
                    ),
                );
                isolated_infeasible = true;
            }
            Ok(_) => {}
            Err(e) => {
                deny(
                    CHECK_CAPACITY,
                    format!("session {}: sUnicast LP failed: {e}", s.id),
                );
                isolated_infeasible = true;
            }
        }
    }
    if isolated_infeasible {
        return;
    }
    // Joint feasibility: the coupled LP shares the broadcast MAC rows
    // across sessions, so Σγ* is what the mesh actually carries with all
    // K sessions active at once.
    let joint = MUnicast::from_selections(topo, &selections, spec.capacity);
    match joint.solve_exact() {
        Ok(sol) => {
            let required = floor * sessions.len() as f64;
            if sol.total() < required {
                deny(
                    CHECK_CAPACITY,
                    format!(
                        "joint capacity condition infeasible: coupled optimum \
                         Σγ* = {:.3} bytes/s < {} sessions × {:.3} bytes/s = {:.3} \
                         bytes/s (each session is feasible alone; together they \
                         exceed the shared MAC)",
                        sol.total(),
                        sessions.len(),
                        floor,
                        required
                    ),
                );
            }
        }
        Err(e) => deny(CHECK_CAPACITY, format!("coupled mUnicast LP failed: {e}")),
    }
}

/// Breadth-first reachability over links with positive probability.
fn reachable(topo: &Topology, src: NodeId, dst: NodeId) -> bool {
    let mut visited = vec![false; topo.len()];
    let mut frontier = vec![src];
    visited[src.index()] = true;
    while let Some(v) = frontier.pop() {
        if v == dst {
            return true;
        }
        for l in topo.out_links(v) {
            if l.p > 0.0 && !visited[l.to.index()] {
                visited[l.to.index()] = true;
                frontier.push(l.to);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond(p: f64, min_throughput: f64) -> String {
        format!(
            r#"{{
                "name": "diamond",
                "nodes": 4, "src": 0, "dst": 3,
                "capacity": 100000.0,
                "min_throughput": {min_throughput},
                "links": [
                    {{"from": 0, "to": 1, "p": {p}}}, {{"from": 1, "to": 0, "p": {p}}},
                    {{"from": 0, "to": 2, "p": {p}}}, {{"from": 2, "to": 0, "p": {p}}},
                    {{"from": 1, "to": 3, "p": {p}}}, {{"from": 3, "to": 1, "p": {p}}},
                    {{"from": 2, "to": 3, "p": {p}}}, {{"from": 3, "to": 2, "p": {p}}}
                ]
            }}"#
        )
    }

    #[test]
    fn healthy_diamond_passes() {
        let r = check_scenario_str("d.json", &diamond(0.6, 1000.0));
        assert!(r.is_clean(), "{}", r.render());
        assert!(r.findings.is_empty());
    }

    #[test]
    fn infeasible_capacity_demand_is_rejected() {
        // The diamond cannot carry more than C even lossless; demanding 10C
        // makes condition (4) infeasible.
        let r = check_scenario_str("d.json", &diamond(0.6, 1e6));
        assert!(!r.is_clean());
        assert!(
            r.findings.iter().any(|f| f.rule == CHECK_CAPACITY),
            "{}",
            r.render()
        );
    }

    #[test]
    fn out_of_range_probability_is_rejected() {
        let r = check_scenario_str("d.json", &diamond(1.4, 0.0));
        assert!(
            r.findings.iter().any(|f| f.rule == CHECK_PROB),
            "{}",
            r.render()
        );
    }

    #[test]
    fn negative_probability_is_rejected() {
        let r = check_scenario_str("d.json", &diamond(-0.1, 0.0));
        assert!(r.findings.iter().any(|f| f.rule == CHECK_PROB));
    }

    #[test]
    fn one_way_link_breaks_clique_well_formedness() {
        let text = r#"{
            "nodes": 3, "src": 0, "dst": 2, "capacity": 1000.0,
            "links": [
                {"from": 0, "to": 1, "p": 0.9}, {"from": 1, "to": 0, "p": 0.9},
                {"from": 1, "to": 2, "p": 0.9}
            ]
        }"#;
        let r = check_scenario_str("s.json", text);
        assert!(
            r.findings.iter().any(|f| f.rule == CHECK_CLIQUE),
            "{}",
            r.render()
        );
    }

    #[test]
    fn disconnected_destination_is_rejected() {
        let text = r#"{
            "nodes": 4, "src": 0, "dst": 3, "capacity": 1000.0,
            "links": [
                {"from": 0, "to": 1, "p": 0.5}, {"from": 1, "to": 0, "p": 0.5},
                {"from": 2, "to": 3, "p": 0.5}, {"from": 3, "to": 2, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("s.json", text);
        assert!(r.findings.iter().any(|f| f.rule == CHECK_CONNECTIVITY));
    }

    #[test]
    fn structural_garbage_is_rejected_not_panicked() {
        for text in [
            "not json at all",
            r#"{"nodes": 1, "src": 0, "dst": 0, "capacity": 1.0, "links": []}"#,
            r#"{"nodes": 4, "src": 0, "dst": 9, "capacity": 1.0,
                "links": [{"from": 0, "to": 0, "p": 0.5}]}"#,
            r#"{"nodes": 2, "src": 0, "dst": 1, "capacity": -5.0,
                "links": [{"from": 0, "to": 1, "p": 0.5}, {"from": 1, "to": 0, "p": 0.5}]}"#,
        ] {
            let r = check_scenario_str("s.json", text);
            assert!(!r.is_clean(), "should reject: {text}");
        }
    }

    #[test]
    fn duplicate_links_are_rejected() {
        let text = r#"{
            "nodes": 2, "src": 0, "dst": 1, "capacity": 1000.0,
            "links": [
                {"from": 0, "to": 1, "p": 0.5}, {"from": 0, "to": 1, "p": 0.7},
                {"from": 1, "to": 0, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("s.json", text);
        assert!(!r.is_clean());
    }

    /// Two opposite-direction sessions over the same diamond.
    fn multi_diamond(p: f64, min_throughput: f64) -> String {
        format!(
            r#"{{
                "name": "multi-diamond",
                "nodes": 4,
                "sessions": [
                    {{"id": 0, "src": 0, "dst": 3}},
                    {{"id": 1, "src": 3, "dst": 0}}
                ],
                "capacity": 100000.0,
                "min_throughput": {min_throughput},
                "links": [
                    {{"from": 0, "to": 1, "p": {p}}}, {{"from": 1, "to": 0, "p": {p}}},
                    {{"from": 0, "to": 2, "p": {p}}}, {{"from": 2, "to": 0, "p": {p}}},
                    {{"from": 1, "to": 3, "p": {p}}}, {{"from": 3, "to": 1, "p": {p}}},
                    {{"from": 2, "to": 3, "p": {p}}}, {{"from": 3, "to": 2, "p": {p}}}
                ]
            }}"#
        )
    }

    /// Single-session sUnicast optimum γ* of the diamond, computed directly
    /// through the same solver stack the checker uses.
    fn diamond_gamma_star(p: f64) -> f64 {
        let links = [
            (0, 1),
            (1, 0),
            (0, 2),
            (2, 0),
            (1, 3),
            (3, 1),
            (2, 3),
            (3, 2),
        ]
        .into_iter()
        .map(|(from, to)| Link {
            from: NodeId::new(from),
            to: NodeId::new(to),
            p,
        })
        .collect();
        let topo = Topology::from_links(4, links).expect("diamond topology");
        let selection = select_forwarders(&topo, NodeId::new(0), NodeId::new(3));
        let problem = SUnicast::from_selection(&topo, &selection, 100000.0);
        solve_exact(&problem).expect("diamond LP solves").gamma
    }

    #[test]
    fn healthy_multi_session_diamond_passes() {
        // 0.4·γ* per session: feasible in isolation and jointly (0.8·γ*
        // total fits under the shared MAC with margin).
        let floor = 0.4 * diamond_gamma_star(0.6);
        let r = check_scenario_str("m.json", &multi_diamond(0.6, floor));
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn jointly_infeasible_sessions_are_rejected() {
        // 0.75·γ* per session is feasible for either session alone, but the
        // two directions share every MAC clique, so together they need
        // 1.5·γ* from a mesh that carries ≈ γ* in total.
        let floor = 0.75 * diamond_gamma_star(0.6);
        let r = check_scenario_str("m.json", &multi_diamond(0.6, floor));
        assert!(!r.is_clean());
        let joint = r
            .findings
            .iter()
            .find(|f| f.rule == CHECK_CAPACITY)
            .unwrap_or_else(|| panic!("expected a capacity finding:\n{}", r.render()));
        assert!(
            joint
                .message
                .contains("joint capacity condition infeasible"),
            "expected the *joint* check to fire, not isolation: {}",
            joint.message
        );
    }

    #[test]
    fn duplicate_session_ids_are_rejected() {
        let text = r#"{
            "nodes": 4, "capacity": 1000.0,
            "sessions": [
                {"id": 7, "src": 0, "dst": 3},
                {"id": 7, "src": 3, "dst": 0}
            ],
            "links": [
                {"from": 0, "to": 3, "p": 0.5}, {"from": 3, "to": 0, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("m.json", text);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == CHECK_SESSIONS && f.message.contains("unique")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn session_with_equal_endpoints_is_rejected() {
        let text = r#"{
            "nodes": 4, "capacity": 1000.0,
            "sessions": [{"id": 0, "src": 2, "dst": 2}],
            "links": [
                {"from": 0, "to": 3, "p": 0.5}, {"from": 3, "to": 0, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("m.json", text);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == CHECK_SESSIONS && f.message.contains("differ")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn mixing_single_and_multi_forms_is_rejected() {
        let text = r#"{
            "nodes": 4, "src": 0, "dst": 3, "capacity": 1000.0,
            "sessions": [{"id": 0, "src": 0, "dst": 3}],
            "links": [
                {"from": 0, "to": 3, "p": 0.5}, {"from": 3, "to": 0, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("m.json", text);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == CHECK_SESSIONS && f.message.contains("not both")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn missing_endpoints_are_rejected() {
        let text = r#"{
            "nodes": 2, "capacity": 1000.0,
            "links": [
                {"from": 0, "to": 1, "p": 0.5}, {"from": 1, "to": 0, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("m.json", text);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == CHECK_STRUCTURE && f.message.contains("sessions array")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn disconnected_session_is_named_in_the_finding() {
        // Session 1 runs against the arrow of a one-directional component
        // split: 2/3 never reach 0/1.
        let text = r#"{
            "nodes": 4, "capacity": 1000.0,
            "sessions": [
                {"id": 0, "src": 0, "dst": 1},
                {"id": 1, "src": 2, "dst": 0}
            ],
            "links": [
                {"from": 0, "to": 1, "p": 0.5}, {"from": 1, "to": 0, "p": 0.5},
                {"from": 2, "to": 3, "p": 0.5}, {"from": 3, "to": 2, "p": 0.5}
            ]
        }"#;
        let r = check_scenario_str("m.json", text);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == CHECK_CONNECTIVITY && f.message.contains("session 1")),
            "{}",
            r.render()
        );
    }

    #[test]
    fn findings_serialize_through_the_sink() {
        let r = check_scenario_str("d.json", &diamond(0.6, 1e6));
        let sink = telemetry::EventSink::in_memory();
        r.write_jsonl(&sink).unwrap();
        assert_eq!(sink.lines().len(), r.findings.len());
        let v: serde_json::Value = serde_json::from_str(&sink.lines()[0]).unwrap();
        assert_eq!(v.get("rule").and_then(|r| r.as_str()), Some(CHECK_CAPACITY));
    }
}
