//! `omnc-lint` — workspace static analysis and scenario validation CLI.
//!
//! ```text
//! omnc-lint check [--root DIR] [--json PATH|-] [--quiet]
//! omnc-lint check-scenario FILE... [--json PATH|-] [--quiet]
//! omnc-lint rules
//! ```
//!
//! Exit codes: 0 = clean (warnings allowed), 1 = deny-level findings,
//! 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use omnc_lint::{check_scenario_file, check_workspace, find_workspace_root, Report, RuleTable};
use telemetry::EventSink;

/// Parsed command line.
struct Options {
    /// `check`, `check-scenario` or `rules`.
    command: String,
    /// Positional arguments after the command (scenario files).
    positional: Vec<PathBuf>,
    /// `--root DIR` override for `check`.
    root: Option<PathBuf>,
    /// `--json PATH` (`-` = stdout) JSONL output.
    json: Option<String>,
    /// `--quiet` suppresses the human-readable report.
    quiet: bool,
}

const USAGE: &str = "usage: omnc-lint <command> [options]

commands:
  check            lint every crate under <root>/crates
  check-scenario   validate scenario file(s) against the model invariants
  rules            list the configured rules and their severities

options:
  --root DIR     workspace root for `check` (default: nearest ancestor
                 with a [workspace] Cargo.toml)
  --json PATH    also write findings as JSONL to PATH (`-` for stdout)
  --quiet        suppress the human-readable report
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let command = it.next().cloned().ok_or("missing command")?;
    let mut opts = Options {
        command,
        positional: Vec::new(),
        root: None,
        json: None,
        quiet: false,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a value")?;
                opts.json = Some(v.clone());
            }
            "--quiet" | "-q" => opts.quiet = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => opts.positional.push(PathBuf::from(other)),
        }
    }
    Ok(opts)
}

/// Writes the report as JSONL to a file or stdout via the telemetry sink.
fn write_json(report: &Report, target: &str) -> std::io::Result<()> {
    let sink = if target == "-" {
        EventSink::in_memory()
    } else {
        EventSink::to_file(target)?
    };
    report.write_jsonl(&sink)?;
    if target == "-" {
        for line in sink.lines() {
            println!("{line}");
        }
    }
    Ok(())
}

/// Renders, optionally exports, and converts a report into an exit code.
fn finish(report: &Report, opts: &Options) -> ExitCode {
    if let Some(target) = &opts.json {
        if let Err(e) = write_json(report, target) {
            eprintln!("omnc-lint: writing JSONL to {target}: {e}");
            return ExitCode::from(2);
        }
    }
    if !opts.quiet {
        print!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_check(opts: &Options) -> ExitCode {
    let root = match &opts.root {
        Some(dir) => dir.clone(),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("omnc-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!(
                        "omnc-lint: no [workspace] Cargo.toml above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let table = RuleTable::default();
    match check_workspace(&root, &table) {
        Ok(report) => finish(&report, opts),
        Err(e) => {
            eprintln!("omnc-lint: checking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn run_check_scenario(opts: &Options) -> ExitCode {
    if opts.positional.is_empty() {
        eprintln!("omnc-lint: check-scenario needs at least one scenario file");
        return ExitCode::from(2);
    }
    let mut merged = Report::default();
    for path in &opts.positional {
        match check_scenario_file(path) {
            Ok(report) => {
                merged.files_checked += report.files_checked;
                merged.findings.extend(report.findings);
            }
            Err(e) => {
                eprintln!("omnc-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    merged.finish();
    finish(&merged, opts)
}

fn run_rules() -> ExitCode {
    let table = RuleTable::default();
    for (rule, config) in table.iter() {
        let state = if config.enabled {
            config.severity.to_string()
        } else {
            "off".to_owned()
        };
        println!("{:<14} {:<5} {}", rule.name(), state, rule.describe());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("omnc-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match opts.command.as_str() {
        "check" => run_check(&opts),
        "check-scenario" => run_check_scenario(&opts),
        "rules" => run_rules(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("omnc-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
