//! `omnc-lint` — workspace static analysis and scenario validation CLI.
//!
//! ```text
//! omnc-lint check [--root DIR] [--cache PATH] [--format text|sarif]
//!                 [--sarif PATH] [--only PATH]... [--json PATH|-] [--quiet]
//! omnc-lint check-scenario FILE... [--json PATH|-] [--quiet]
//! omnc-lint rules
//! ```
//!
//! Exit codes: 0 = clean (warnings allowed), 1 = deny-level findings,
//! 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use omnc_lint::{
    check_scenario_file, check_workspace_cached, find_workspace_root, sarif, Report, RuleTable,
};
use telemetry::EventSink;

/// Parsed command line.
struct Options {
    /// `check`, `check-scenario` or `rules`.
    command: String,
    /// Positional arguments after the command (scenario files).
    positional: Vec<PathBuf>,
    /// `--root DIR` override for `check`.
    root: Option<PathBuf>,
    /// `--cache PATH` incremental analysis cache for `check`.
    cache: Option<PathBuf>,
    /// `--format text|sarif` stdout format for `check`.
    format: Format,
    /// `--sarif PATH` additionally writes a SARIF log to PATH.
    sarif: Option<PathBuf>,
    /// `--only PATH` (repeatable) keeps findings under the given
    /// workspace-relative prefixes only. Analysis still covers the whole
    /// workspace so blame chains stay correct.
    only: Vec<String>,
    /// `--json PATH` (`-` = stdout) JSONL output.
    json: Option<String>,
    /// `--quiet` suppresses the human-readable report.
    quiet: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Sarif,
}

const USAGE: &str = "usage: omnc-lint <command> [options]

commands:
  check            lint every crate under <root>/crates
  check-scenario   validate scenario file(s) against the model invariants
  rules            list the configured rules and their severities

options:
  --root DIR     workspace root for `check` (default: nearest ancestor
                 with a [workspace] Cargo.toml)
  --cache PATH   reuse/update an incremental analysis cache (keyed on
                 file content hash and the rule-table version; hit/miss
                 counts go to stderr)
  --format FMT   stdout format for `check`: text (default) or sarif
  --sarif PATH   additionally write a SARIF 2.1.0 log to PATH
  --only PATH    report findings only under this workspace-relative
                 prefix (repeatable; analysis still spans the workspace)
  --json PATH    also write findings as JSONL to PATH (`-` for stdout)
  --quiet        suppress the human-readable report
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let command = it.next().cloned().ok_or("missing command")?;
    let mut opts = Options {
        command,
        positional: Vec::new(),
        root: None,
        cache: None,
        format: Format::Text,
        sarif: None,
        only: Vec::new(),
        json: None,
        quiet: false,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--cache" => {
                let v = it.next().ok_or("--cache needs a value")?;
                opts.cache = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|sarif)")),
                };
            }
            "--sarif" => {
                let v = it.next().ok_or("--sarif needs a value")?;
                opts.sarif = Some(PathBuf::from(v));
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a value")?;
                opts.only.push(v.replace('\\', "/"));
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a value")?;
                opts.json = Some(v.clone());
            }
            "--quiet" | "-q" => opts.quiet = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => opts.positional.push(PathBuf::from(other)),
        }
    }
    Ok(opts)
}

/// Writes the report as JSONL to a file or stdout via the telemetry sink.
fn write_json(report: &Report, target: &str) -> std::io::Result<()> {
    let sink = if target == "-" {
        EventSink::in_memory()
    } else {
        EventSink::to_file(target)?
    };
    report.write_jsonl(&sink)?;
    if target == "-" {
        for line in sink.lines() {
            println!("{line}");
        }
    }
    Ok(())
}

/// Renders, optionally exports, and converts a report into an exit code.
fn finish(report: &Report, opts: &Options) -> ExitCode {
    if let Some(target) = &opts.json {
        if let Err(e) = write_json(report, target) {
            eprintln!("omnc-lint: writing JSONL to {target}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, sarif::render(report)) {
            eprintln!("omnc-lint: writing SARIF to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !opts.quiet {
        match opts.format {
            Format::Text => print!("{}", report.render()),
            Format::Sarif => println!("{}", sarif::render(report)),
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_check(opts: &Options) -> ExitCode {
    let root = match &opts.root {
        Some(dir) => dir.clone(),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("omnc-lint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!(
                        "omnc-lint: no [workspace] Cargo.toml above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let table = RuleTable::default();
    match check_workspace_cached(&root, &table, opts.cache.as_deref()) {
        Ok(mut report) => {
            if opts.cache.is_some() {
                // Stats go to stderr so warm/cold stdout stays byte-identical.
                eprintln!(
                    "omnc-lint: cache: {} hit(s), {} miss(es)",
                    report.cache_hits, report.cache_misses
                );
            }
            if !opts.only.is_empty() {
                report
                    .findings
                    .retain(|f| opts.only.iter().any(|p| f.path.starts_with(p.as_str())));
            }
            finish(&report, opts)
        }
        Err(e) => {
            eprintln!("omnc-lint: checking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn run_check_scenario(opts: &Options) -> ExitCode {
    if opts.positional.is_empty() {
        eprintln!("omnc-lint: check-scenario needs at least one scenario file");
        return ExitCode::from(2);
    }
    let mut merged = Report::default();
    let mut unreadable = 0usize;
    for path in &opts.positional {
        match check_scenario_file(path) {
            Ok(report) => {
                merged.files_checked += report.files_checked;
                merged.findings.extend(report.findings);
            }
            Err(e) => {
                // Report every unreadable input before giving up, rather
                // than stopping at the first.
                eprintln!("omnc-lint: reading {}: {e}", path.display());
                unreadable += 1;
            }
        }
    }
    if unreadable > 0 {
        eprintln!(
            "omnc-lint: {unreadable} of {} scenario file(s) unreadable",
            opts.positional.len()
        );
        return ExitCode::from(2);
    }
    merged.finish();
    finish(&merged, opts)
}

fn run_rules() -> ExitCode {
    let table = RuleTable::default();
    for (rule, config) in table.iter() {
        let state = if config.enabled {
            config.severity.to_string()
        } else {
            "off".to_owned()
        };
        println!("{:<17} {:<5} {}", rule.name(), state, rule.describe());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("omnc-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match opts.command.as_str() {
        "check" => run_check(&opts),
        "check-scenario" => run_check_scenario(&opts),
        "rules" => run_rules(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("omnc-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
