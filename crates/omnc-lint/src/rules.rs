//! The configurable rule table: what is checked where, and how loudly.
//!
//! Four rule families (ISSUE 3):
//!
//! * **(D) determinism** — the simulation core must be bit-reproducible
//!   under a fixed seed, so wall clocks, entropy-seeded RNGs,
//!   environment reads, and hash-order iteration are banned from the sim
//!   crates;
//! * **(P) panic-freedom** — designated hot-path modules must not
//!   `.unwrap()`, and `.expect(`/`panic!`/indexing are flagged for review;
//! * **(U) unsafe audit** — every workspace crate keeps
//!   `#![forbid(unsafe_code)]` or documents each allow with a `// SAFETY:`
//!   comment;
//! * **(F) float hygiene** — `==`/`!=` against float literals in the
//!   optimizer/LP crates.
//!
//! Determinism grew a fifth member with the campaign orchestrator
//! (ISSUE 5): **concurrency** — `std::thread` / `mpsc` (and, with the
//! live observability plane, `TcpListener`) stay banned in the sim
//! crates and in `omnc-campaign` and `omnc-telemetry` at large, with
//! exactly two sanctioned exceptions: the campaign's `executor.rs`
//! (workers run whole cells around the simulation, never threads inside
//! it) and the telemetry crate's `export.rs` (the read-only observer
//! thread serving `/metrics`).
//!
//! The SIMD/perf arc (ISSUE 8) added a sixth family, **(K) kernel
//! hygiene**, and made obligations *transitive*: `lossy-cast` (narrowing
//! `as` casts in wire/proto and kernel code), `unchecked-arith` (bare
//! `+`/`*` on packet/rank indices in hot paths), `atomics-audit` (every
//! `Ordering::` choice in the sanctioned unsafe surface needs an
//! `// ordering:` justification), and `clone-in-hot-loop`
//! (`.clone()`/`.to_vec()` inside loops on hot paths). Rules for which
//! [`Rule::propagates`] returns `true` additionally apply to any function
//! reachable in the call graph from a [`HOT_ENTRIES`] entry point,
//! regardless of module or crate — see `crate::callgraph`.
//!
//! Every rule can be suppressed locally with `// lint: allow(<rule>)` (same
//! line or the line above) or per file with `// lint: allow-file(<rule>)`.

use serde::{Deserialize, Serialize};

/// Bumped whenever rule semantics, scopes, or the analyzer's per-file
/// output change in a way that invalidates cached analyses. The
/// incremental cache (`--cache`) stores this and discards entries
/// recorded under a different version.
pub const RULES_VERSION: u32 = 3;

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Reported, does not fail the run.
    Warn,
    /// Fails the run (nonzero exit).
    Deny,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// Stable rule identifiers (also the names accepted by `lint: allow(...)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Rule {
    /// D: `Instant::now` / `SystemTime` wall-clock reads.
    WallClock,
    /// D: entropy-seeded randomness (`thread_rng`, `rand::random`, ...).
    NondetRng,
    /// D: process-environment reads (`env::var`, `env::args`, ...).
    EnvDep,
    /// D: iteration over `HashMap`/`HashSet` (order is seeded per process).
    HashIter,
    /// P: `.unwrap()` in hot-path modules.
    Unwrap,
    /// P: `.expect(` / `panic!` / `unreachable!` in hot-path modules.
    Panic,
    /// P: slice/array indexing in hot-path modules.
    Index,
    /// U: missing `#![forbid(unsafe_code)]` or undocumented unsafe.
    UnsafeAudit,
    /// F: `==` / `!=` against a float literal.
    FloatEq,
    /// D: thread spawning / channel plumbing outside the sanctioned
    /// campaign executor module.
    Concurrency,
    /// P: heap-allocating constructs (`Box::new`, degenerate
    /// `Vec::with_capacity(0)`) in hot-path modules.
    HotAlloc,
    /// K: narrowing `as` casts in wire/proto and kernel code.
    LossyCast,
    /// K: bare `+`/`*` on packet/rank index values in hot-path code.
    UncheckedArith,
    /// K: `Ordering::` without an `// ordering:` justification in the
    /// sanctioned unsafe surface.
    AtomicsAudit,
    /// K: `.clone()`/`.to_vec()` inside loops on hot paths.
    CloneInHotLoop,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 15] = [
        Rule::WallClock,
        Rule::NondetRng,
        Rule::EnvDep,
        Rule::HashIter,
        Rule::Unwrap,
        Rule::Panic,
        Rule::Index,
        Rule::UnsafeAudit,
        Rule::FloatEq,
        Rule::Concurrency,
        Rule::HotAlloc,
        Rule::LossyCast,
        Rule::UncheckedArith,
        Rule::AtomicsAudit,
        Rule::CloneInHotLoop,
    ];

    /// The name used in reports and `lint: allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::NondetRng => "nondet-rng",
            Rule::EnvDep => "env-dep",
            Rule::HashIter => "hash-iter",
            Rule::Unwrap => "unwrap",
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::FloatEq => "float-eq",
            Rule::Concurrency => "concurrency",
            Rule::HotAlloc => "hot-alloc",
            Rule::LossyCast => "lossy-cast",
            Rule::UncheckedArith => "unchecked-arith",
            Rule::AtomicsAudit => "atomics-audit",
            Rule::CloneInHotLoop => "clone-in-hot-loop",
        }
    }

    /// The rule named `name`, if any (inverse of [`Rule::name`]).
    pub fn by_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description for `omnc-lint rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock reads (Instant::now / SystemTime) in sim crates",
            Rule::NondetRng => {
                "entropy-seeded randomness (thread_rng / rand::random) in sim crates"
            }
            Rule::EnvDep => "process-environment reads (env::var / env::args) in sim crates",
            Rule::HashIter => "iteration over HashMap/HashSet bindings in sim crates",
            Rule::Unwrap => ".unwrap() in hot-path modules or code reachable from hot entries",
            Rule::Panic => ".expect( / panic! / unreachable! in designated hot-path modules",
            Rule::Index => "slice/array indexing in designated hot-path modules",
            Rule::UnsafeAudit => "crates must forbid unsafe_code or SAFETY-document each allow",
            Rule::FloatEq => "== / != against float literals in optimizer/LP crates",
            Rule::Concurrency => {
                "std::thread / mpsc / TcpListener use outside the two sanctioned modules \
                 (the omnc-campaign executor and the omnc-telemetry observer)"
            }
            Rule::HotAlloc => {
                "Box::new / Vec::with_capacity(0) allocations in designated hot-path modules"
            }
            Rule::LossyCast => "narrowing `as` casts in wire/proto and kernel code",
            Rule::UncheckedArith => {
                "bare + / * on seq/rank/index values in hot paths (use wrapping_*/checked_*)"
            }
            Rule::AtomicsAudit => {
                "atomic Ordering choices in the sanctioned unsafe surface need // ordering: notes"
            }
            Rule::CloneInHotLoop => ".clone() / .to_vec() inside loops reachable from hot entries",
        }
    }

    /// `true` for rules whose obligation is *transitive*: besides their
    /// static path scope, they apply inside any function reachable in the
    /// call graph from a [`HOT_ENTRIES`] entry point. Rules tied to a
    /// fixed audit surface (unsafe/atomics), to numeric style
    /// (float-eq), or to crate layout (concurrency, lossy-cast on wire
    /// layouts) do not travel with callers.
    pub fn propagates(self) -> bool {
        matches!(
            self,
            Rule::WallClock
                | Rule::NondetRng
                | Rule::EnvDep
                | Rule::HashIter
                | Rule::Unwrap
                | Rule::Panic
                | Rule::Index
                | Rule::HotAlloc
                | Rule::UncheckedArith
                | Rule::CloneInHotLoop
        )
    }
}

/// One rule's scope and severity.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Whether the rule runs at all.
    pub enabled: bool,
    /// Warn or deny.
    pub severity: Severity,
    /// Workspace-relative path prefixes the rule applies to. Empty means
    /// "every linted file".
    pub include: Vec<String>,
    /// Path substrings that exempt a file (e.g. `/src/bin/` entry points).
    pub exclude: Vec<String>,
}

impl RuleConfig {
    /// `true` if the rule applies to `path` (workspace-relative, `/`-separated).
    pub fn applies_to(&self, path: &str) -> bool {
        if !self.enabled {
            return false;
        }
        if self.exclude.iter().any(|e| path.contains(e.as_str())) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The full rule table.
#[derive(Debug, Clone)]
pub struct RuleTable {
    configs: Vec<(Rule, RuleConfig)>,
}

/// Crates whose `src/` trees form the deterministic simulation core.
pub const SIM_CRATES: [&str; 7] = [
    "crates/drift/",
    "crates/rlnc/",
    "crates/omnc/",
    "crates/omnc-opt/",
    "crates/net-topo/",
    "crates/gf256/",
    "crates/simplex-lp/",
];

/// Modules held to the panic-freedom bar: the per-event simulator engine,
/// the per-packet decoding kernels, and untrusted-input parsing.
pub const HOT_PATH_MODULES: [&str; 6] = [
    "crates/drift/src/sim.rs",
    "crates/drift/src/event.rs",
    "crates/rlnc/src/decoder.rs",
    "crates/rlnc/src/kernel.rs",
    "crates/gf256/src/",
    "crates/omnc/src/wire.rs",
];

/// Crates held to float-comparison hygiene (LP/optimizer numerics).
pub const FLOAT_CRATES: [&str; 2] = ["crates/omnc-opt/", "crates/simplex-lp/"];

/// The windowed time-series recorder. It lives in the telemetry crate
/// (which is otherwise exempt: clocks are its job) but feeds
/// byte-compared artifacts, so it is held to the simulation core's
/// determinism bar and must never sample a wall clock — and to the
/// hot-alloc bar, since every sim event records through it.
pub const TIMESERIES_MODULE: &str = "crates/omnc-telemetry/src/timeseries.rs";

/// Wire-format and kernel modules where a silently narrowing `as` cast can
/// corrupt packets or field elements: header encoders, message layouts,
/// and the GF(2^8) kernels.
pub const WIRE_KERNEL_MODULES: [&str; 5] = [
    "crates/omnc/src/wire.rs",
    "crates/omnc/src/msg.rs",
    "crates/rlnc/src/packet.rs",
    "crates/rlnc/src/kernel.rs",
    "crates/gf256/src/",
];

/// The workspace's one sanctioned unsafe surface: the counting global
/// allocator. Its atomics are the subject of `atomics-audit`.
pub const ALLOC_MODULE: &str = "crates/omnc-telemetry/src/alloc.rs";

/// A registered hot-path entry point for obligation propagation: any
/// function reachable from one of these in the approximate call graph
/// inherits the propagating rules' bars (see [`Rule::propagates`]).
#[derive(Debug, Clone, Copy)]
pub struct HotEntry {
    /// Workspace-relative path prefix the entry's defining file must match.
    pub path_prefix: &'static str,
    /// The `impl` owner type, or `None` for free functions.
    pub owner: Option<&'static str>,
    /// The function name.
    pub name: &'static str,
}

const fn entry(
    path_prefix: &'static str,
    owner: Option<&'static str>,
    name: &'static str,
) -> HotEntry {
    HotEntry {
        path_prefix,
        owner,
        name,
    }
}

/// The hot-path entry-point registry (DESIGN.md §6c): the per-packet
/// coding operations, the GF(2^8) slice kernels, the simulator event
/// dispatch loop and its event-queue/arena engine, the multi-session
/// dispatch, the LP pivot engine, and the rate-control iteration.
pub const HOT_ENTRIES: [HotEntry; 21] = [
    // rlnc: encode / recode / decode.
    entry("crates/rlnc/src/encoder.rs", Some("Encoder"), "emit"),
    entry(
        "crates/rlnc/src/encoder.rs",
        Some("Encoder"),
        "emit_with_coefficients",
    ),
    entry("crates/rlnc/src/recoder.rs", Some("Recoder"), "absorb"),
    entry("crates/rlnc/src/recoder.rs", Some("Recoder"), "emit"),
    entry("crates/rlnc/src/decoder.rs", Some("Decoder"), "absorb"),
    // gf256: the slice kernels every coding op bottoms out in.
    entry("crates/gf256/src/", None, "mul_add_assign"),
    entry("crates/gf256/src/", None, "mul_assign"),
    entry("crates/gf256/src/", None, "div_assign"),
    entry("crates/gf256/src/", None, "add_assign"),
    entry("crates/gf256/src/", None, "dot"),
    // drift: the event dispatch loop and the engine beneath it — the
    // indexed event queue's pop/schedule and the packet arena's
    // alloc/free run once per simulated event/packet.
    entry("crates/drift/src/sim.rs", Some("Simulator"), "run_until"),
    entry("crates/drift/src/core.rs", Some("EventQueue"), "pop"),
    entry("crates/drift/src/core.rs", Some("EventQueue"), "schedule"),
    entry("crates/drift/src/arena.rs", Some("Arena"), "alloc"),
    entry("crates/drift/src/arena.rs", Some("Arena"), "free"),
    // omnc: the multi-session dispatch — N coupled sessions drive one
    // simulator, so everything it reaches is per-packet hot.
    entry("crates/omnc/src/multi.rs", None, "run_multi_session"),
    // simplex-lp: the pivot engine.
    entry("crates/simplex-lp/src/solver.rs", Some("Tableau"), "pivot"),
    entry("crates/simplex-lp/src/solver.rs", None, "solve"),
    // omnc-opt: the subgradient iteration.
    entry(
        "crates/omnc-opt/src/algorithm.rs",
        Some("RateControl"),
        "iterate",
    ),
    entry(
        "crates/omnc-opt/src/algorithm.rs",
        Some("RateControl"),
        "run",
    ),
    entry("crates/omnc-opt/src/algorithm.rs", None, "run_best"),
];

impl Default for RuleTable {
    fn default() -> Self {
        let sim: Vec<String> = SIM_CRATES
            .iter()
            .map(|s| (*s).to_owned())
            .chain(std::iter::once(TIMESERIES_MODULE.to_owned()))
            .collect();
        let hot: Vec<String> = HOT_PATH_MODULES.iter().map(|s| (*s).to_owned()).collect();
        let hot_alloc: Vec<String> = HOT_PATH_MODULES
            .iter()
            .map(|s| (*s).to_owned())
            .chain(std::iter::once(TIMESERIES_MODULE.to_owned()))
            .collect();
        let float: Vec<String> = FLOAT_CRATES.iter().map(|s| (*s).to_owned()).collect();
        let concurrency: Vec<String> = SIM_CRATES
            .iter()
            .map(|s| (*s).to_owned())
            .chain([
                "crates/omnc-campaign/".to_owned(),
                "crates/omnc-telemetry/".to_owned(),
            ])
            .collect();
        let wire_kernel: Vec<String> = WIRE_KERNEL_MODULES
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let alloc: Vec<String> = vec![ALLOC_MODULE.to_owned()];
        let cfg = |severity, include: &Vec<String>, exclude: Vec<&str>| RuleConfig {
            enabled: true,
            severity,
            include: include.clone(),
            exclude: exclude.into_iter().map(str::to_owned).collect(),
        };
        RuleTable {
            configs: vec![
                (Rule::WallClock, cfg(Severity::Deny, &sim, vec![])),
                (Rule::NondetRng, cfg(Severity::Deny, &sim, vec![])),
                // Binaries legitimately parse argv; the library core must not.
                (Rule::EnvDep, cfg(Severity::Deny, &sim, vec!["/src/bin/"])),
                (Rule::HashIter, cfg(Severity::Deny, &sim, vec![])),
                (Rule::Unwrap, cfg(Severity::Deny, &hot, vec![])),
                (Rule::Panic, cfg(Severity::Warn, &hot, vec![])),
                (Rule::Index, cfg(Severity::Warn, &hot, vec![])),
                (Rule::UnsafeAudit, cfg(Severity::Deny, &Vec::new(), vec![])),
                (Rule::FloatEq, cfg(Severity::Deny, &float, vec![])),
                // Two sanctioned concurrency surfaces: the campaign
                // executor (cells run on worker threads *around* the
                // simulation, never inside it) and the telemetry observer
                // (a read-only TcpListener thread serving /metrics).
                (
                    Rule::Concurrency,
                    cfg(
                        Severity::Deny,
                        &concurrency,
                        vec![
                            "crates/omnc-campaign/src/executor.rs",
                            "crates/omnc-telemetry/src/export.rs",
                        ],
                    ),
                ),
                // The allocation-observability arc: hot paths must stay
                // allocation-free, so direct heap constructs need a
                // `// lint: allow(hot-alloc)` escape hatch.
                (Rule::HotAlloc, cfg(Severity::Deny, &hot_alloc, vec![])),
                // The SIMD/perf arc (kernel hygiene).
                (Rule::LossyCast, cfg(Severity::Deny, &wire_kernel, vec![])),
                (Rule::UncheckedArith, cfg(Severity::Deny, &hot, vec![])),
                (Rule::AtomicsAudit, cfg(Severity::Deny, &alloc, vec![])),
                (Rule::CloneInHotLoop, cfg(Severity::Deny, &hot, vec![])),
            ],
        }
    }
}

impl RuleTable {
    /// The configuration for `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is missing from the table (impossible for tables
    /// built by [`RuleTable::default`]).
    pub fn config(&self, rule: Rule) -> &RuleConfig {
        self.configs
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, c)| c)
            .unwrap_or_else(|| panic!("rule {} missing from table", rule.name()))
    }

    /// Mutable access, for tests and CLI overrides.
    pub fn config_mut(&mut self, rule: Rule) -> &mut RuleConfig {
        self.configs
            .iter_mut()
            .find(|(r, _)| *r == rule)
            .map(|(_, c)| c)
            .unwrap_or_else(|| panic!("rule {} missing from table", rule.name()))
    }

    /// Iterates `(rule, config)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (Rule, &RuleConfig)> {
        self.configs.iter().map(|(r, c)| (*r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_scopes_rules_as_documented() {
        let t = RuleTable::default();
        assert!(t
            .config(Rule::WallClock)
            .applies_to("crates/drift/src/sim.rs"));
        assert!(!t
            .config(Rule::WallClock)
            .applies_to("crates/omnc-telemetry/src/timer.rs"));
        // The time-series recorder is the telemetry crate's one module
        // held to the determinism and hot-alloc bars: it feeds
        // byte-compared artifacts and sits on the per-event record path.
        assert!(t.config(Rule::WallClock).applies_to(TIMESERIES_MODULE));
        assert!(t.config(Rule::NondetRng).applies_to(TIMESERIES_MODULE));
        assert!(t.config(Rule::HashIter).applies_to(TIMESERIES_MODULE));
        assert!(t.config(Rule::HotAlloc).applies_to(TIMESERIES_MODULE));
        assert!(!t.config(Rule::Unwrap).applies_to(TIMESERIES_MODULE));
        assert!(!t
            .config(Rule::EnvDep)
            .applies_to("crates/omnc/src/bin/omnc-sim.rs"));
        assert!(t.config(Rule::EnvDep).applies_to("crates/omnc/src/lib.rs"));
        assert!(t
            .config(Rule::Unwrap)
            .applies_to("crates/gf256/src/wide.rs"));
        assert!(!t
            .config(Rule::Unwrap)
            .applies_to("crates/omnc/src/runner.rs"));
        assert!(t
            .config(Rule::FloatEq)
            .applies_to("crates/simplex-lp/src/solver.rs"));
        assert!(t.config(Rule::UnsafeAudit).applies_to("anything"));
        assert!(t
            .config(Rule::HotAlloc)
            .applies_to("crates/rlnc/src/decoder.rs"));
        assert!(t
            .config(Rule::HotAlloc)
            .applies_to("crates/gf256/src/wide.rs"));
        assert!(!t
            .config(Rule::HotAlloc)
            .applies_to("crates/omnc/src/runner.rs"));
        assert!(t
            .config(Rule::Concurrency)
            .applies_to("crates/drift/src/sim.rs"));
        assert!(t
            .config(Rule::Concurrency)
            .applies_to("crates/omnc-campaign/src/lib.rs"));
        assert!(!t
            .config(Rule::Concurrency)
            .applies_to("crates/omnc-campaign/src/executor.rs"));
        // The telemetry crate is in scope (a rogue listener in the sink
        // would be a finding) with the observer module sanctioned.
        assert!(t
            .config(Rule::Concurrency)
            .applies_to("crates/omnc-telemetry/src/registry.rs"));
        assert!(!t
            .config(Rule::Concurrency)
            .applies_to("crates/omnc-telemetry/src/export.rs"));
    }

    #[test]
    fn kernel_hygiene_rules_scope_as_documented() {
        let t = RuleTable::default();
        // lossy-cast covers wire layouts and the kernels, nothing else.
        assert!(t
            .config(Rule::LossyCast)
            .applies_to("crates/omnc/src/wire.rs"));
        assert!(t
            .config(Rule::LossyCast)
            .applies_to("crates/rlnc/src/packet.rs"));
        assert!(t
            .config(Rule::LossyCast)
            .applies_to("crates/gf256/src/wide.rs"));
        assert!(!t
            .config(Rule::LossyCast)
            .applies_to("crates/omnc-opt/src/algorithm.rs"));
        // unchecked-arith and clone-in-hot-loop share the hot-path scope
        // (and additionally propagate through the call graph).
        assert!(t
            .config(Rule::UncheckedArith)
            .applies_to("crates/drift/src/event.rs"));
        assert!(!t
            .config(Rule::UncheckedArith)
            .applies_to("crates/omnc/src/runner.rs"));
        assert!(t
            .config(Rule::CloneInHotLoop)
            .applies_to("crates/rlnc/src/decoder.rs"));
        // atomics-audit is pinned to the one sanctioned unsafe surface.
        assert!(t.config(Rule::AtomicsAudit).applies_to(ALLOC_MODULE));
        assert!(!t
            .config(Rule::AtomicsAudit)
            .applies_to("crates/omnc-telemetry/src/sink.rs"));
    }

    #[test]
    fn propagating_rules_are_the_hot_path_obligations() {
        for rule in [
            Rule::Unwrap,
            Rule::Panic,
            Rule::Index,
            Rule::HotAlloc,
            Rule::WallClock,
            Rule::NondetRng,
            Rule::UncheckedArith,
            Rule::CloneInHotLoop,
        ] {
            assert!(rule.propagates(), "{} should propagate", rule.name());
        }
        for rule in [
            Rule::UnsafeAudit,
            Rule::FloatEq,
            Rule::Concurrency,
            Rule::LossyCast,
            Rule::AtomicsAudit,
        ] {
            assert!(!rule.propagates(), "{} should not propagate", rule.name());
        }
    }

    #[test]
    fn hot_entries_live_in_sim_crates() {
        for e in HOT_ENTRIES {
            assert!(
                SIM_CRATES.iter().any(|c| e.path_prefix.starts_with(c)),
                "entry {} is outside the sim crates",
                e.name
            );
        }
    }

    #[test]
    fn rule_names_are_stable_and_unique() {
        let mut names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }
}
