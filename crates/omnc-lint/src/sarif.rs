//! SARIF 2.1.0 output (`--format sarif` / `--sarif PATH`).
//!
//! SARIF property names (`$schema`, `ruleId`, camelCase keys) cannot be
//! produced by the vendored serde derive (no rename support), so this is
//! a small hand-rolled JSON writer. Output is deterministic: findings are
//! already sorted by the report, and rule metadata follows
//! [`Rule::ALL`](crate::rules::Rule::ALL) order.

use crate::findings::Report;
use crate::rules::{Rule, Severity};

/// Renders the report as a single-run SARIF 2.1.0 log.
pub fn render(report: &Report) -> String {
    let mut out = String::with_capacity(4096 + report.findings.len() * 256);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"omnc-lint\",\"informationUri\":\"https://example.invalid/omnc\",");
    out.push_str("\"rules\":[");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        push_json_string(&mut out, rule.name());
        out.push_str(",\"shortDescription\":{\"text\":");
        push_json_string(&mut out, rule.describe());
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ruleId\":");
        push_json_string(&mut out, &f.rule);
        out.push_str(",\"level\":");
        push_json_string(
            &mut out,
            match f.severity {
                Severity::Deny => "error",
                Severity::Warn => "warning",
            },
        );
        out.push_str(",\"message\":{\"text\":");
        let text = match &f.chain {
            Some(chain) => format!("{} [hot path: {chain}]", f.message),
            None => f.message.clone(),
        };
        push_json_string(&mut out, &text);
        out.push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
        push_json_string(&mut out, &f.path);
        out.push_str("},\"region\":{\"startLine\":");
        // SARIF requires startLine >= 1; file-level findings use line 0.
        out.push_str(&f.line.max(1).to_string());
        out.push_str("}}}]}");
    }
    out.push_str("]}]}");
    out
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Finding;

    #[test]
    fn sarif_is_valid_json_with_rules_and_results() {
        let mut report = Report::default();
        let mut f = Finding::new(
            "crates/gf256/src/slice.rs",
            7,
            Rule::Unwrap,
            Severity::Deny,
            "unchecked unwrap in hot path: `.unwrap()` is banned here".into(),
            "x.unwrap()",
        );
        f.chain = Some("Encoder::emit → lead".into());
        report.findings.push(f);
        report.findings.push(Finding::new(
            "crates/omnc/src/wire.rs",
            0,
            Rule::UnsafeAudit,
            Severity::Warn,
            "file-level \"quoted\" message".into(),
            "",
        ));
        report.files_checked = 2;
        let text = render(&report);

        // Parses as JSON (vendored serde_json) and carries the key fields.
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let runs = v.get("runs").and_then(|r| r.as_array()).unwrap();
        let results = runs[0].get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(|r| r.as_str()),
            Some("unwrap")
        );
        assert_eq!(
            results[0].get("level").and_then(|l| l.as_str()),
            Some("error")
        );
        let msg = results[0].get("message").unwrap().get("text").unwrap();
        assert!(msg.as_str().unwrap().contains("hot path: Encoder::emit"));
        // Line 0 file-level findings clamp to SARIF's 1-based minimum.
        let region = results[1]
            .get("locations")
            .and_then(|l| l.as_array())
            .unwrap()[0]
            .get("physicalLocation")
            .unwrap()
            .get("region")
            .unwrap();
        assert_eq!(region.get("startLine").and_then(|l| l.as_u64()), Some(1));
        // All 15 rules are described in the driver metadata.
        let rules = runs[0]
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(rules.len(), Rule::ALL.len());
    }
}
