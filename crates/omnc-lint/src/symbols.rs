//! Symbol extraction: item declarations from the cleaned token stream.
//!
//! The workspace has no `syn`, so this is a line/brace-oriented scan over
//! the lexer's cleaned view (`crate::lexer::clean`): comments and literal
//! contents are already blanked, which makes brace counting and keyword
//! token matching reliable. The pass recovers, per file:
//!
//! * every function: name, `impl` owner type (and trait, for trait
//!   impls), 1-based body span, whether it sits in a `#[cfg(test)]`
//!   region, and the call sites inside its body;
//! * bodyless trait-method declarations (dispatch targets);
//! * `use` imports (one brace level deep), for free-function resolution.
//!
//! The output feeds `crate::callgraph`, which resolves call sites into an
//! approximate cross-crate call graph for obligation propagation. The
//! structures serialize into the incremental lint cache, so symbol
//! extraction is skipped entirely for unchanged files on warm runs.

use serde::{Deserialize, Serialize};

use crate::lexer::CleanFile;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallSite {
    /// The called name (last path segment).
    pub callee: String,
    /// The `::`-joined path before the callee (`gf256::slice`, `Self`,
    /// `Kernel`), if any.
    pub qualifier: Option<String>,
    /// `true` for `.callee(...)` method syntax.
    pub method: bool,
    /// 1-based source line.
    pub line: usize,
}

/// One function (or bodyless trait-method declaration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnSym {
    /// The function name.
    pub name: String,
    /// The `impl` type or trait the function belongs to; `None` for free
    /// functions.
    pub owner: Option<String>,
    /// For `impl Trait for Type` methods, the trait name.
    pub trait_name: Option<String>,
    /// 1-based first line of the declaration (attributes/signature).
    pub start: usize,
    /// 1-based last line of the body (`== start` for bodyless decls).
    pub end: usize,
    /// `true` when declared inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// `true` for bodyless trait-method declarations.
    pub decl_only: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnSym {
    /// `Owner::name` or bare `name`, for blame chains.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use` import visible in the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Import {
    /// The name as visible in this file (the alias, for `as` renames).
    pub name: String,
    /// The full `::`-joined path.
    pub path: String,
}

/// All symbols extracted from one file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FileSymbols {
    /// Functions in declaration order.
    pub fns: Vec<FnSym>,
    /// Imports in declaration order.
    pub imports: Vec<Import>,
}

/// What kind of braced scope a `{` opened.
#[derive(Debug, Clone)]
enum ScopeKind {
    Impl {
        type_name: Option<String>,
        trait_name: Option<String>,
    },
    Trait(String),
    Fn(usize),
    Other,
}

struct Scope {
    kind: ScopeKind,
    open_depth: u32,
}

/// Extracts declarations and call sites from a cleaned file. `in_test`
/// is the per-line `#[cfg(test)]` mask (`crate::analyzer::test_line_mask`).
pub fn extract(file: &CleanFile, in_test: &[bool]) -> FileSymbols {
    let mut out = FileSymbols::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut depth = 0u32;
    // Declaration text accumulated since the last `{` / `}` / `;`.
    let mut pending = String::new();
    let mut pending_start: Option<usize> = None; // 0-based line index
    let mut in_use_decl = false;

    for (idx, line) in file.lines.iter().enumerate() {
        for c in line.code.chars() {
            // Inside a grouped `use a::{...}` the braces are path syntax,
            // not scopes: accumulate verbatim until the terminating `;`.
            if in_use_decl {
                if c == ';' {
                    flush_semicolon(
                        &pending,
                        &stack,
                        &mut out,
                        pending_start.unwrap_or(idx),
                        in_test,
                    );
                    pending.clear();
                    pending_start = None;
                    in_use_decl = false;
                } else {
                    pending.push(c);
                }
                continue;
            }
            match c {
                '{' if is_use_decl(&pending) => {
                    pending.push(c);
                    in_use_decl = true;
                }
                '{' => {
                    let start = pending_start.unwrap_or(idx);
                    let kind = classify(&pending, &stack, &mut out, start, in_test);
                    stack.push(Scope {
                        kind,
                        open_depth: depth,
                    });
                    depth += 1;
                    pending.clear();
                    pending_start = None;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while stack.last().is_some_and(|s| s.open_depth >= depth) {
                        if let Some(Scope {
                            kind: ScopeKind::Fn(fi),
                            ..
                        }) = stack.pop()
                        {
                            out.fns[fi].end = file.lines[idx].number;
                        }
                    }
                    pending.clear();
                    pending_start = None;
                }
                ';' => {
                    flush_semicolon(
                        &pending,
                        &stack,
                        &mut out,
                        pending_start.unwrap_or(idx),
                        in_test,
                    );
                    pending.clear();
                    pending_start = None;
                }
                _ => {
                    if pending_start.is_none() && !c.is_whitespace() {
                        pending_start = Some(idx);
                    }
                    pending.push(c);
                }
            }
        }
        pending.push(' ');
    }

    attach_calls(file, &mut out);
    out
}

/// Decides what scope a `{` opens and records fn/impl/trait declarations.
fn classify(
    pending: &str,
    stack: &[Scope],
    out: &mut FileSymbols,
    start_idx: usize,
    in_test: &[bool],
) -> ScopeKind {
    if let Some(name) = fn_decl_name(pending) {
        let (owner, trait_name) = enclosing_owner(stack);
        out.fns.push(FnSym {
            name,
            owner,
            trait_name,
            start: start_idx + 1,
            end: start_idx + 1,
            is_test: in_test.get(start_idx).copied().unwrap_or(false),
            decl_only: false,
            calls: Vec::new(),
        });
        return ScopeKind::Fn(out.fns.len() - 1);
    }
    if let Some((type_name, trait_name)) = impl_header(pending) {
        return ScopeKind::Impl {
            type_name,
            trait_name,
        };
    }
    if let Some(name) = trait_decl_name(pending) {
        return ScopeKind::Trait(name);
    }
    ScopeKind::Other
}

/// Handles a `;`-terminated declaration: `use` imports and bodyless
/// trait-method declarations.
fn flush_semicolon(
    pending: &str,
    stack: &[Scope],
    out: &mut FileSymbols,
    start_idx: usize,
    in_test: &[bool],
) {
    if is_use_decl(pending) {
        parse_use(pending, &mut out.imports);
        return;
    }
    // A bodyless `fn name(...);` directly inside a trait is a dispatch
    // target: calls through the trait resolve to every implementor.
    if let Some(Scope {
        kind: ScopeKind::Trait(trait_name),
        ..
    }) = stack.last()
    {
        if let Some(name) = fn_decl_name(pending) {
            out.fns.push(FnSym {
                name,
                owner: Some(trait_name.clone()),
                trait_name: Some(trait_name.clone()),
                start: start_idx + 1,
                end: start_idx + 1,
                is_test: in_test.get(start_idx).copied().unwrap_or(false),
                decl_only: true,
                calls: Vec::new(),
            });
        }
    }
}

/// The innermost `impl`/`trait` owner for a function declared now.
fn enclosing_owner(stack: &[Scope]) -> (Option<String>, Option<String>) {
    for scope in stack.iter().rev() {
        match &scope.kind {
            ScopeKind::Impl {
                type_name,
                trait_name,
            } => return (type_name.clone(), trait_name.clone()),
            ScopeKind::Trait(name) => return (Some(name.clone()), Some(name.clone())),
            // A fn nested inside another fn's body is a free function.
            ScopeKind::Fn(_) => return (None, None),
            ScopeKind::Other => continue,
        }
    }
    (None, None)
}

// ---------------------------------------------------------------------------
// Declaration-text parsing
// ---------------------------------------------------------------------------

/// Position of `word` as a standalone token in `text`, scanning forward.
fn find_token(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(p) = text[from..].find(word) {
        let pos = from + p;
        let before_ok = pos == 0 || !is_ident_char(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + word.len().max(1);
    }
    None
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reads the identifier starting at `pos`.
fn ident_at(text: &str, pos: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut j = pos;
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && is_ident_char(bytes[j]) {
        j += 1;
    }
    (j > start).then(|| text[start..j].to_owned())
}

/// If `pending` declares a function (`fn name`), returns the name. Scans
/// `fn` tokens and takes the first followed by an identifier, so fn-pointer
/// parameter types (`f: fn(u8)`) and `impl Fn` bounds don't match.
fn fn_decl_name(pending: &str) -> Option<String> {
    let mut from = 0;
    while let Some(rel) = find_token(&pending[from..], "fn") {
        let pos = from + rel;
        if let Some(name) = ident_at(pending, pos + 2) {
            return Some(name);
        }
        from = pos + 2;
    }
    None
}

/// If `pending` declares a trait, returns its name.
fn trait_decl_name(pending: &str) -> Option<String> {
    let pos = find_token(pending, "trait")?;
    ident_at(pending, pos + 5)
}

/// Parses an `impl` header into `(type_name, trait_name)`:
/// `impl<T> Foo<T>` → `(Some("Foo"), None)`;
/// `impl Display for Severity` → `(Some("Severity"), Some("Display"))`.
fn impl_header(pending: &str) -> Option<(Option<String>, Option<String>)> {
    let pos = find_token(pending, "impl")?;
    let mut rest = pending[pos + 4..].trim_start();
    // Strip the generic parameter list, minding `->` inside `Fn() -> T`
    // bounds so its `>` doesn't close the list early.
    if rest.starts_with('<') {
        let bytes = rest.as_bytes();
        let mut depth = 0i32;
        let mut end = bytes.len();
        let mut k = 0;
        while k < bytes.len() {
            match bytes[k] {
                b'<' => depth += 1,
                b'>' if k > 0 && bytes[k - 1] == b'-' => {}
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        rest = rest[end.min(rest.len())..].trim_start();
    }
    // Drop any `where` clause.
    let rest = match find_token(rest, "where") {
        Some(w) => rest[..w].trim_end(),
        None => rest,
    };
    if let Some(for_pos) = find_token(rest, "for") {
        let trait_part = rest[..for_pos].trim();
        let type_part = rest[for_pos + 3..].trim();
        Some((base_type_name(type_part), base_type_name(trait_part)))
    } else {
        Some((base_type_name(rest), None))
    }
}

/// The base identifier of a type expression: last path segment before any
/// generics (`net_topo::Graph<W>` → `Graph`, `&mut [u8]` → None).
fn base_type_name(text: &str) -> Option<String> {
    let t = text.trim().trim_start_matches('&').trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let head = t
        .split(|c: char| c == '<' || c.is_whitespace())
        .next()
        .unwrap_or("");
    let seg = head.rsplit("::").next().unwrap_or("");
    let seg: String = seg
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!seg.is_empty() && seg.chars().next().is_some_and(char::is_alphabetic)).then_some(seg)
}

/// `true` when `pending` is (so far) a `use` declaration (possibly `pub use`).
fn is_use_decl(pending: &str) -> bool {
    let t = pending.trim_start();
    let t = t.strip_prefix("pub").map_or(t, |r| {
        let r = r.trim_start();
        r.strip_prefix("(crate)").map_or(r, |x| x).trim_start()
    });
    t == "use"
        || t.strip_prefix("use")
            .is_some_and(|r| r.starts_with(|c: char| c.is_whitespace()))
}

/// Parses a complete `use` declaration (without the trailing `;`) into
/// imports. Handles one level of `{...}` grouping and `as` renames; globs
/// and deeper nesting are skipped (resolution then falls back to
/// same-crate name search).
fn parse_use(pending: &str, imports: &mut Vec<Import>) {
    let t = pending.trim();
    let Some(pos) = find_token(t, "use") else {
        return;
    };
    let body = t[pos + 3..].trim();
    if let Some(brace) = body.find('{') {
        let prefix = body[..brace].trim_end_matches("::").trim();
        let Some(close) = body.rfind('}') else {
            return;
        };
        for entry in body[brace + 1..close].split(',') {
            add_use_entry(prefix, entry.trim(), imports);
        }
    } else {
        add_use_entry("", body, imports);
    }
}

fn add_use_entry(prefix: &str, entry: &str, imports: &mut Vec<Import>) {
    if entry.is_empty() || entry.contains('{') || entry.contains('*') {
        return;
    }
    let (path_part, alias) = match find_token(entry, "as") {
        Some(p) => (entry[..p].trim(), Some(entry[p + 2..].trim())),
        None => (entry.trim(), None),
    };
    let full = if prefix.is_empty() {
        path_part.to_owned()
    } else if path_part == "self" {
        prefix.to_owned()
    } else {
        format!("{prefix}::{path_part}")
    };
    let visible = alias
        .map(str::to_owned)
        .or_else(|| full.rsplit("::").next().map(str::to_owned));
    if let Some(name) = visible {
        if !name.is_empty() {
            imports.push(Import { name, path: full });
        }
    }
}

// ---------------------------------------------------------------------------
// Call-site extraction
// ---------------------------------------------------------------------------

const KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "as", "in", "move", "ref", "let", "else",
    "fn", "unsafe", "await", "box",
];

/// Second pass: attribute call sites on each line to the innermost
/// function whose body span contains it.
fn attach_calls(file: &CleanFile, out: &mut FileSymbols) {
    for line in &file.lines {
        let number = line.number;
        // Innermost containing fn = max start among spans covering the line.
        let Some(fi) = out
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.decl_only && f.start <= number && number <= f.end)
            .max_by_key(|(_, f)| f.start)
            .map(|(i, _)| i)
        else {
            continue;
        };
        let mut calls = line_calls(&line.code, number);
        out.fns[fi].calls.append(&mut calls);
    }
}

/// Extracts the call sites on one cleaned line.
fn line_calls(code: &str, number: usize) -> Vec<CallSite> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (j, &b) in bytes.iter().enumerate() {
        if b != b'(' || j == 0 {
            continue;
        }
        let mut k = j;
        // Turbofish: `name::<T>(` — skip back over the balanced `<...>`.
        if bytes[k - 1] == b'>' {
            let mut depth = 0i32;
            let mut m = k - 1;
            loop {
                match bytes[m] {
                    b'>' => depth += 1,
                    b'<' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if m == 0 {
                    break;
                }
                m -= 1;
            }
            if depth != 0 || m < 2 || &code[m - 2..m] != "::" {
                continue;
            }
            k = m - 2;
        }
        if k == 0 || !is_ident_char(bytes[k - 1]) {
            continue;
        }
        let end = k;
        let mut s = k;
        while s > 0 && is_ident_char(bytes[s - 1]) {
            s -= 1;
        }
        let ident = &code[s..end];
        if ident.is_empty()
            || ident.chars().next().is_some_and(char::is_uppercase)
            || ident.chars().next().is_some_and(|c| c.is_ascii_digit())
            || KEYWORDS.contains(&ident)
        {
            continue;
        }
        // `fn ident(` is a definition, not a call.
        let before_text = code[..s].trim_end();
        if before_text.ends_with("fn") {
            let bt = before_text.as_bytes();
            if bt.len() == 2 || !is_ident_char(bt[bt.len() - 3]) {
                continue;
            }
        }
        // Path qualifier: walk back over `seg::` groups.
        let mut qual_start = s;
        let mut q = s;
        while q >= 2 && &code[q - 2..q] == "::" {
            let mut p = q - 2;
            while p > 0 && is_ident_char(bytes[p - 1]) {
                p -= 1;
            }
            if p == q - 2 {
                break;
            }
            qual_start = p;
            q = p;
        }
        let qualifier = (qual_start < s).then(|| code[qual_start..s.saturating_sub(2)].to_owned());
        let method = qualifier.is_none() && qual_start > 0 && bytes[qual_start - 1] == b'.';
        out.push(CallSite {
            callee: ident.to_owned(),
            qualifier,
            method,
            line: number,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::test_line_mask;
    use crate::lexer::clean;

    fn symbols(src: &str) -> FileSymbols {
        let file = clean(src);
        let mask = test_line_mask(&file);
        extract(&file, &mask)
    }

    #[test]
    fn free_fn_with_span_and_calls() {
        let src = "fn outer(x: u8) -> u8 {\n    helper(x);\n    other::helper2(x)\n}\n";
        let syms = symbols(src);
        assert_eq!(syms.fns.len(), 1);
        let f = &syms.fns[0];
        assert_eq!(f.name, "outer");
        assert_eq!((f.start, f.end), (1, 4));
        assert_eq!(f.owner, None);
        let callees: Vec<&str> = f.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, ["helper", "helper2"]);
        assert_eq!(f.calls[1].qualifier.as_deref(), Some("other"));
    }

    #[test]
    fn impl_methods_get_owner_and_trait() {
        let src = "\
struct Encoder;
impl Encoder {
    pub fn emit(&mut self) -> u8 {
        self.step()
    }
}
impl<'a> std::fmt::Display for Encoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"e\")
    }
}
";
        let syms = symbols(src);
        assert_eq!(syms.fns.len(), 2, "{syms:#?}");
        assert_eq!(syms.fns[0].name, "emit");
        assert_eq!(syms.fns[0].owner.as_deref(), Some("Encoder"));
        assert_eq!(syms.fns[0].trait_name, None);
        assert_eq!(syms.fns[0].calls[0].callee, "step");
        assert!(syms.fns[0].calls[0].method);
        assert_eq!(syms.fns[1].name, "fmt");
        assert_eq!(syms.fns[1].owner.as_deref(), Some("Encoder"));
        assert_eq!(syms.fns[1].trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn generic_impl_headers_parse() {
        let src = "\
impl<M: Clone + 'static, B: Behavior<M> + ?Sized> Simulator<M, B> {
    pub fn run_until(&mut self) { self.dispatch(); }
}
impl<F: Fn() -> u8> Holder<F> {
    fn call_it(&self) { go(); }
}
";
        let syms = symbols(src);
        assert_eq!(syms.fns[0].owner.as_deref(), Some("Simulator"));
        assert_eq!(syms.fns[1].owner.as_deref(), Some("Holder"));
    }

    #[test]
    fn trait_decls_are_dispatch_targets() {
        let src = "\
pub trait Behavior {
    fn on_packet(&mut self, p: u8);
    fn tick(&mut self) { self.on_packet(0); }
}
";
        let syms = symbols(src);
        assert_eq!(syms.fns.len(), 2, "{syms:#?}");
        let decl = &syms.fns[0];
        assert_eq!(decl.name, "on_packet");
        assert!(decl.decl_only);
        assert_eq!(decl.owner.as_deref(), Some("Behavior"));
        let default_m = &syms.fns[1];
        assert_eq!(default_m.name, "tick");
        assert!(!default_m.decl_only);
        assert_eq!(default_m.calls[0].callee, "on_packet");
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn shipping() { helper(); }
#[cfg(test)]
mod tests {
    fn test_helper() { shipping(); }
}
";
        let syms = symbols(src);
        assert_eq!(syms.fns.len(), 2, "{syms:#?}");
        assert!(!syms.fns[0].is_test);
        assert!(syms.fns[1].is_test, "{syms:#?}");
    }

    #[test]
    fn use_imports_parse_groups_and_renames() {
        let src = "\
use gf256::slice::mul_add_assign;
use crate::kernel::{Kernel, scalar as sc, self};
pub fn f() {}
";
        let syms = symbols(src);
        let find = |n: &str| syms.imports.iter().find(|i| i.name == n);
        assert_eq!(
            find("mul_add_assign").map(|i| i.path.as_str()),
            Some("gf256::slice::mul_add_assign")
        );
        assert_eq!(
            find("Kernel").map(|i| i.path.as_str()),
            Some("crate::kernel::Kernel")
        );
        assert_eq!(
            find("sc").map(|i| i.path.as_str()),
            Some("crate::kernel::scalar")
        );
        assert_eq!(
            find("kernel").map(|i| i.path.as_str()),
            Some("crate::kernel")
        );
    }

    #[test]
    fn calls_skip_macros_constructors_and_keywords() {
        let src = "\
fn f() {
    assert_eq!(g(), 1);
    let v = Vec::with_capacity(4);
    if check(v.len()) { return; }
    let s = Some(3);
    h::<u32>(s);
}
";
        let syms = symbols(src);
        let callees: Vec<&str> = syms.fns[0]
            .calls
            .iter()
            .map(|c| c.callee.as_str())
            .collect();
        // `g` (inside the macro args), `with_capacity` (qualified by Vec),
        // `check`, `len`, and the turbofish `h` — but not `assert_eq`,
        // `Some`, `if`, or `return`.
        assert_eq!(
            callees,
            ["g", "with_capacity", "check", "len", "h"],
            "{syms:#?}"
        );
        let h = syms.fns[0].calls.iter().find(|c| c.callee == "h").unwrap();
        assert!(!h.method);
        let wc = &syms.fns[0].calls[1];
        assert_eq!(wc.qualifier.as_deref(), Some("Vec"));
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_innermost() {
        let src = "\
fn outer() {
    fn inner() {
        deep();
    }
    shallow();
}
";
        let syms = symbols(src);
        assert_eq!(syms.fns.len(), 2);
        let outer = syms.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = syms.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(
            inner
                .calls
                .iter()
                .map(|c| c.callee.as_str())
                .collect::<Vec<_>>(),
            ["deep"]
        );
        assert_eq!(
            outer
                .calls
                .iter()
                .map(|c| c.callee.as_str())
                .collect::<Vec<_>>(),
            ["shallow"]
        );
    }

    #[test]
    fn multiline_signatures_and_uses() {
        let src = "\
use crate::{
    alpha,
    beta::gamma,
};
pub fn long_sig(
    a: u8,
    b: u8,
) -> u8 {
    combine(a, b)
}
";
        let syms = symbols(src);
        assert_eq!(syms.imports.len(), 2, "{syms:#?}");
        assert_eq!(syms.imports[1].path, "crate::beta::gamma");
        assert_eq!(syms.fns[0].name, "long_sig");
        assert_eq!(syms.fns[0].start, 5);
        assert_eq!(syms.fns[0].calls[0].callee, "combine");
    }
}
