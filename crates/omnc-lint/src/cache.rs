//! Incremental lint cache (`--cache PATH`).
//!
//! Per-file analysis (lexing, symbol extraction, local and potential
//! findings) is pure in the file's content, so it is cached keyed on an
//! FNV-1a content hash plus [`crate::rules::RULES_VERSION`]. A warm run
//! skips lexing/analysis for unchanged files and replays their cached
//! `FileAnalysis`; the cross-file phase (call graph, propagation, blame
//! chains) is always recomputed from the cached symbols, so warm-run
//! findings are byte-identical to a cold run by construction.
//!
//! The cache file is JSON via the vendored serde. Any read error, parse
//! error, or version mismatch silently degrades to a cold run — the
//! cache is an accelerator, never a correctness input.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::findings::Finding;
use crate::rules::RULES_VERSION;
use crate::symbols::FileSymbols;

/// Cached per-file analysis: everything `analyze_file` produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Workspace-relative path.
    pub path: String,
    /// FNV-1a 64 hash of the file contents.
    pub hash: u64,
    /// Extracted symbols (feeds the always-recomputed call graph).
    pub symbols: FileSymbols,
    /// Findings from the static path scopes.
    pub local: Vec<Finding>,
    /// Propagatable-rule findings awaiting a hot-span match.
    pub potential: Vec<Finding>,
}

/// The on-disk cache: a version stamp plus per-file entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheFile {
    /// Must equal [`RULES_VERSION`] to be usable.
    pub version: u32,
    /// Entries sorted by path.
    pub entries: Vec<CacheEntry>,
}

impl CacheFile {
    /// An empty cache stamped with the current rule-table version.
    pub fn new() -> Self {
        CacheFile {
            version: RULES_VERSION,
            entries: Vec::new(),
        }
    }

    /// The entry for `path` if its content hash matches.
    pub fn lookup(&self, path: &str, hash: u64) -> Option<&CacheEntry> {
        self.entries
            .iter()
            .find(|e| e.path == path && e.hash == hash)
    }
}

/// FNV-1a 64-bit content hash — stable across platforms and runs, unlike
/// `DefaultHasher` (which is seeded per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads a cache file; `None` on any error or on a rules-version
/// mismatch (the caller then runs cold).
pub fn load(path: &Path) -> Option<CacheFile> {
    let text = std::fs::read_to_string(path).ok()?;
    let cache: CacheFile = serde_json::from_str(&text).ok()?;
    (cache.version == RULES_VERSION).then_some(cache)
}

/// Saves the cache, creating parent directories as needed.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn save(path: &Path, cache: &CacheFile) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let text = serde_json::to_string(cache)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"fn main() {}"), fnv1a64(b"fn main() { }"));
    }

    #[test]
    fn round_trip_and_version_gate() {
        let dir = std::env::temp_dir().join(format!("omnc-lint-cache-test-{}", std::process::id()));
        let path = dir.join("lint-cache.json");
        let mut cache = CacheFile::new();
        cache.entries.push(CacheEntry {
            path: "crates/x/src/lib.rs".into(),
            hash: fnv1a64(b"fn f() {}"),
            symbols: FileSymbols::default(),
            local: Vec::new(),
            potential: Vec::new(),
        });
        save(&path, &cache).unwrap();
        let back = load(&path).expect("reload");
        assert_eq!(back.entries, cache.entries);
        assert!(back
            .lookup("crates/x/src/lib.rs", fnv1a64(b"fn f() {}"))
            .is_some());
        assert!(back
            .lookup("crates/x/src/lib.rs", fnv1a64(b"changed"))
            .is_none());

        // A version bump invalidates the whole file.
        let mut stale = cache.clone();
        stale.version = RULES_VERSION + 1;
        save(&path, &stale).unwrap();
        assert!(load(&path).is_none());

        // Garbage degrades to a cold run, not an error.
        std::fs::write(&path, "{not json").unwrap();
        assert!(load(&path).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
