//! Lint findings: the report records, text rendering, and JSONL export.
//!
//! JSONL output reuses the `omnc-telemetry` sink conventions (one
//! serde-serialized object per line via [`telemetry::EventSink`]) so
//! findings can be post-processed with the same tooling as simulation
//! traces. Findings also serialize into the incremental lint cache
//! (`crate::cache`), so they derive `Deserialize` as well.

use serde::{Deserialize, Serialize};
use telemetry::EventSink;

use crate::rules::{Rule, Severity};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Workspace-relative file path (`/`-separated).
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// The violated rule's stable name.
    pub rule: String,
    /// `warn` or `deny`.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed (empty for file-level findings).
    pub snippet: String,
    /// For obligations inherited through the call graph: the blame chain
    /// `entry → … → offender` that made this line hot-path code. `None`
    /// for findings produced by the static path scopes.
    pub chain: Option<String>,
}

impl Finding {
    /// Builds a finding, trimming the snippet.
    pub fn new(
        path: &str,
        line: usize,
        rule: Rule,
        severity: Severity,
        message: String,
        snippet: &str,
    ) -> Self {
        Finding {
            path: path.to_owned(),
            line,
            rule: rule.name().to_owned(),
            severity,
            message,
            snippet: snippet.trim().to_owned(),
            chain: None,
        }
    }

    /// Builds a file-level finding for a scenario model-invariant check
    /// (no source line or snippet; `rule` is one of the `scenario-*` names).
    pub fn scenario(path: &str, rule: &'static str, severity: Severity, message: String) -> Self {
        Finding {
            path: path.to_owned(),
            line: 0,
            rule: rule.to_owned(),
            severity,
            message,
            snippet: String::new(),
            chain: None,
        }
    }

    /// `path:line: severity[rule] message` with the snippet indented below
    /// and, for propagated obligations, the blame chain.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: {}[{}] {}",
            self.path, self.line, self.severity, self.rule, self.message
        );
        if let Some(chain) = &self.chain {
            s.push_str("\n    | hot path: ");
            s.push_str(chain);
        }
        if !self.snippet.is_empty() {
            s.push_str("\n    | ");
            s.push_str(&self.snippet);
        }
        s
    }
}

/// A finished lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_checked: usize,
    /// Incremental-cache hits (files whose analysis was reused).
    pub cache_hits: usize,
    /// Incremental-cache misses (files analyzed from scratch).
    pub cache_misses: usize,
}

impl Report {
    /// Sorts findings into the deterministic reporting order.
    pub fn finish(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    }

    /// Count at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// `true` when no deny-level findings exist (the run passes).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Deny) == 0
    }

    /// Writes all findings as JSONL through a telemetry sink.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from the sink.
    pub fn write_jsonl(&self, sink: &EventSink) -> std::io::Result<()> {
        for f in &self.findings {
            sink.emit(f)?;
        }
        sink.flush()
    }

    /// Renders the human-readable report, findings then a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) checked: {} deny, {} warn\n",
            self.files_checked,
            self.count(Severity::Deny),
            self.count(Severity::Warn)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_and_counts() {
        let mut r = Report::default();
        r.findings.push(Finding::new(
            "b.rs",
            3,
            Rule::Unwrap,
            Severity::Deny,
            "x".into(),
            "  a.unwrap()  ",
        ));
        r.findings.push(Finding::new(
            "a.rs",
            9,
            Rule::Index,
            Severity::Warn,
            "y".into(),
            "",
        ));
        r.finish();
        assert_eq!(r.findings[0].path, "a.rs");
        assert_eq!(r.count(Severity::Deny), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert!(!r.is_clean());
        assert_eq!(r.findings[1].snippet, "a.unwrap()");
    }

    #[test]
    fn jsonl_round_trips_through_sink() {
        let mut r = Report::default();
        r.findings.push(Finding::new(
            "crates/x/src/lib.rs",
            1,
            Rule::WallClock,
            Severity::Deny,
            "wall clock".into(),
            "Instant::now()",
        ));
        let sink = EventSink::in_memory();
        r.write_jsonl(&sink).unwrap();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let v: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(v.get("rule").and_then(|r| r.as_str()), Some("wall-clock"));
        assert_eq!(v.get("severity").and_then(|s| s.as_str()), Some("Deny"));
    }

    #[test]
    fn finding_round_trips_through_serde_with_chain() {
        let mut f = Finding::new(
            "crates/x/src/lib.rs",
            7,
            Rule::Unwrap,
            Severity::Deny,
            "unchecked unwrap".into(),
            "x.unwrap()",
        );
        f.chain = Some("Encoder::emit → helper".into());
        let text = serde_json::to_string(&f).unwrap();
        let back: Finding = serde_json::from_str(&text).unwrap();
        assert_eq!(back, f);

        // A chain-free finding survives the round trip too.
        let plain = Finding::new("a.rs", 1, Rule::Panic, Severity::Warn, "m".into(), "s");
        let text = serde_json::to_string(&plain).unwrap();
        let back: Finding = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plain);
    }

    #[test]
    fn chain_is_rendered() {
        let mut f = Finding::new(
            "crates/gf256/src/helper.rs",
            3,
            Rule::Unwrap,
            Severity::Deny,
            "unchecked unwrap in hot path".into(),
            "x.unwrap()",
        );
        f.chain = Some("Encoder::emit → lead".into());
        let text = f.render();
        assert!(text.contains("hot path: Encoder::emit → lead"), "{text}");
    }
}
