//! The analysis engine: per-file passes, the cross-file propagation
//! phase, and the workspace walker.
//!
//! Everything here operates on the cleaned line view produced by
//! [`crate::lexer::clean`]: comments and literal contents are already
//! blanked, so plain substring/token matching is safe. Lines inside
//! `#[cfg(test)]` regions are exempt from every code rule — the policies
//! target shipping simulation code, not its tests.
//!
//! Analysis runs in two phases (ISSUE 8):
//!
//! * **Phase A (per file, cacheable)** — [`analyze_file`] lexes one file
//!   and produces a [`FileAnalysis`]: extracted symbols, *local* findings
//!   (rules applied by their static path scopes, exactly as before), and
//!   *potential* findings (violations of propagating rules computed
//!   regardless of path scope, held back until phase B proves the code
//!   hot). This phase depends only on the file's bytes and the rule
//!   table, which is what makes the `--cache` keyed on content hash +
//!   [`crate::rules::RULES_VERSION`] sound.
//! * **Phase B (cross-file, always recomputed)** — [`assemble_findings`]
//!   builds the call graph over the simulation crates, BFS-propagates
//!   hot-path obligations from [`crate::rules::HOT_ENTRIES`], releases
//!   the potential findings that landed inside a hot function, and
//!   annotates every finding in a hot span with its blame chain.

use std::io;
use std::path::{Path, PathBuf};

use crate::cache::{self, CacheEntry, CacheFile};
use crate::callgraph;
use crate::findings::{Finding, Report};
use crate::lexer::{clean, CleanFile};
use crate::rules::{Rule, RuleTable, HOT_ENTRIES, SIM_CRATES};
use crate::symbols::{self, FileSymbols};

/// Phase-A output for one file: everything derivable from its bytes.
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// Declarations and call sites, for the phase-B graph.
    pub symbols: FileSymbols,
    /// Findings from the static path scopes (reported unconditionally).
    pub local: Vec<Finding>,
    /// Propagating-rule findings outside their static scope; reported
    /// only if phase B proves the enclosing function hot.
    pub potential: Vec<Finding>,
}

/// Analyzes one source file (given workspace-relative `rel_path`) against
/// `table`, returning only the local (path-scoped) findings. This is the
/// pre-propagation view; workspace runs go through [`check_workspace`].
/// Public so tests can lint fixture text under fake paths.
pub fn analyze_source(rel_path: &str, source: &str, table: &RuleTable) -> Vec<Finding> {
    analyze_file(rel_path, source, table).local
}

/// Phase A: the full cacheable per-file analysis.
pub fn analyze_file(rel_path: &str, source: &str, table: &RuleTable) -> FileAnalysis {
    let file = clean(source);
    let in_test = test_line_mask(&file);
    let in_loop = loop_line_mask(&file);
    let syms = symbols::extract(&file, &in_test);
    let local = run_line_checks(rel_path, &file, &in_test, &in_loop, table, false);
    // Potential findings only matter where the call graph lives.
    let potential = if is_sim_crate(rel_path) {
        run_line_checks(rel_path, &file, &in_test, &in_loop, table, true)
    } else {
        Vec::new()
    };
    FileAnalysis {
        symbols: syms,
        local,
        potential,
    }
}

/// `true` for files inside the simulation-core crates (the propagation
/// universe).
pub fn is_sim_crate(rel_path: &str) -> bool {
    SIM_CRATES.iter().any(|p| rel_path.starts_with(p))
}

/// Runs every line-oriented check. With `potential` false this is the
/// classic path-scoped pass; with `potential` true it collects
/// violations of propagating rules in places their static scope does
/// *not* cover (phase B decides whether the code is hot).
fn run_line_checks(
    rel_path: &str,
    file: &CleanFile,
    in_test: &[bool],
    in_loop: &[bool],
    table: &RuleTable,
    potential: bool,
) -> Vec<Finding> {
    let hash_bindings = collect_hash_bindings(file, in_test);
    let mut findings = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let mut emit = |rule: Rule, message: String| {
            let cfg = table.config(rule);
            let wanted = if potential {
                rule.propagates() && cfg.enabled && !cfg.applies_to(rel_path)
            } else {
                cfg.applies_to(rel_path)
            };
            if wanted && !file.is_allowed(idx, rule.name()) {
                findings.push(Finding::new(
                    rel_path,
                    line.number,
                    rule,
                    cfg.severity,
                    message,
                    &line.raw,
                ));
            }
        };
        check_patterns(&line.code, &mut emit);
        check_hash_iteration(&line.code, &hash_bindings, &mut emit);
        check_indexing(&line.code, &mut emit);
        check_float_eq(&line.code, &mut emit);
        check_unsafe(file, idx, &mut emit);
        check_lossy_cast(&line.code, &mut emit);
        check_unchecked_arith(&line.code, &mut emit);
        check_atomics(file, idx, &mut emit);
        check_clone_in_loop(&line.code, in_loop[idx], &mut emit);
    }
    findings
}

/// Substring rules: each hit of a pattern outside tests is one finding.
fn check_patterns(code: &str, emit: &mut impl FnMut(Rule, String)) {
    const PATTERNS: [(Rule, &str, &str); 19] = [
        (Rule::WallClock, "Instant::now", "wall-clock read"),
        (Rule::WallClock, "SystemTime", "wall-clock read"),
        (Rule::NondetRng, "thread_rng", "entropy-seeded RNG"),
        (Rule::NondetRng, "rand::random", "entropy-seeded RNG"),
        (Rule::NondetRng, "from_entropy", "entropy-seeded RNG"),
        (Rule::NondetRng, "OsRng", "entropy-seeded RNG"),
        (Rule::EnvDep, "env::var", "environment read"),
        (Rule::EnvDep, "env::args", "environment read"),
        (Rule::EnvDep, "env::vars", "environment read"),
        (Rule::Unwrap, ".unwrap()", "unchecked unwrap in hot path"),
        (Rule::Panic, ".expect(", "potential panic in hot path"),
        (Rule::Panic, "panic!", "explicit panic in hot path"),
        (Rule::Concurrency, "thread::spawn", "thread creation"),
        (Rule::Concurrency, "thread::scope", "thread creation"),
        (Rule::Concurrency, "thread::Builder", "thread creation"),
        (Rule::Concurrency, "mpsc::", "channel plumbing"),
        (Rule::Concurrency, "TcpListener", "network listener"),
        (Rule::HotAlloc, "Box::new(", "heap allocation in hot path"),
        (
            Rule::HotAlloc,
            "Vec::with_capacity(0)",
            "zero-capacity Vec (allocates on first push) in hot path",
        ),
    ];
    const PANIC_MACROS: [&str; 3] = ["unreachable!", "todo!", "unimplemented!"];
    for (rule, pat, what) in PATTERNS {
        // Patterns that begin with an identifier char need a non-identifier
        // char before the match so e.g. `MySystemTimer` does not trip
        // `SystemTime`; method patterns like `.unwrap()` start at a `.` and
        // legitimately follow an identifier.
        let needs_boundary = pat.as_bytes().first().is_some_and(|&b| is_ident_byte(b));
        for pos in find_all(code, pat) {
            if needs_boundary && !ident_boundary_before(code, pos) {
                continue;
            }
            emit(rule, format!("{what}: `{pat}` is banned here"));
        }
    }
    for pat in PANIC_MACROS {
        for pos in find_all(code, pat) {
            if ident_boundary_before(code, pos) {
                emit(Rule::Panic, format!("panicking macro `{pat}` in hot path"));
            }
        }
    }
}

/// Pass 1 of hash-iteration detection: names bound to `HashMap`/`HashSet`
/// via a type annotation (`name: HashMap<...>`, including field and
/// parameter positions) or a constructor assignment (`name = HashMap::new`).
fn collect_hash_bindings(file: &CleanFile, in_test: &[bool]) -> Vec<String> {
    let mut names = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in find_all(&line.code, ty) {
                if !ident_boundary_before(&line.code, pos) {
                    continue;
                }
                let after = &line.code[pos + ty.len()..];
                let name = if after.starts_with('<') {
                    binding_before_annotation(&line.code, pos)
                } else if after.starts_with("::") {
                    binding_before_assignment(&line.code, pos)
                } else {
                    None
                };
                if let Some(name) = name {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Pass 2: flag order-dependent consumption of collected bindings —
/// iteration-yielding method calls and direct `for ... in name` loops.
fn check_hash_iteration(code: &str, bindings: &[String], emit: &mut impl FnMut(Rule, String)) {
    const ITER_METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    for name in bindings {
        for pos in find_all(code, name) {
            if !ident_boundary_before(code, pos) || !ident_boundary_after(code, pos + name.len()) {
                continue;
            }
            let after = &code[pos + name.len()..];
            let via_method = ITER_METHODS.iter().find(|m| after.starts_with(*m));
            let via_for = preceded_by_in_keyword(code, pos);
            if let Some(m) = via_method {
                emit(
                    Rule::HashIter,
                    format!("hash-order iteration: `{name}{m}..` (order is seeded per process)"),
                );
            } else if via_for && !after.starts_with('.') {
                emit(
                    Rule::HashIter,
                    format!("hash-order iteration: `for .. in {name}`"),
                );
            }
        }
    }
}

/// Slice/array indexing heuristic: `[` directly after an identifier,
/// `)` or `]`. Attributes (`#[...]`) and macro brackets (`vec![`) have
/// non-identifier characters before the bracket and do not match.
fn check_indexing(code: &str, emit: &mut impl FnMut(Rule, String)) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            emit(
                Rule::Index,
                "unchecked indexing in hot path (prefer `get`)".to_owned(),
            );
        }
    }
}

/// `==`/`!=` where either operand token is a float literal.
fn check_float_eq(code: &str, emit: &mut impl FnMut(Rule, String)) {
    let bytes = code.as_bytes();
    for op in ["==", "!="] {
        for pos in find_all(code, op) {
            // Skip `<=`, `>=`, `=>`-adjacent false matches.
            if pos > 0 && matches!(bytes[pos - 1], b'<' | b'>' | b'=' | b'!') {
                continue;
            }
            if bytes.get(pos + 2) == Some(&b'=') {
                continue;
            }
            let lhs = token_before(code, pos);
            let rhs = token_after(code, pos + 2);
            if is_float_literal(&lhs) || is_float_literal(&rhs) {
                emit(
                    Rule::FloatEq,
                    format!("exact float comparison `{lhs} {op} {rhs}` (use a tolerance)"),
                );
            }
        }
    }
}

/// `unsafe` keyword use: must be justified by a `SAFETY:` comment on the
/// same line or within the three raw lines above.
fn check_unsafe(file: &CleanFile, idx: usize, emit: &mut impl FnMut(Rule, String)) {
    let code = &file.lines[idx].code;
    for pos in find_all(code, "unsafe") {
        if !ident_boundary_before(code, pos) || !ident_boundary_after(code, pos + 6) {
            continue;
        }
        let documented = (idx.saturating_sub(3)..=idx)
            .any(|j| file.lines.get(j).is_some_and(|l| l.raw.contains("SAFETY")));
        if !documented {
            emit(
                Rule::UnsafeAudit,
                "`unsafe` without a SAFETY comment".to_owned(),
            );
        }
    }
}

/// Narrowing `as` casts: `expr as u8/u16/u32/i8/i16/i32` silently
/// truncates, which corrupts wire fields and GF(2^8) elements. Widening
/// and float casts are fine.
fn check_lossy_cast(code: &str, emit: &mut impl FnMut(Rule, String)) {
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    for pos in find_all(code, "as") {
        if !ident_boundary_before(code, pos) || !ident_boundary_after(code, pos + 2) {
            continue;
        }
        let target = token_after(code, pos + 2);
        if NARROW.contains(&target.as_str()) {
            let src = token_before(code, pos);
            emit(
                Rule::LossyCast,
                format!("narrowing cast `{src} as {target}` can truncate silently (use try_from or a checked helper)"),
            );
        }
    }
}

/// Bare `+`/`*` (including `+=`/`*=`) where an operand identifier looks
/// like a packet/rank index (`seq`, `rank`, `idx`, `index`, `pivot` in
/// its last path segment): overflow on these walks off a generation or
/// a matrix row, so hot-path code must use `wrapping_*`/`checked_*` or
/// carry a justification allow.
fn check_unchecked_arith(code: &str, emit: &mut impl FnMut(Rule, String)) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'+' && b != b'*' {
            continue;
        }
        // Binary use needs an operand expression ending just before the
        // operator; prefix `*deref`, `&*`, `+` in bounds etc. do not have
        // one. `**`/`+=`-second-char positions are skipped the same way.
        let Some(pb) = prev_nonws(bytes, i) else {
            continue;
        };
        if !(is_ident_byte(bytes[pb]) || bytes[pb] == b')' || bytes[pb] == b']') {
            continue;
        }
        let mut j = i + 1;
        if bytes.get(j) == Some(&b'=') {
            j += 1; // compound assignment `+=` / `*=`
        }
        let lhs = token_before(code, i);
        let rhs = token_after(code, j);
        let offender = if is_index_like(&lhs) {
            Some(lhs)
        } else if is_index_like(&rhs) {
            Some(rhs)
        } else {
            None
        };
        if let Some(name) = offender {
            let op = if bytes.get(i + 1) == Some(&b'=') {
                format!("{}=", b as char)
            } else {
                (b as char).to_string()
            };
            emit(
                Rule::UncheckedArith,
                format!(
                    "bare `{op}` on index-like value `{name}` in hot path (use wrapping_*/checked_*)"
                ),
            );
        }
    }
}

/// `true` if the token's last `.`-segment names a sequence/rank/index.
fn is_index_like(token: &str) -> bool {
    let last = token
        .rsplit('.')
        .next()
        .unwrap_or(token)
        .to_ascii_lowercase();
    ["seq", "rank", "idx", "index", "pivot"]
        .iter()
        .any(|k| last.contains(k))
}

/// Index of the previous non-whitespace byte, if any.
fn prev_nonws(bytes: &[u8], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !bytes[j].is_ascii_whitespace())
}

/// Every `Ordering::` choice in the sanctioned unsafe surface must carry
/// an `// ordering:` justification on the same line or within the three
/// raw lines above (mirroring the SAFETY-comment rule for `unsafe`).
fn check_atomics(file: &CleanFile, idx: usize, emit: &mut impl FnMut(Rule, String)) {
    let code = &file.lines[idx].code;
    for pos in find_all(code, "Ordering::") {
        if !ident_boundary_before(code, pos) {
            continue;
        }
        let documented = (idx.saturating_sub(3)..=idx).any(|j| {
            file.lines
                .get(j)
                .is_some_and(|l| l.raw.contains("ordering:"))
        });
        if !documented {
            emit(
                Rule::AtomicsAudit,
                "atomic `Ordering::` choice without an `// ordering:` justification".to_owned(),
            );
        }
    }
}

/// `.clone()`/`.to_vec()` on a loop-body line: a per-iteration heap copy
/// on a hot path.
fn check_clone_in_loop(code: &str, in_loop: bool, emit: &mut impl FnMut(Rule, String)) {
    if !in_loop {
        return;
    }
    for pat in [".clone()", ".to_vec()"] {
        for _pos in find_all(code, pat) {
            emit(
                Rule::CloneInHotLoop,
                format!("`{pat}` inside a loop on a hot path (hoist or borrow instead)"),
            );
        }
    }
}

/// Crate-root audit: a crate root file must carry `#![forbid(unsafe_code)]`,
/// or a SAFETY-commented `#![allow(unsafe_code)]` / `#![deny(unsafe_code)]`.
/// The deny form is the counting-allocator pattern: unsafe denied
/// crate-wide and allowed back in exactly one SAFETY-documented module
/// (deny, unlike forbid, can be overridden by an inner `#![allow]`).
/// Returns a file-level finding otherwise.
pub fn audit_crate_root(rel_path: &str, source: &str, table: &RuleTable) -> Option<Finding> {
    let cfg = table.config(Rule::UnsafeAudit);
    if !cfg.applies_to(rel_path) {
        return None;
    }
    if source.contains("#![forbid(unsafe_code)]") {
        return None;
    }
    if source.contains("#![allow(unsafe_code)]") && source.contains("SAFETY") {
        return None;
    }
    if source.contains("#![deny(unsafe_code)]") && source.contains("SAFETY") {
        return None;
    }
    Some(Finding::new(
        rel_path,
        0,
        Rule::UnsafeAudit,
        cfg.severity,
        "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
        "",
    ))
}

// ---------------------------------------------------------------------------
// Region detection (cfg(test), loop bodies)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum RegionScan {
    Normal,
    /// Saw the trigger, waiting for the opening brace of the item.
    Seeking,
    /// Inside the braced region at the given depth.
    Inside(u32),
}

/// Marks lines belonging to `#[cfg(test)]` items (modules or functions).
pub fn test_line_mask(file: &CleanFile) -> Vec<bool> {
    region_mask(file, |code| {
        code.find("#[cfg(test)]")
            .or_else(|| code.find("#[cfg(all(test"))
    })
}

/// Marks lines inside `for`/`while`/`loop` bodies (including the header
/// line). Nested loops extend nothing — the outermost region already
/// covers them.
pub(crate) fn loop_line_mask(file: &CleanFile) -> Vec<bool> {
    region_mask(file, |code| {
        ["for", "while", "loop"]
            .iter()
            .filter_map(|kw| find_keyword(code, kw))
            .filter(|&p| !non_loop_for(code, p))
            .min()
    })
}

/// `true` when the `for` keyword at `pos` is not a loop: the `for` of an
/// `impl Trait for Type` header, or an HRTB `for<'a>`.
fn non_loop_for(code: &str, pos: usize) -> bool {
    if !code[pos..].starts_with("for") {
        return false;
    }
    if code[pos + 3..].trim_start().starts_with('<') {
        return true; // for<'a> bound
    }
    ["impl", "trait"]
        .iter()
        .any(|kw| find_keyword(code, kw).is_some_and(|k| k < pos))
}

/// Position of `kw` as a standalone keyword token in `code`.
fn find_keyword(code: &str, kw: &str) -> Option<usize> {
    find_all(code, kw)
        .into_iter()
        .find(|&p| ident_boundary_before(code, p) && ident_boundary_after(code, p + kw.len()))
}

/// Shared brace-tracking region scanner: `trigger` returns the column at
/// which a region-opening construct starts on a line.
fn region_mask(file: &CleanFile, trigger: impl Fn(&str) -> Option<usize>) -> Vec<bool> {
    let mut mask = vec![false; file.lines.len()];
    let mut state = RegionScan::Normal;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        let mut start = 0usize;
        if state == RegionScan::Normal {
            if let Some(p) = trigger(code) {
                state = RegionScan::Seeking;
                start = p;
            }
        }
        if state == RegionScan::Normal {
            continue;
        }
        mask[idx] = true;
        for c in code[start..].chars() {
            match (state, c) {
                (RegionScan::Seeking, '{') => state = RegionScan::Inside(1),
                (RegionScan::Seeking, ';') => {
                    // e.g. `#[cfg(test)] use ...;` — no braced region follows.
                    state = RegionScan::Normal;
                    break;
                }
                (RegionScan::Inside(d), '{') => state = RegionScan::Inside(d + 1),
                (RegionScan::Inside(1), '}') => {
                    state = RegionScan::Normal;
                    break;
                }
                (RegionScan::Inside(d), '}') => state = RegionScan::Inside(d - 1),
                _ => {}
            }
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All byte offsets where `pat` occurs in `code`.
fn find_all(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(pat) {
        out.push(from + p);
        from += p + pat.len().max(1);
    }
    out
}

/// `true` if position `pos` is not preceded by an identifier character.
fn ident_boundary_before(code: &str, pos: usize) -> bool {
    pos == 0 || !is_ident_byte(code.as_bytes()[pos - 1])
}

/// `true` if position `pos` is not followed by an identifier character.
fn ident_boundary_after(code: &str, pos: usize) -> bool {
    code.as_bytes().get(pos).is_none_or(|&b| !is_ident_byte(b))
}

/// For `name: [&mut] [path::]HashMap<..>` at `ty_start`, recovers `name`.
fn binding_before_annotation(code: &str, ty_start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = ty_start;
    // Strip any path prefix (`std::collections::`) attached to the type.
    loop {
        let mut k = j;
        while k > 0 && is_ident_byte(bytes[k - 1]) {
            k -= 1;
        }
        if k >= 2 && &code[k - 2..k] == "::" {
            j = k - 2;
        } else {
            j = k;
            break;
        }
    }
    // Strip reference/mutability tokens and whitespace.
    loop {
        while j > 0 && (bytes[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b'&' {
            j -= 1;
        } else if j >= 3 && &code[j - 3..j] == "mut" && (j == 3 || !is_ident_byte(bytes[j - 4])) {
            j -= 3;
        } else {
            break;
        }
    }
    // Expect the single colon of a type annotation.
    if j == 0 || bytes[j - 1] != b':' || (j >= 2 && bytes[j - 2] == b':') {
        return None;
    }
    j -= 1;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    (j < end).then(|| code[j..end].to_owned())
}

/// For `let [mut] name = HashMap::new()` at `ty_start`, recovers `name`.
fn binding_before_assignment(code: &str, ty_start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = ty_start;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    if j == 0 || bytes[j - 1] != b'=' {
        return None;
    }
    j -= 1;
    if j > 0 && matches!(bytes[j - 1], b'=' | b'!' | b'<' | b'>' | b'+') {
        return None;
    }
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    (j < end).then(|| code[j..end].to_owned())
}

/// `true` if the identifier at `pos` is the iterated expression of a
/// `for .. in [&mut] name` loop.
fn preceded_by_in_keyword(code: &str, pos: usize) -> bool {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    if j > 0 && bytes[j - 1] == b'&' {
        j -= 1;
        if j >= 3 && &code[j - 3..j] == "mut" {
            j -= 3;
        }
        while j > 0 && (bytes[j - 1] as char).is_whitespace() {
            j -= 1;
        }
    }
    j >= 2 && &code[j - 2..j] == "in" && (j == 2 || !is_ident_byte(bytes[j - 3]))
}

/// The expression token ending at `pos` (identifier/number chars and dots).
fn token_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && (is_ident_byte(bytes[j - 1]) || bytes[j - 1] == b'.') {
        j -= 1;
    }
    code[j..end].to_owned()
}

/// The expression token starting at `pos`, including exponent signs.
fn token_after(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    if bytes.get(j) == Some(&b'-') {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && (is_ident_byte(bytes[j]) || bytes[j] == b'.') {
        if (bytes[j] == b'e' || bytes[j] == b'E')
            && matches!(bytes.get(j + 1), Some(b'-') | Some(b'+'))
        {
            j += 2;
            continue;
        }
        j += 1;
    }
    code[start..j].to_owned()
}

/// `true` for numeric float literal tokens: `0.5`, `1.`, `1e-9`, `2.5e3`.
fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    let mut chars = t.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() && first != '.' {
        return false;
    }
    let has_digit = t.chars().any(|c| c.is_ascii_digit());
    let has_marker = t.contains('.') || t.contains('e') || t.contains('E');
    has_digit
        && has_marker
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '_' | '-' | '+'))
}

// ---------------------------------------------------------------------------
// Phase B: propagation and assembly
// ---------------------------------------------------------------------------

/// Builds the call graph over the sim-crate files, propagates hot-path
/// obligations from [`HOT_ENTRIES`], and assembles the final finding
/// list: all local findings (chain-annotated when they sit inside a hot
/// function) plus the potential findings proven hot.
pub fn assemble_findings(analyses: &[(String, FileAnalysis)]) -> Vec<Finding> {
    let sim_files: Vec<(String, FileSymbols)> = analyses
        .iter()
        .filter(|(path, _)| is_sim_crate(path))
        .map(|(path, a)| (path.clone(), a.symbols.clone()))
        .collect();
    let graph = callgraph::build(&sim_files);
    let hot = callgraph::hot_spans(&graph, &HOT_ENTRIES);

    let mut findings = Vec::new();
    for (path, analysis) in analyses {
        let spans = hot.get(path);
        // The innermost hot function covering a line, if any.
        let chain_for = |line: usize| -> Option<&str> {
            spans?
                .iter()
                .filter(|s| s.start <= line && line <= s.end)
                .max_by_key(|s| s.start)
                .map(|s| s.chain.as_str())
        };
        for f in &analysis.local {
            let mut f = f.clone();
            if Rule::by_name(&f.rule).is_some_and(Rule::propagates) {
                if let Some(chain) = chain_for(f.line) {
                    f.chain = Some(chain.to_owned());
                }
            }
            findings.push(f);
        }
        for f in &analysis.potential {
            if let Some(chain) = chain_for(f.line) {
                let mut f = f.clone();
                f.chain = Some(chain.to_owned());
                findings.push(f);
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule == b.rule);
    findings
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lints every first-party source file under `<root>/crates` against
/// `table`. Files under `tests/`, `benches/`, `examples/`, `fixtures/`, and
/// `target/` directories are skipped — the rules govern shipping code.
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be read.
pub fn check_workspace(root: &Path, table: &RuleTable) -> io::Result<Report> {
    check_workspace_cached(root, table, None)
}

/// [`check_workspace`] with an optional incremental cache file. Phase-A
/// results for files whose content hash matches the cache are replayed
/// without re-analysis; phase B always runs. The cache is rewritten
/// after the walk. Hit/miss counts land in the report.
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be read. Cache *read* errors
/// degrade to a cold run; cache *write* errors are reported but do not
/// fail the check.
pub fn check_workspace_cached(
    root: &Path,
    table: &RuleTable,
    cache_path: Option<&Path>,
) -> io::Result<Report> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    collect_rust_files(&crates, &mut files)?;
    files.sort();

    let old_cache = cache_path.and_then(cache::load);
    let mut new_cache = CacheFile::new();

    let mut report = Report::default();
    let mut analyses: Vec<(String, FileAnalysis)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)?;
        let hash = cache::fnv1a64(source.as_bytes());
        let analysis = match old_cache.as_ref().and_then(|c| c.lookup(&rel, hash)) {
            Some(entry) => {
                report.cache_hits += 1;
                FileAnalysis {
                    symbols: entry.symbols.clone(),
                    local: entry.local.clone(),
                    potential: entry.potential.clone(),
                }
            }
            None => {
                report.cache_misses += 1;
                analyze_file(&rel, &source, table)
            }
        };
        new_cache.entries.push(CacheEntry {
            path: rel.clone(),
            hash,
            symbols: analysis.symbols.clone(),
            local: analysis.local.clone(),
            potential: analysis.potential.clone(),
        });
        if rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") {
            report
                .findings
                .extend(audit_crate_root(&rel, &source, table));
        }
        analyses.push((rel, analysis));
        report.files_checked += 1;
    }
    report.findings.extend(assemble_findings(&analyses));
    report.finish();

    if let Some(cp) = cache_path {
        if let Err(e) = cache::save(cp, &new_cache) {
            eprintln!("omnc-lint: writing cache {}: {e}", cp.display());
        }
    }
    Ok(report)
}

/// Recursively collects `.rs` files, skipping non-shipping directories.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 5] = ["tests", "benches", "examples", "fixtures", "target"];
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rust_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    const SIM_PATH: &str = "crates/drift/src/sim.rs";
    const HOT_PATH: &str = "crates/rlnc/src/kernel.rs";

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src, &RuleTable::default())
    }

    #[test]
    fn wall_clock_flagged_in_sim_not_in_telemetry() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint(SIM_PATH, src).len(), 1);
        assert!(lint("crates/omnc-telemetry/src/timer.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() { let t = Instant::now(); } // lint: allow(wall-clock)\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); let t = Instant::now(); }\n}\n";
        assert!(lint(HOT_PATH, src).is_empty());
    }

    #[test]
    fn hash_iteration_found_via_annotation_and_constructor() {
        let src = "struct S { pub seen: HashMap<u32, u64> }\nfn f(s: &S) { for (k, v) in s.seen.iter() { use_it(k, v); } }\n";
        let fs = lint(SIM_PATH, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "hash-iter");

        let src2 =
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for k in m.keys() { g(k); } }\n";
        assert_eq!(lint(SIM_PATH, src2).len(), 1);
    }

    #[test]
    fn hash_lookup_without_iteration_is_clean() {
        let src = "struct S { pub seen: HashMap<u32, u64> }\nfn f(s: &S) { let v = s.seen.get(&1); use_it(v); }\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_binding_is_flagged() {
        let src = "fn f(roles: HashMap<u32, u64>) { for (k, v) in roles { g(k, v); } }\n";
        let fs = lint(SIM_PATH, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn btree_map_is_clean() {
        let src = "fn f(roles: BTreeMap<u32, u64>) { for (k, v) in roles { g(k, v); } }\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_deny_and_expect_warn_in_hot_path() {
        let src = "fn f(x: Option<u32>) { let a = x.unwrap(); let b = x.expect(\"b\"); }\n";
        let fs = lint(HOT_PATH, src);
        assert_eq!(fs.len(), 2);
        let unwrap = fs.iter().find(|f| f.rule == "unwrap").unwrap();
        assert_eq!(unwrap.severity, Severity::Deny);
        let expect = fs.iter().find(|f| f.rule == "panic").unwrap();
        assert_eq!(expect.severity, Severity::Warn);
    }

    #[test]
    fn indexing_warned_in_hot_path_only() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        let fs = lint(HOT_PATH, src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].severity, Severity::Warn);
        assert!(lint("crates/omnc/src/runner.rs", src).is_empty());
    }

    #[test]
    fn float_eq_flagged_in_opt_crates() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        let fs = lint("crates/omnc-opt/src/flow.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "float-eq");
        // Integer comparison and tuple-field access are fine.
        assert!(lint(
            "crates/omnc-opt/src/flow.rs",
            "fn g(i: u32, t: (f64, f64)) -> bool { i == 0 && t.0 != t.1 }\n"
        )
        .is_empty());
        // Out of scope elsewhere.
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let fs = lint("crates/omnc-report/src/lib.rs", bad);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unsafe-audit");
        let good =
            "// SAFETY: p is valid by contract.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(lint("crates/omnc-report/src/lib.rs", good).is_empty());
    }

    #[test]
    fn crate_root_audit() {
        let t = RuleTable::default();
        assert!(audit_crate_root("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n", &t).is_none());
        let f = audit_crate_root("crates/x/src/lib.rs", "pub mod a;\n", &t).unwrap();
        assert_eq!(f.rule, "unsafe-audit");
        assert_eq!(f.line, 0);
        // The counting-allocator pattern: deny crate-wide, allow back in
        // one SAFETY-documented module.
        let deny = "// SAFETY comments audited per module.\n#![deny(unsafe_code)]\nmod alloc;\n";
        assert!(audit_crate_root("crates/x/src/lib.rs", deny, &t).is_none());
        // A bare deny without any SAFETY documentation is not enough.
        let bare = "#![deny(unsafe_code)]\nmod alloc;\n";
        assert!(audit_crate_root("crates/x/src/lib.rs", bare, &t).is_some());
    }

    #[test]
    fn hot_alloc_flagged_in_hot_path_with_escape_hatch() {
        let src = "fn f() { let b = Box::new(Thing::default()); }\n";
        let fs = lint(HOT_PATH, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "hot-alloc");
        assert_eq!(fs[0].severity, Severity::Deny);
        // Out of scope outside the hot-path modules.
        assert!(lint("crates/omnc/src/runner.rs", src).is_empty());
        // The documented escape hatch.
        let allowed = "fn f() { let b = Box::new(Thing::default()); } // lint: allow(hot-alloc)\n";
        assert!(lint(HOT_PATH, allowed).is_empty());
        // Degenerate zero-capacity Vec; a sized one is fine.
        let zero = "fn g() { let v: Vec<u8> = Vec::with_capacity(0); }\n";
        assert_eq!(lint(HOT_PATH, zero).len(), 1);
        let sized = "fn g(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); }\n";
        assert!(lint(HOT_PATH, sized).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() { log(\"Instant::now\"); } // Instant::now in comments is fine\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn lossy_cast_fires_in_wire_and_kernel_code() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\n";
        let fs = lint("crates/rlnc/src/packet.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "lossy-cast");
        assert_eq!(fs[0].severity, Severity::Deny);
        // Widening/float casts are fine; out-of-scope files are silent.
        assert!(lint(
            "crates/rlnc/src/packet.rs",
            "fn g(n: u8) -> u64 { n as u64 }\n"
        )
        .is_empty());
        assert!(lint("crates/omnc-opt/src/flow.rs", src).is_empty());
        // The escape hatch.
        let allowed = "fn f(n: usize) -> u32 { n as u32 } // lint: allow(lossy-cast)\n";
        assert!(lint("crates/rlnc/src/packet.rs", allowed).is_empty());
    }

    #[test]
    fn unchecked_arith_fires_on_index_like_operands() {
        let src = "fn f(&mut self) { self.next_seq += 1; }\n";
        let fs = lint("crates/drift/src/event.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unchecked-arith");
        // Multiplication on a rank/pivot value.
        let mul = "fn g(&self, row: &Row) -> usize { row.pivot * self.block }\n";
        assert_eq!(lint("crates/rlnc/src/decoder.rs", mul).len(), 1);
        // Wrapping arithmetic and non-index operands are fine.
        let ok =
            "fn h(&mut self) { self.next_seq = self.next_seq.wrapping_add(1); let y = a + b; }\n";
        assert!(lint("crates/drift/src/event.rs", ok).is_empty());
        // Generic bounds (`Clone + 'static`) don't trip it.
        let bounds = "fn b<M: Clone + 'static>(m: M) {}\n";
        assert!(lint("crates/drift/src/event.rs", bounds).is_empty());
    }

    #[test]
    fn atomics_audit_requires_ordering_comment() {
        let path = "crates/omnc-telemetry/src/alloc.rs";
        let bare = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let fs = lint(path, bare);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "atomics-audit");
        let documented = "// ordering: independent counter, no synchronization needed.\nfn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(lint(path, documented).is_empty());
        // Only the sanctioned unsafe surface is audited.
        assert!(lint("crates/omnc-telemetry/src/sink.rs", bare).is_empty());
    }

    #[test]
    fn clone_in_hot_loop_fires_inside_loops_only() {
        let in_loop = "fn f(rows: &[Vec<u8>]) {\n    for r in rows {\n        consume(r.clone());\n    }\n}\n";
        let fs = lint(HOT_PATH, in_loop);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "clone-in-hot-loop");
        let outside = "fn f(r: &Vec<u8>) { consume(r.clone()); }\n";
        assert!(lint(HOT_PATH, outside).is_empty());
        let allowed = "fn f(rows: &[Vec<u8>]) {\n    for r in rows {\n        consume(r.clone()); // lint: allow(clone-in-hot-loop)\n    }\n}\n";
        assert!(lint(HOT_PATH, allowed).is_empty());
    }

    #[test]
    fn loop_mask_covers_while_and_loop_bodies() {
        let file = clean("fn f() {\n    let x = 1;\n    while x < 2 {\n        step();\n    }\n    loop {\n        break;\n    }\n}\n");
        let mask = loop_line_mask(&file);
        assert!(!mask[0] && !mask[1], "{mask:?}");
        assert!(mask[2] && mask[3] && mask[4], "{mask:?}");
        assert!(mask[5] && mask[6] && mask[7], "{mask:?}");
        assert!(!mask[8], "{mask:?}");
    }

    #[test]
    fn impl_for_headers_and_hrtbs_are_not_loops() {
        let src = "impl Behavior<Msg> for Forwarder {\n    fn on_receive(&mut self, msg: &Msg) {\n        self.forward(msg.clone());\n    }\n}\nfn call<F: for<'a> Fn(&'a u8)>(f: F, v: &Vec<u8>) {\n    f(&v.clone()[0]);\n}\n";
        let mask = loop_line_mask(&clean(src));
        assert!(mask.iter().all(|m| !m), "{mask:?}");
        let fs = lint(HOT_PATH, src);
        assert!(fs.iter().all(|f| f.rule != "clone-in-hot-loop"), "{fs:#?}");
    }

    #[test]
    fn potential_findings_released_only_when_hot() {
        // `algorithm.rs` is NOT in HOT_PATH_MODULES, so the unwrap is
        // invisible to the local pass — but RateControl::iterate is a
        // registered entry, so propagation releases it with a chain.
        let src = "struct RateControl;\nimpl RateControl {\n    fn iterate(&mut self) { self.step() }\n    fn step(&mut self) { self.x.unwrap(); }\n}\n";
        let table = RuleTable::default();
        let analysis = analyze_file("crates/omnc-opt/src/algorithm.rs", src, &table);
        assert!(analysis.local.is_empty(), "{:#?}", analysis.local);
        assert_eq!(analysis.potential.len(), 1, "{:#?}", analysis.potential);

        let findings =
            assemble_findings(&[("crates/omnc-opt/src/algorithm.rs".to_owned(), analysis)]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "unwrap");
        assert_eq!(
            findings[0].chain.as_deref(),
            Some("RateControl::iterate → RateControl::step")
        );

        // The same code under a crate with no hot entries stays silent.
        let cold = analyze_file("crates/net-topo/src/algorithm.rs", src, &table);
        let cold_findings =
            assemble_findings(&[("crates/net-topo/src/algorithm.rs".to_owned(), cold)]);
        assert!(cold_findings.is_empty(), "{cold_findings:#?}");
    }

    #[test]
    fn local_findings_in_hot_functions_gain_chains() {
        // gf256 is statically hot (path scope) AND reachable from the
        // rlnc encoder — the finding keeps its local origin but gains
        // the blame chain.
        let gf = "pub fn lead(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let enc = "use gf256::slice::lead;\nstruct Encoder;\nimpl Encoder {\n    fn emit(&self) { lead(None); }\n}\n";
        let table = RuleTable::default();
        let analyses = vec![
            (
                "crates/gf256/src/slice.rs".to_owned(),
                analyze_file("crates/gf256/src/slice.rs", gf, &table),
            ),
            (
                "crates/rlnc/src/encoder.rs".to_owned(),
                analyze_file("crates/rlnc/src/encoder.rs", enc, &table),
            ),
        ];
        let findings = assemble_findings(&analyses);
        let unwrap = findings.iter().find(|f| f.rule == "unwrap").unwrap();
        assert_eq!(unwrap.chain.as_deref(), Some("Encoder::emit → lead"));
        assert!(unwrap.render().contains("hot path: Encoder::emit → lead"));
    }
}
