//! The per-file analysis passes and the workspace walker.
//!
//! Everything here operates on the cleaned line view produced by
//! [`crate::lexer::clean`]: comments and literal contents are already
//! blanked, so plain substring/token matching is safe. Lines inside
//! `#[cfg(test)]` regions are exempt from every code rule — the policies
//! target shipping simulation code, not its tests.

use std::io;
use std::path::{Path, PathBuf};

use crate::findings::{Finding, Report};
use crate::lexer::{clean, CleanFile};
use crate::rules::{Rule, RuleTable};

/// Analyzes one source file (given workspace-relative `rel_path`) against
/// `table`. This is the whole per-file pipeline and is public so tests can
/// lint fixture text under fake paths.
pub fn analyze_source(rel_path: &str, source: &str, table: &RuleTable) -> Vec<Finding> {
    let file = clean(source);
    let in_test = test_line_mask(&file);
    let hash_bindings = collect_hash_bindings(&file, &in_test);
    let mut findings = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let mut emit = |rule: Rule, message: String| {
            let cfg = table.config(rule);
            if cfg.applies_to(rel_path) && !file.is_allowed(idx, rule.name()) {
                findings.push(Finding::new(
                    rel_path,
                    line.number,
                    rule,
                    cfg.severity,
                    message,
                    &line.raw,
                ));
            }
        };
        check_patterns(&line.code, &mut emit);
        check_hash_iteration(&line.code, &hash_bindings, &mut emit);
        check_indexing(&line.code, &mut emit);
        check_float_eq(&line.code, &mut emit);
        check_unsafe(&file, idx, &mut emit);
    }
    findings
}

/// Substring rules: each hit of a pattern outside tests is one finding.
fn check_patterns(code: &str, emit: &mut impl FnMut(Rule, String)) {
    const PATTERNS: [(Rule, &str, &str); 18] = [
        (Rule::WallClock, "Instant::now", "wall-clock read"),
        (Rule::WallClock, "SystemTime", "wall-clock read"),
        (Rule::NondetRng, "thread_rng", "entropy-seeded RNG"),
        (Rule::NondetRng, "rand::random", "entropy-seeded RNG"),
        (Rule::NondetRng, "from_entropy", "entropy-seeded RNG"),
        (Rule::NondetRng, "OsRng", "entropy-seeded RNG"),
        (Rule::EnvDep, "env::var", "environment read"),
        (Rule::EnvDep, "env::args", "environment read"),
        (Rule::EnvDep, "env::vars", "environment read"),
        (Rule::Unwrap, ".unwrap()", "unchecked unwrap in hot path"),
        (Rule::Panic, ".expect(", "potential panic in hot path"),
        (Rule::Panic, "panic!", "explicit panic in hot path"),
        (Rule::Concurrency, "thread::spawn", "thread creation"),
        (Rule::Concurrency, "thread::scope", "thread creation"),
        (Rule::Concurrency, "thread::Builder", "thread creation"),
        (Rule::Concurrency, "mpsc::", "channel plumbing"),
        (Rule::HotAlloc, "Box::new(", "heap allocation in hot path"),
        (
            Rule::HotAlloc,
            "Vec::with_capacity(0)",
            "zero-capacity Vec (allocates on first push) in hot path",
        ),
    ];
    const PANIC_MACROS: [&str; 3] = ["unreachable!", "todo!", "unimplemented!"];
    for (rule, pat, what) in PATTERNS {
        // Patterns that begin with an identifier char need a non-identifier
        // char before the match so e.g. `MySystemTimer` does not trip
        // `SystemTime`; method patterns like `.unwrap()` start at a `.` and
        // legitimately follow an identifier.
        let needs_boundary = pat.as_bytes().first().is_some_and(|&b| is_ident_byte(b));
        for pos in find_all(code, pat) {
            if needs_boundary && !ident_boundary_before(code, pos) {
                continue;
            }
            emit(rule, format!("{what}: `{pat}` is banned here"));
        }
    }
    for pat in PANIC_MACROS {
        for pos in find_all(code, pat) {
            if ident_boundary_before(code, pos) {
                emit(Rule::Panic, format!("panicking macro `{pat}` in hot path"));
            }
        }
    }
}

/// Pass 1 of hash-iteration detection: names bound to `HashMap`/`HashSet`
/// via a type annotation (`name: HashMap<...>`, including field and
/// parameter positions) or a constructor assignment (`name = HashMap::new`).
fn collect_hash_bindings(file: &CleanFile, in_test: &[bool]) -> Vec<String> {
    let mut names = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in find_all(&line.code, ty) {
                if !ident_boundary_before(&line.code, pos) {
                    continue;
                }
                let after = &line.code[pos + ty.len()..];
                let name = if after.starts_with('<') {
                    binding_before_annotation(&line.code, pos)
                } else if after.starts_with("::") {
                    binding_before_assignment(&line.code, pos)
                } else {
                    None
                };
                if let Some(name) = name {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Pass 2: flag order-dependent consumption of collected bindings —
/// iteration-yielding method calls and direct `for ... in name` loops.
fn check_hash_iteration(code: &str, bindings: &[String], emit: &mut impl FnMut(Rule, String)) {
    const ITER_METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    for name in bindings {
        for pos in find_all(code, name) {
            if !ident_boundary_before(code, pos) || !ident_boundary_after(code, pos + name.len()) {
                continue;
            }
            let after = &code[pos + name.len()..];
            let via_method = ITER_METHODS.iter().find(|m| after.starts_with(*m));
            let via_for = preceded_by_in_keyword(code, pos);
            if let Some(m) = via_method {
                emit(
                    Rule::HashIter,
                    format!("hash-order iteration: `{name}{m}..` (order is seeded per process)"),
                );
            } else if via_for && !after.starts_with('.') {
                emit(
                    Rule::HashIter,
                    format!("hash-order iteration: `for .. in {name}`"),
                );
            }
        }
    }
}

/// Slice/array indexing heuristic: `[` directly after an identifier,
/// `)` or `]`. Attributes (`#[...]`) and macro brackets (`vec![`) have
/// non-identifier characters before the bracket and do not match.
fn check_indexing(code: &str, emit: &mut impl FnMut(Rule, String)) {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            emit(
                Rule::Index,
                "unchecked indexing in hot path (prefer `get`)".to_owned(),
            );
        }
    }
}

/// `==`/`!=` where either operand token is a float literal.
fn check_float_eq(code: &str, emit: &mut impl FnMut(Rule, String)) {
    let bytes = code.as_bytes();
    for op in ["==", "!="] {
        for pos in find_all(code, op) {
            // Skip `<=`, `>=`, `=>`-adjacent false matches.
            if pos > 0 && matches!(bytes[pos - 1], b'<' | b'>' | b'=' | b'!') {
                continue;
            }
            if bytes.get(pos + 2) == Some(&b'=') {
                continue;
            }
            let lhs = token_before(code, pos);
            let rhs = token_after(code, pos + 2);
            if is_float_literal(&lhs) || is_float_literal(&rhs) {
                emit(
                    Rule::FloatEq,
                    format!("exact float comparison `{lhs} {op} {rhs}` (use a tolerance)"),
                );
            }
        }
    }
}

/// `unsafe` keyword use: must be justified by a `SAFETY:` comment on the
/// same line or within the three raw lines above.
fn check_unsafe(file: &CleanFile, idx: usize, emit: &mut impl FnMut(Rule, String)) {
    let code = &file.lines[idx].code;
    for pos in find_all(code, "unsafe") {
        if !ident_boundary_before(code, pos) || !ident_boundary_after(code, pos + 6) {
            continue;
        }
        let documented = (idx.saturating_sub(3)..=idx)
            .any(|j| file.lines.get(j).is_some_and(|l| l.raw.contains("SAFETY")));
        if !documented {
            emit(
                Rule::UnsafeAudit,
                "`unsafe` without a SAFETY comment".to_owned(),
            );
        }
    }
}

/// Crate-root audit: a crate root file must carry `#![forbid(unsafe_code)]`,
/// or a SAFETY-commented `#![allow(unsafe_code)]` / `#![deny(unsafe_code)]`.
/// The deny form is the counting-allocator pattern: unsafe denied
/// crate-wide and allowed back in exactly one SAFETY-documented module
/// (deny, unlike forbid, can be overridden by an inner `#![allow]`).
/// Returns a file-level finding otherwise.
pub fn audit_crate_root(rel_path: &str, source: &str, table: &RuleTable) -> Option<Finding> {
    let cfg = table.config(Rule::UnsafeAudit);
    if !cfg.applies_to(rel_path) {
        return None;
    }
    if source.contains("#![forbid(unsafe_code)]") {
        return None;
    }
    if source.contains("#![allow(unsafe_code)]") && source.contains("SAFETY") {
        return None;
    }
    if source.contains("#![deny(unsafe_code)]") && source.contains("SAFETY") {
        return None;
    }
    Some(Finding::new(
        rel_path,
        0,
        Rule::UnsafeAudit,
        cfg.severity,
        "crate root lacks `#![forbid(unsafe_code)]`".to_owned(),
        "",
    ))
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum TestScan {
    Normal,
    /// Saw `#[cfg(test)]`, waiting for the opening brace of the item.
    Seeking,
    /// Inside the braced test item at the given depth.
    Inside(u32),
}

/// Marks lines belonging to `#[cfg(test)]` items (modules or functions).
fn test_line_mask(file: &CleanFile) -> Vec<bool> {
    let mut mask = vec![false; file.lines.len()];
    let mut state = TestScan::Normal;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = line.code.as_str();
        let mut start = 0usize;
        if state == TestScan::Normal {
            if let Some(p) = code
                .find("#[cfg(test)]")
                .or_else(|| code.find("#[cfg(all(test"))
            {
                state = TestScan::Seeking;
                start = p;
            }
        }
        if state == TestScan::Normal {
            continue;
        }
        mask[idx] = true;
        for c in code[start..].chars() {
            match (state, c) {
                (TestScan::Seeking, '{') => state = TestScan::Inside(1),
                (TestScan::Seeking, ';') => {
                    // `#[cfg(test)] use ...;` — no braced region follows.
                    state = TestScan::Normal;
                    break;
                }
                (TestScan::Inside(d), '{') => state = TestScan::Inside(d + 1),
                (TestScan::Inside(1), '}') => {
                    state = TestScan::Normal;
                    break;
                }
                (TestScan::Inside(d), '}') => state = TestScan::Inside(d - 1),
                _ => {}
            }
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All byte offsets where `pat` occurs in `code`.
fn find_all(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find(pat) {
        out.push(from + p);
        from += p + pat.len().max(1);
    }
    out
}

/// `true` if position `pos` is not preceded by an identifier character.
fn ident_boundary_before(code: &str, pos: usize) -> bool {
    pos == 0 || !is_ident_byte(code.as_bytes()[pos - 1])
}

/// `true` if position `pos` is not followed by an identifier character.
fn ident_boundary_after(code: &str, pos: usize) -> bool {
    code.as_bytes().get(pos).is_none_or(|&b| !is_ident_byte(b))
}

/// For `name: [&mut] [path::]HashMap<..>` at `ty_start`, recovers `name`.
fn binding_before_annotation(code: &str, ty_start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = ty_start;
    // Strip any path prefix (`std::collections::`) attached to the type.
    loop {
        let mut k = j;
        while k > 0 && is_ident_byte(bytes[k - 1]) {
            k -= 1;
        }
        if k >= 2 && &code[k - 2..k] == "::" {
            j = k - 2;
        } else {
            j = k;
            break;
        }
    }
    // Strip reference/mutability tokens and whitespace.
    loop {
        while j > 0 && (bytes[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b'&' {
            j -= 1;
        } else if j >= 3 && &code[j - 3..j] == "mut" && (j == 3 || !is_ident_byte(bytes[j - 4])) {
            j -= 3;
        } else {
            break;
        }
    }
    // Expect the single colon of a type annotation.
    if j == 0 || bytes[j - 1] != b':' || (j >= 2 && bytes[j - 2] == b':') {
        return None;
    }
    j -= 1;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    (j < end).then(|| code[j..end].to_owned())
}

/// For `let [mut] name = HashMap::new()` at `ty_start`, recovers `name`.
fn binding_before_assignment(code: &str, ty_start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = ty_start;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    if j == 0 || bytes[j - 1] != b'=' {
        return None;
    }
    j -= 1;
    if j > 0 && matches!(bytes[j - 1], b'=' | b'!' | b'<' | b'>' | b'+') {
        return None;
    }
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    (j < end).then(|| code[j..end].to_owned())
}

/// `true` if the identifier at `pos` is the iterated expression of a
/// `for .. in [&mut] name` loop.
fn preceded_by_in_keyword(code: &str, pos: usize) -> bool {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    if j > 0 && bytes[j - 1] == b'&' {
        j -= 1;
        if j >= 3 && &code[j - 3..j] == "mut" {
            j -= 3;
        }
        while j > 0 && (bytes[j - 1] as char).is_whitespace() {
            j -= 1;
        }
    }
    j >= 2 && &code[j - 2..j] == "in" && (j == 2 || !is_ident_byte(bytes[j - 3]))
}

/// The expression token ending at `pos` (identifier/number chars and dots).
fn token_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j > 0 && (bytes[j - 1] as char).is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && (is_ident_byte(bytes[j - 1]) || bytes[j - 1] == b'.') {
        j -= 1;
    }
    code[j..end].to_owned()
}

/// The expression token starting at `pos`, including exponent signs.
fn token_after(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut j = pos;
    while j < bytes.len() && (bytes[j] as char).is_whitespace() {
        j += 1;
    }
    if bytes.get(j) == Some(&b'-') {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && (is_ident_byte(bytes[j]) || bytes[j] == b'.') {
        if (bytes[j] == b'e' || bytes[j] == b'E')
            && matches!(bytes.get(j + 1), Some(b'-') | Some(b'+'))
        {
            j += 2;
            continue;
        }
        j += 1;
    }
    code[start..j].to_owned()
}

/// `true` for numeric float literal tokens: `0.5`, `1.`, `1e-9`, `2.5e3`.
fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    let mut chars = t.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() && first != '.' {
        return false;
    }
    let has_digit = t.chars().any(|c| c.is_ascii_digit());
    let has_marker = t.contains('.') || t.contains('e') || t.contains('E');
    has_digit
        && has_marker
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '_' | '-' | '+'))
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lints every first-party source file under `<root>/crates` against
/// `table`. Files under `tests/`, `benches/`, `examples/`, `fixtures/`, and
/// `target/` directories are skipped — the rules govern shipping code.
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be read.
pub fn check_workspace(root: &Path, table: &RuleTable) -> io::Result<Report> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    collect_rust_files(&crates, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)?;
        report.findings.extend(analyze_source(&rel, &source, table));
        if rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") {
            report
                .findings
                .extend(audit_crate_root(&rel, &source, table));
        }
        report.files_checked += 1;
    }
    report.finish();
    Ok(report)
}

/// Recursively collects `.rs` files, skipping non-shipping directories.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    const SKIP_DIRS: [&str; 5] = ["tests", "benches", "examples", "fixtures", "target"];
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rust_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    const SIM_PATH: &str = "crates/drift/src/sim.rs";
    const HOT_PATH: &str = "crates/rlnc/src/kernel.rs";

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src, &RuleTable::default())
    }

    #[test]
    fn wall_clock_flagged_in_sim_not_in_telemetry() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint(SIM_PATH, src).len(), 1);
        assert!(lint("crates/omnc-telemetry/src/timer.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f() { let t = Instant::now(); } // lint: allow(wall-clock)\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); let t = Instant::now(); }\n}\n";
        assert!(lint(HOT_PATH, src).is_empty());
    }

    #[test]
    fn hash_iteration_found_via_annotation_and_constructor() {
        let src = "struct S { pub seen: HashMap<u32, u64> }\nfn f(s: &S) { for (k, v) in s.seen.iter() { use_it(k, v); } }\n";
        let fs = lint(SIM_PATH, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "hash-iter");

        let src2 =
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for k in m.keys() { g(k); } }\n";
        assert_eq!(lint(SIM_PATH, src2).len(), 1);
    }

    #[test]
    fn hash_lookup_without_iteration_is_clean() {
        let src = "struct S { pub seen: HashMap<u32, u64> }\nfn f(s: &S) { let v = s.seen.get(&1); use_it(v); }\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn for_loop_over_hash_binding_is_flagged() {
        let src = "fn f(roles: HashMap<u32, u64>) { for (k, v) in roles { g(k, v); } }\n";
        let fs = lint(SIM_PATH, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn btree_map_is_clean() {
        let src = "fn f(roles: BTreeMap<u32, u64>) { for (k, v) in roles { g(k, v); } }\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unwrap_deny_and_expect_warn_in_hot_path() {
        let src = "fn f(x: Option<u32>) { let a = x.unwrap(); let b = x.expect(\"b\"); }\n";
        let fs = lint(HOT_PATH, src);
        assert_eq!(fs.len(), 2);
        let unwrap = fs.iter().find(|f| f.rule == "unwrap").unwrap();
        assert_eq!(unwrap.severity, Severity::Deny);
        let expect = fs.iter().find(|f| f.rule == "panic").unwrap();
        assert_eq!(expect.severity, Severity::Warn);
    }

    #[test]
    fn indexing_warned_in_hot_path_only() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        let fs = lint(HOT_PATH, src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].severity, Severity::Warn);
        assert!(lint("crates/omnc/src/runner.rs", src).is_empty());
    }

    #[test]
    fn float_eq_flagged_in_opt_crates() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        let fs = lint("crates/omnc-opt/src/flow.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "float-eq");
        // Integer comparison and tuple-field access are fine.
        assert!(lint(
            "crates/omnc-opt/src/flow.rs",
            "fn g(i: u32, t: (f64, f64)) -> bool { i == 0 && t.0 != t.1 }\n"
        )
        .is_empty());
        // Out of scope elsewhere.
        assert!(lint(SIM_PATH, src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let fs = lint("crates/omnc-report/src/lib.rs", bad);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "unsafe-audit");
        let good =
            "// SAFETY: p is valid by contract.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(lint("crates/omnc-report/src/lib.rs", good).is_empty());
    }

    #[test]
    fn crate_root_audit() {
        let t = RuleTable::default();
        assert!(audit_crate_root("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n", &t).is_none());
        let f = audit_crate_root("crates/x/src/lib.rs", "pub mod a;\n", &t).unwrap();
        assert_eq!(f.rule, "unsafe-audit");
        assert_eq!(f.line, 0);
        // The counting-allocator pattern: deny crate-wide, allow back in
        // one SAFETY-documented module.
        let deny = "// SAFETY comments audited per module.\n#![deny(unsafe_code)]\nmod alloc;\n";
        assert!(audit_crate_root("crates/x/src/lib.rs", deny, &t).is_none());
        // A bare deny without any SAFETY documentation is not enough.
        let bare = "#![deny(unsafe_code)]\nmod alloc;\n";
        assert!(audit_crate_root("crates/x/src/lib.rs", bare, &t).is_some());
    }

    #[test]
    fn hot_alloc_flagged_in_hot_path_with_escape_hatch() {
        let src = "fn f() { let b = Box::new(Thing::default()); }\n";
        let fs = lint(HOT_PATH, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "hot-alloc");
        assert_eq!(fs[0].severity, Severity::Deny);
        // Out of scope outside the hot-path modules.
        assert!(lint("crates/omnc/src/runner.rs", src).is_empty());
        // The documented escape hatch.
        let allowed = "fn f() { let b = Box::new(Thing::default()); } // lint: allow(hot-alloc)\n";
        assert!(lint(HOT_PATH, allowed).is_empty());
        // Degenerate zero-capacity Vec; a sized one is fine.
        let zero = "fn g() { let v: Vec<u8> = Vec::with_capacity(0); }\n";
        assert_eq!(lint(HOT_PATH, zero).len(), 1);
        let sized = "fn g(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); }\n";
        assert!(lint(HOT_PATH, sized).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() { log(\"Instant::now\"); } // Instant::now in comments is fine\n";
        assert!(lint(SIM_PATH, src).is_empty());
    }
}
