//! Coded packet wire format.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::RlncError;

/// Identifies a generation (the paper's group of data blocks).
///
/// Generation identifiers are monotonically increasing per session; a coded
/// packet or ACK with a higher generation id dictates intermediate nodes to
/// discard state belonging to expired generations (Sec. 4, *Packet and Queue
/// Management*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GenerationId(u64);

impl GenerationId {
    /// Wraps a raw generation number.
    pub const fn new(id: u64) -> Self {
        GenerationId(id)
    }

    /// Returns the raw generation number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The generation that follows this one.
    #[must_use]
    pub const fn next(self) -> Self {
        GenerationId(self.0 + 1)
    }
}

impl fmt::Display for GenerationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gen#{}", self.0)
    }
}

impl From<u64> for GenerationId {
    fn from(value: u64) -> Self {
        GenerationId(value)
    }
}

/// A coded packet: one row of the paper's `X = R · B` together with its row
/// of coefficients from `R`.
///
/// The coefficient vector always has the generation's block count `n` entries
/// and the payload the generation's block size `m` bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodedPacket {
    generation: GenerationId,
    coefficients: Vec<u8>,
    payload: Vec<u8>,
}

impl CodedPacket {
    /// Assembles a packet from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::MalformedPacket`] if either part is empty or
    /// longer than the wire format's 32-bit length fields can carry.
    pub fn new(
        generation: GenerationId,
        coefficients: Vec<u8>,
        payload: Vec<u8>,
    ) -> Result<Self, RlncError> {
        if coefficients.is_empty() {
            return Err(RlncError::MalformedPacket("empty coefficient vector"));
        }
        if payload.is_empty() {
            return Err(RlncError::MalformedPacket("empty payload"));
        }
        if u32::try_from(coefficients.len()).is_err() {
            return Err(RlncError::MalformedPacket("coefficient vector too long"));
        }
        if u32::try_from(payload.len()).is_err() {
            return Err(RlncError::MalformedPacket("payload too long"));
        }
        Ok(CodedPacket {
            generation,
            coefficients,
            payload,
        })
    }

    /// The generation this packet belongs to.
    pub fn generation(&self) -> GenerationId {
        self.generation
    }

    /// The coding coefficients (one per source block).
    pub fn coefficients(&self) -> &[u8] {
        &self.coefficients
    }

    /// The coded payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total bytes this packet occupies on the air: header + coefficients +
    /// payload. Used by the simulator to charge channel time.
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.coefficients.len() + self.payload.len()
    }

    /// Returns `true` if every coefficient is zero (such a packet can never
    /// be innovative).
    pub fn is_degenerate(&self) -> bool {
        self.coefficients.iter().all(|&c| c == 0)
    }

    const HEADER_LEN: usize = 8 + 4 + 4; // generation id + two length fields

    /// Serializes to the on-the-wire byte layout:
    /// `generation (8 LE) | n_coeff (4 LE) | n_payload (4 LE) | coeffs | payload`.
    ///
    /// ```
    /// # use omnc_rlnc::{CodedPacket, GenerationId};
    /// let p = CodedPacket::new(GenerationId::new(3), vec![1, 2], vec![9; 4])?;
    /// let bytes = p.to_bytes();
    /// assert_eq!(CodedPacket::from_bytes(&bytes)?, p);
    /// # Ok::<(), omnc_rlnc::RlncError>(())
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.generation.0.to_le_bytes());
        // Lengths fit u32 by the `new()` invariant checked at construction.
        out.extend_from_slice(&(self.coefficients.len() as u32).to_le_bytes()); // lint: allow(lossy-cast)
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes()); // lint: allow(lossy-cast)
        out.extend_from_slice(&self.coefficients);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses the layout produced by [`CodedPacket::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::MalformedPacket`] on truncated or inconsistent
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RlncError> {
        if bytes.len() < Self::HEADER_LEN {
            return Err(RlncError::MalformedPacket("truncated header"));
        }
        let generation = GenerationId(u64::from_le_bytes(
            bytes[0..8].try_into().expect("8 header bytes"),
        ));
        let n_coeff = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes")) as usize;
        let n_payload =
            u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes")) as usize;
        let body = &bytes[Self::HEADER_LEN..];
        if body.len() != n_coeff + n_payload {
            return Err(RlncError::MalformedPacket("body length mismatch"));
        }
        CodedPacket::new(
            generation,
            body[..n_coeff].to_vec(),
            body[n_coeff..].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodedPacket {
        CodedPacket::new(GenerationId::new(17), vec![0, 1, 2, 3], vec![0xaa; 16]).unwrap()
    }

    #[test]
    fn wire_roundtrip() {
        let p = sample();
        assert_eq!(CodedPacket::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn wire_len_matches_serialized_len() {
        let p = sample();
        assert_eq!(p.wire_len(), p.to_bytes().len());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, 15, bytes.len() - 1] {
            assert!(CodedPacket::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn inconsistent_lengths_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 200; // claim 200 coefficients
        assert!(matches!(
            CodedPacket::from_bytes(&bytes),
            Err(RlncError::MalformedPacket(_))
        ));
    }

    #[test]
    fn empty_parts_are_rejected() {
        assert!(CodedPacket::new(GenerationId::new(0), vec![], vec![1]).is_err());
        assert!(CodedPacket::new(GenerationId::new(0), vec![1], vec![]).is_err());
    }

    #[test]
    fn degenerate_detection() {
        let zero = CodedPacket::new(GenerationId::new(0), vec![0, 0], vec![1, 2]).unwrap();
        assert!(zero.is_degenerate());
        assert!(!sample().is_degenerate());
    }

    #[test]
    fn generation_ordering_and_next() {
        let g = GenerationId::new(4);
        assert!(g.next() > g);
        assert_eq!(g.next().as_u64(), 5);
        assert_eq!(g.to_string(), "gen#4");
    }
}
