//! Random linear network coding (RLNC) as used by OMNC (Zhang & Li, ICDCS
//! 2008, Secs. 3.1 and 4).
//!
//! The source groups data into *generations* of `n` blocks of `m` bytes each
//! (the paper's matrix `B`), and emits coded packets `X = R · B` where `R`
//! holds random coefficients in GF(2^8). Intermediate forwarders *re-encode*:
//! they buffer innovative packets and broadcast fresh random combinations of
//! them. The destination runs *progressive decoding* with Gauss-Jordan
//! elimination, keeping the decoding matrix in reduced row-echelon form so
//! that innovation checks and recovery happen on the fly (Sec. 4).
//!
//! # Examples
//!
//! ```
//! use omnc_rlnc::{Decoder, Encoder, Generation, GenerationConfig, GenerationId};
//! use rand::SeedableRng;
//!
//! let cfg = GenerationConfig::new(8, 64)?;
//! let data = vec![42u8; cfg.payload_len()];
//! let generation = Generation::from_bytes(GenerationId::new(0), cfg, &data)?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let encoder = Encoder::new(&generation);
//! let mut decoder = Decoder::new(GenerationId::new(0), cfg);
//! while !decoder.is_complete() {
//!     decoder.absorb(&encoder.emit(&mut rng))?;
//! }
//! assert_eq!(decoder.recover().unwrap(), data);
//! # Ok::<(), omnc_rlnc::RlncError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod decoder;
mod encoder;
mod error;
mod generation;
mod kernel;
mod packet;
mod recoder;
mod stream;
mod systematic;

pub use batch::BatchDecoder;
pub use decoder::{Absorption, Decoder, DecoderMetrics};
pub use encoder::Encoder;
pub use error::RlncError;
pub use generation::{Generation, GenerationConfig};
pub use kernel::Kernel;
pub use packet::{CodedPacket, GenerationId};
pub use recoder::Recoder;
pub use stream::{StreamAssembler, StreamChunker};
pub use systematic::SystematicEncoder;
