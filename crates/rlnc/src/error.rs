//! Error type shared by the codec.

use core::fmt;

use crate::packet::GenerationId;

/// Errors produced by the RLNC codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RlncError {
    /// A generation was configured with zero blocks or zero block size.
    EmptyGeneration,
    /// Source data does not fit the configured generation exactly.
    PayloadSizeMismatch {
        /// Bytes the generation holds (`blocks * block_size`).
        expected: usize,
        /// Bytes supplied by the caller.
        actual: usize,
    },
    /// A packet carried a coefficient vector of the wrong length.
    CoefficientLengthMismatch {
        /// Expected number of coefficients (the generation's block count).
        expected: usize,
        /// Number of coefficients in the packet.
        actual: usize,
    },
    /// A packet carried a payload of the wrong length.
    BlockSizeMismatch {
        /// Expected payload length (the generation's block size).
        expected: usize,
        /// Payload length in the packet.
        actual: usize,
    },
    /// A packet belongs to a different generation than the decoder.
    GenerationMismatch {
        /// Generation the decoder is working on.
        expected: GenerationId,
        /// Generation the packet belongs to.
        actual: GenerationId,
    },
    /// A re-encoder was asked to emit before buffering any innovative packet.
    NothingBuffered,
    /// A wire buffer could not be parsed as a coded packet.
    MalformedPacket(&'static str),
}

impl fmt::Display for RlncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlncError::EmptyGeneration => {
                write!(
                    f,
                    "generation must have at least one block and one byte per block"
                )
            }
            RlncError::PayloadSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "payload size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            RlncError::CoefficientLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "coefficient length mismatch: expected {expected}, got {actual}"
                )
            }
            RlncError::BlockSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "block size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            RlncError::GenerationMismatch { expected, actual } => {
                write!(
                    f,
                    "generation mismatch: decoder on {expected}, packet from {actual}"
                )
            }
            RlncError::NothingBuffered => {
                write!(f, "re-encoder holds no innovative packets to combine")
            }
            RlncError::MalformedPacket(what) => write!(f, "malformed packet: {what}"),
        }
    }
}

impl std::error::Error for RlncError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = RlncError::PayloadSizeMismatch {
            expected: 10,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('3'));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<RlncError>();
    }
}
