//! Splitting a byte stream into sequential generations and reassembling it.
//!
//! The paper's protocols move one generation at a time; a real application
//! has a *stream* (a file, a video segment). [`StreamChunker`] cuts the
//! stream into padded generations with an explicit length prefix so the
//! final generation's padding can be stripped, and [`StreamAssembler`]
//! restores the exact bytes from decoded generations, in order, tolerating
//! out-of-order completion.

use std::collections::BTreeMap;

use crate::error::RlncError;
use crate::generation::{Generation, GenerationConfig};
use crate::packet::GenerationId;

/// Bytes of header prepended to every generation's payload: the length of
/// the application data carried (u32 LE) — the rest is padding.
const LEN_PREFIX: usize = 4;

/// Cuts an application byte stream into a sequence of generations.
///
/// # Examples
///
/// ```
/// use omnc_rlnc::{GenerationConfig, StreamAssembler, StreamChunker};
///
/// let cfg = GenerationConfig::new(4, 16)?;
/// let data: Vec<u8> = (0..150u8).collect(); // does not divide evenly
/// let chunker = StreamChunker::new(cfg, &data)?;
/// let mut assembler = StreamAssembler::new(cfg);
/// for generation in chunker.generations() {
///     assembler.accept(generation.id(), &generation.to_bytes())?;
/// }
/// assert_eq!(assembler.finish().unwrap(), data);
/// # Ok::<(), omnc_rlnc::RlncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamChunker {
    config: GenerationConfig,
    generations: Vec<Generation>,
}

impl StreamChunker {
    /// Splits `data` into generations under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::EmptyGeneration`] if the configuration cannot
    /// even hold the length prefix (payload must exceed 4 bytes).
    pub fn new(config: GenerationConfig, data: &[u8]) -> Result<Self, RlncError> {
        let usable = config.payload_len().saturating_sub(LEN_PREFIX);
        if usable == 0 {
            return Err(RlncError::EmptyGeneration);
        }
        let mut generations = Vec::new();
        let mut offset = 0usize;
        let mut id = GenerationId::new(0);
        // An empty stream still produces one (empty) generation so the
        // receiver can detect completion.
        loop {
            let end = (offset + usable).min(data.len());
            let chunk = &data[offset..end];
            let mut payload = Vec::with_capacity(LEN_PREFIX + chunk.len());
            payload.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            payload.extend_from_slice(chunk);
            generations.push(Generation::from_bytes_padded(id, config, &payload)?);
            id = id.next();
            offset = end;
            if offset >= data.len() {
                break;
            }
        }
        Ok(StreamChunker {
            config,
            generations,
        })
    }

    /// The generations, in stream order.
    pub fn generations(&self) -> &[Generation] {
        &self.generations
    }

    /// Number of generations the stream needs.
    pub fn generation_count(&self) -> usize {
        self.generations.len()
    }

    /// The coding configuration.
    pub fn config(&self) -> GenerationConfig {
        self.config
    }

    /// Application bytes carried per full generation.
    pub fn usable_per_generation(&self) -> usize {
        self.config.payload_len() - LEN_PREFIX
    }
}

/// Reassembles the stream from decoded generation payloads.
#[derive(Debug, Clone)]
pub struct StreamAssembler {
    config: GenerationConfig,
    decoded: BTreeMap<u64, Vec<u8>>,
}

impl StreamAssembler {
    /// Creates an empty assembler for streams chunked under `config`.
    pub fn new(config: GenerationConfig) -> Self {
        StreamAssembler {
            config,
            decoded: BTreeMap::new(),
        }
    }

    /// Accepts the recovered payload of `generation` (as returned by
    /// [`crate::Decoder::recover`]). Order does not matter; duplicates are
    /// idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::PayloadSizeMismatch`] if the payload does not
    /// match the configuration, or [`RlncError::MalformedPacket`] if its
    /// length prefix is inconsistent.
    pub fn accept(&mut self, generation: GenerationId, payload: &[u8]) -> Result<(), RlncError> {
        if payload.len() != self.config.payload_len() {
            return Err(RlncError::PayloadSizeMismatch {
                expected: self.config.payload_len(),
                actual: payload.len(),
            });
        }
        let len = u32::from_le_bytes(payload[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
        if len > payload.len() - LEN_PREFIX {
            return Err(RlncError::MalformedPacket("length prefix exceeds payload"));
        }
        self.decoded.insert(
            generation.as_u64(),
            payload[LEN_PREFIX..LEN_PREFIX + len].to_vec(),
        );
        Ok(())
    }

    /// Number of generations accepted so far.
    pub fn accepted(&self) -> usize {
        self.decoded.len()
    }

    /// `true` once generations `0..=max_seen` are all present and the last
    /// one is short (or empty) — i.e. the stream *may* be complete. Callers
    /// that know the expected generation count should compare
    /// [`StreamAssembler::accepted`] instead.
    pub fn is_gapless(&self) -> bool {
        self.decoded
            .keys()
            .enumerate()
            .all(|(expect, &have)| have == expect as u64)
    }

    /// Concatenates the stream if every generation from 0 upward is
    /// present; `None` if there are gaps.
    pub fn finish(&self) -> Option<Vec<u8>> {
        if !self.is_gapless() || self.decoded.is_empty() {
            return None;
        }
        let mut out = Vec::new();
        for chunk in self.decoded.values() {
            out.extend_from_slice(chunk);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::encoder::Encoder;
    use rand::SeedableRng;

    fn cfg() -> GenerationConfig {
        GenerationConfig::new(4, 32).unwrap()
    }

    #[test]
    fn roundtrip_with_padding() {
        for len in [0usize, 1, 100, 124, 125, 300] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 + 7) as u8).collect();
            let chunker = StreamChunker::new(cfg(), &data).unwrap();
            let mut asm = StreamAssembler::new(cfg());
            for g in chunker.generations() {
                asm.accept(g.id(), &g.to_bytes()).unwrap();
            }
            assert_eq!(asm.finish().unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn out_of_order_and_duplicate_generations_are_fine() {
        let data: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let chunker = StreamChunker::new(cfg(), &data).unwrap();
        let mut asm = StreamAssembler::new(cfg());
        let gens = chunker.generations();
        for g in gens.iter().rev() {
            asm.accept(g.id(), &g.to_bytes()).unwrap();
        }
        asm.accept(gens[0].id(), &gens[0].to_bytes()).unwrap(); // duplicate
        assert_eq!(asm.finish().unwrap(), data);
    }

    #[test]
    fn gaps_block_completion() {
        let data = vec![9u8; 400];
        let chunker = StreamChunker::new(cfg(), &data).unwrap();
        assert!(chunker.generation_count() >= 3);
        let mut asm = StreamAssembler::new(cfg());
        // Skip generation 1.
        for g in chunker
            .generations()
            .iter()
            .filter(|g| g.id().as_u64() != 1)
        {
            asm.accept(g.id(), &g.to_bytes()).unwrap();
        }
        assert!(asm.finish().is_none());
        assert!(!asm.is_gapless());
    }

    #[test]
    fn through_the_actual_codec() {
        let data: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        let chunker = StreamChunker::new(cfg(), &data).unwrap();
        let mut asm = StreamAssembler::new(cfg());
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for g in chunker.generations() {
            let enc = Encoder::new(g);
            let mut dec = Decoder::new(g.id(), cfg());
            while !dec.is_complete() {
                dec.absorb(&enc.emit(&mut rng)).unwrap();
            }
            asm.accept(g.id(), &dec.recover().unwrap()).unwrap();
        }
        assert_eq!(asm.finish().unwrap(), data);
    }

    #[test]
    fn malformed_prefix_is_rejected() {
        let mut asm = StreamAssembler::new(cfg());
        let mut payload = vec![0u8; cfg().payload_len()];
        payload[..4].copy_from_slice(&(10_000u32).to_le_bytes()); // absurd length
        assert!(matches!(
            asm.accept(GenerationId::new(0), &payload),
            Err(RlncError::MalformedPacket(_))
        ));
        assert!(matches!(
            asm.accept(GenerationId::new(0), &[0u8; 3]),
            Err(RlncError::PayloadSizeMismatch { .. })
        ));
    }

    #[test]
    fn tiny_config_rejected() {
        let small = GenerationConfig::new(1, 4).unwrap(); // only the prefix fits
        assert!(matches!(
            StreamChunker::new(small, &[1, 2, 3]),
            Err(RlncError::EmptyGeneration)
        ));
    }
}
