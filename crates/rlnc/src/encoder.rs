//! Source-side encoder: emits `X = R · B` rows with fresh random coefficients.

use rand::Rng;
use telemetry::Profiler;

use crate::generation::Generation;
use crate::kernel::Kernel;
use crate::packet::CodedPacket;

/// Encoder over one generation held at the source node.
///
/// Every call to [`Encoder::emit`] draws a fresh random coefficient row `r`
/// and produces the coded block `r · B` — the paper's continuous stream of
/// random linearly coded packets (Sec. 3.1).
///
/// # Examples
///
/// ```
/// use omnc_rlnc::{Encoder, Generation, GenerationConfig, GenerationId};
/// use rand::SeedableRng;
///
/// let cfg = GenerationConfig::new(4, 16)?;
/// let g = Generation::from_bytes_padded(GenerationId::new(0), cfg, b"hello")?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let packet = Encoder::new(&g).emit(&mut rng);
/// assert_eq!(packet.coefficients().len(), 4);
/// assert_eq!(packet.payload().len(), 16);
/// # Ok::<(), omnc_rlnc::RlncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encoder<'a> {
    generation: &'a Generation,
    kernel: Kernel,
    profiler: Profiler,
}

impl<'a> Encoder<'a> {
    /// Creates an encoder using the default (accelerated) kernel.
    pub fn new(generation: &'a Generation) -> Self {
        Encoder::with_kernel(generation, Kernel::default())
    }

    /// Creates an encoder with an explicit kernel (used by the coding-speed
    /// benchmarks to compare the baseline and accelerated implementations).
    pub fn with_kernel(generation: &'a Generation, kernel: Kernel) -> Self {
        Encoder {
            generation,
            kernel,
            profiler: Profiler::disabled(),
        }
    }

    /// Attaches a hierarchical profiler: each emit opens an `encode`
    /// span whose `gf256.*` children attribute the combine loop to the
    /// active kernel.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The generation this encoder reads from.
    pub fn generation(&self) -> &Generation {
        self.generation
    }

    /// Emits one coded packet with uniformly random coefficients.
    ///
    /// A zero coefficient row is possible in principle (probability
    /// `256^-n`); it is re-drawn so emitted packets are never degenerate.
    pub fn emit<R: Rng + ?Sized>(&self, rng: &mut R) -> CodedPacket {
        let n = self.generation.config().blocks();
        let mut coefficients = vec![0u8; n];
        loop {
            rng.fill(&mut coefficients[..]);
            if coefficients.iter().any(|&c| c != 0) {
                break;
            }
        }
        self.emit_with_coefficients(&coefficients)
    }

    /// Emits the coded packet for a caller-chosen coefficient row. Mostly
    /// useful in tests and for deterministic replay.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len()` differs from the generation's block
    /// count.
    pub fn emit_with_coefficients(&self, coefficients: &[u8]) -> CodedPacket {
        let cfg = self.generation.config();
        assert_eq!(
            coefficients.len(),
            cfg.blocks(),
            "coefficient row length mismatch"
        );
        let _encode = self.profiler.span("encode");
        let mut payload = vec![0u8; cfg.block_size()];
        for (block, &c) in self.generation.blocks().iter().zip(coefficients) {
            let _kernel = self.profiler.span(self.kernel.span_name());
            self.kernel.mul_add_assign(&mut payload, block, c);
        }
        CodedPacket::new(self.generation.id(), coefficients.to_vec(), payload)
            .expect("encoder always produces well-formed packets")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::GenerationConfig;
    use crate::packet::GenerationId;
    use gf256::Gf256;
    use rand::SeedableRng;

    fn generation() -> Generation {
        let cfg = GenerationConfig::new(3, 4).unwrap();
        let data: Vec<u8> = (1..=12).collect();
        Generation::from_bytes(GenerationId::new(9), cfg, &data).unwrap()
    }

    #[test]
    fn unit_coefficient_rows_reproduce_blocks() {
        let g = generation();
        let enc = Encoder::new(&g);
        for (i, block) in g.blocks().iter().enumerate() {
            let mut coeffs = vec![0u8; 3];
            coeffs[i] = 1;
            let p = enc.emit_with_coefficients(&coeffs);
            assert_eq!(p.payload(), &block[..], "block {i}");
            assert_eq!(p.generation(), GenerationId::new(9));
        }
    }

    #[test]
    fn emitted_payload_is_the_linear_combination() {
        let g = generation();
        let enc = Encoder::new(&g);
        let coeffs = [2u8, 3, 255];
        let p = enc.emit_with_coefficients(&coeffs);
        for byte in 0..4 {
            let want: Gf256 = g
                .blocks()
                .iter()
                .zip(coeffs)
                .map(|(b, c)| Gf256::new(b[byte]) * Gf256::new(c))
                .sum();
            assert_eq!(p.payload()[byte], want.as_u8(), "byte {byte}");
        }
    }

    #[test]
    fn emit_never_produces_degenerate_packets() {
        let g = generation();
        let enc = Encoder::new(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..500 {
            assert!(!enc.emit(&mut rng).is_degenerate());
        }
    }

    #[test]
    fn kernels_emit_identical_packets() {
        let g = generation();
        let coeffs = [7u8, 0, 91];
        let a = Encoder::with_kernel(&g, Kernel::Table).emit_with_coefficients(&coeffs);
        let b = Encoder::with_kernel(&g, Kernel::Wide).emit_with_coefficients(&coeffs);
        assert_eq!(a, b);
    }

    #[test]
    fn profiled_encoder_emits_identical_packets_and_counts_combines() {
        use telemetry::Profiler;
        let g = generation();
        let coeffs = [7u8, 11, 91];
        let profiler = Profiler::virtual_clock();
        let plain = Encoder::new(&g).emit_with_coefficients(&coeffs);
        let profiled = Encoder::new(&g)
            .with_profiler(profiler.clone())
            .emit_with_coefficients(&coeffs);
        assert_eq!(plain, profiled);
        let report = profiler.report();
        assert_eq!(report.span("encode").map(|s| s.calls), Some(1));
        // One kernel span per block in the combine loop.
        assert_eq!(report.span("encode;gf256.wide").map(|s| s.calls), Some(3));
    }

    #[test]
    #[should_panic(expected = "coefficient row length mismatch")]
    fn wrong_coefficient_count_panics() {
        let g = generation();
        Encoder::new(&g).emit_with_coefficients(&[1, 2]);
    }
}
