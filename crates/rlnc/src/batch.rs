//! Batch decoding — the baseline the paper's *progressive decoding*
//! improves upon (Sec. 4): collect coded packets passively and invert the
//! whole coefficient matrix once at the end.
//!
//! Unlike [`crate::Decoder`], a batch decoder cannot detect non-innovative
//! packets on arrival (it only learns the rank when it tries to solve), and
//! the entire Gaussian elimination cost lands at recovery time — the "delay
//! effects caused by network coding" the progressive implementation
//! eliminates. The benches in `omnc-bench` quantify the difference; the
//! test-suite uses batch decoding as an independent oracle for the
//! progressive path.

use crate::error::RlncError;
use crate::generation::GenerationConfig;
use crate::kernel::Kernel;
use crate::packet::{CodedPacket, GenerationId};

/// A store-then-solve decoder for one generation.
///
/// # Examples
///
/// ```
/// use omnc_rlnc::{BatchDecoder, Encoder, Generation, GenerationConfig, GenerationId};
/// use rand::SeedableRng;
///
/// let cfg = GenerationConfig::new(4, 16)?;
/// let data: Vec<u8> = (0..64).collect();
/// let g = Generation::from_bytes(GenerationId::new(0), cfg, &data)?;
/// let enc = Encoder::new(&g);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let mut dec = BatchDecoder::new(GenerationId::new(0), cfg);
/// for _ in 0..6 {
///     dec.push(enc.emit(&mut rng))?; // a couple of extras for rank safety
/// }
/// assert_eq!(dec.solve().unwrap(), data);
/// # Ok::<(), omnc_rlnc::RlncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchDecoder {
    generation: GenerationId,
    config: GenerationConfig,
    kernel: Kernel,
    packets: Vec<CodedPacket>,
}

impl BatchDecoder {
    /// Creates an empty batch decoder.
    pub fn new(generation: GenerationId, config: GenerationConfig) -> Self {
        BatchDecoder::with_kernel(generation, config, Kernel::default())
    }

    /// Creates an empty batch decoder with an explicit kernel.
    pub fn with_kernel(generation: GenerationId, config: GenerationConfig, kernel: Kernel) -> Self {
        BatchDecoder {
            generation,
            config,
            kernel,
            packets: Vec::new(),
        }
    }

    /// Stores a packet without any processing (the batch decoder's whole
    /// point — and its weakness: redundant packets are stored too).
    ///
    /// # Errors
    ///
    /// Returns the same shape/generation errors as [`crate::Decoder::absorb`].
    pub fn push(&mut self, packet: CodedPacket) -> Result<(), RlncError> {
        if packet.generation() != self.generation {
            return Err(RlncError::GenerationMismatch {
                expected: self.generation,
                actual: packet.generation(),
            });
        }
        if packet.coefficients().len() != self.config.blocks() {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.config.blocks(),
                actual: packet.coefficients().len(),
            });
        }
        if packet.payload().len() != self.config.block_size() {
            return Err(RlncError::BlockSizeMismatch {
                expected: self.config.block_size(),
                actual: packet.payload().len(),
            });
        }
        self.packets.push(packet);
        Ok(())
    }

    /// Packets stored so far (including any linearly dependent ones — the
    /// batch decoder cannot tell).
    pub fn stored(&self) -> usize {
        self.packets.len()
    }

    /// Runs the one-shot Gaussian elimination. Returns the recovered source
    /// bytes, or `None` if the stored packets do not span the generation.
    pub fn solve(&self) -> Option<Vec<u8>> {
        let n = self.config.blocks();
        let m = self.config.block_size();
        if self.packets.len() < n {
            return None;
        }
        // Augmented rows [coefficients | payload], eliminated in place.
        let mut rows: Vec<(Vec<u8>, Vec<u8>)> = self
            .packets
            .iter()
            .map(|p| (p.coefficients().to_vec(), p.payload().to_vec()))
            .collect();

        let mut pivot_of_col = vec![usize::MAX; n];
        let mut next_row = 0usize;
        #[allow(clippy::needless_range_loop)] // col indexes rows' columns too
        for col in 0..n {
            // Find a row with a nonzero entry in this column.
            let Some(r) = (next_row..rows.len()).find(|&r| rows[r].0[col] != 0) else {
                continue;
            };
            rows.swap(next_row, r);
            let lead = rows[next_row].0[col];
            self.kernel.div_assign(&mut rows[next_row].0, lead);
            self.kernel.div_assign(&mut rows[next_row].1, lead);
            let (pivot_row, rest) = {
                let (head, tail) = rows.split_at_mut(next_row + 1);
                (&head[next_row], tail)
            };
            for other in rest.iter_mut() {
                let f = other.0[col];
                if f != 0 {
                    self.kernel.mul_add_assign(&mut other.0, &pivot_row.0, f);
                    self.kernel.mul_add_assign(&mut other.1, &pivot_row.1, f);
                }
            }
            pivot_of_col[col] = next_row;
            next_row += 1;
        }
        if pivot_of_col.contains(&usize::MAX) {
            return None; // rank deficient
        }

        // Back substitution to reduced row-echelon form.
        for col in (0..n).rev() {
            let pr = pivot_of_col[col];
            let (above, below) = rows.split_at_mut(pr);
            let pivot_row = &below[0];
            for other in above.iter_mut() {
                let f = other.0[col];
                if f != 0 {
                    self.kernel.mul_add_assign(&mut other.0, &pivot_row.0, f);
                    self.kernel.mul_add_assign(&mut other.1, &pivot_row.1, f);
                }
            }
        }

        let mut out = vec![0u8; n * m];
        for col in 0..n {
            let pr = pivot_of_col[col];
            debug_assert_eq!(rows[pr].0[col], 1);
            out[col * m..(col + 1) * m].copy_from_slice(&rows[pr].1);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::encoder::Encoder;
    use crate::generation::Generation;
    use rand::SeedableRng;

    fn setup(n: usize, m: usize) -> (Generation, rand::rngs::StdRng) {
        let cfg = GenerationConfig::new(n, m).unwrap();
        let data: Vec<u8> = (0..cfg.payload_len()).map(|i| (i * 7 + 3) as u8).collect();
        (
            Generation::from_bytes(GenerationId::new(4), cfg, &data).unwrap(),
            rand::rngs::StdRng::seed_from_u64(31),
        )
    }

    #[test]
    fn batch_matches_progressive() {
        let (g, mut rng) = setup(12, 32);
        let enc = Encoder::new(&g);
        let mut batch = BatchDecoder::new(g.id(), g.config());
        let mut prog = Decoder::new(g.id(), g.config());
        while !prog.is_complete() {
            let p = enc.emit(&mut rng);
            batch.push(p.clone()).unwrap();
            prog.absorb(&p).unwrap();
        }
        assert_eq!(batch.solve().unwrap(), prog.recover().unwrap());
        assert_eq!(batch.solve().unwrap(), g.to_bytes());
    }

    #[test]
    fn under_ranked_batch_returns_none() {
        let (g, mut rng) = setup(8, 16);
        let enc = Encoder::new(&g);
        let mut batch = BatchDecoder::new(g.id(), g.config());
        for _ in 0..7 {
            batch.push(enc.emit(&mut rng)).unwrap();
        }
        assert_eq!(batch.solve(), None, "7 packets cannot span rank 8");
        assert_eq!(batch.stored(), 7);
    }

    #[test]
    fn duplicate_packets_do_not_fool_the_solver() {
        let (g, mut rng) = setup(4, 8);
        let enc = Encoder::new(&g);
        let p = enc.emit(&mut rng);
        let mut batch = BatchDecoder::new(g.id(), g.config());
        for _ in 0..10 {
            batch.push(p.clone()).unwrap(); // rank 1, many copies
        }
        assert_eq!(batch.solve(), None);
    }

    #[test]
    fn mismatched_packets_are_rejected() {
        let (g, mut rng) = setup(4, 8);
        let enc = Encoder::new(&g);
        let mut batch = BatchDecoder::new(GenerationId::new(9), g.config());
        assert!(matches!(
            batch.push(enc.emit(&mut rng)),
            Err(RlncError::GenerationMismatch { .. })
        ));
    }

    #[test]
    fn solves_with_excess_redundant_packets() {
        let (g, mut rng) = setup(6, 4);
        let enc = Encoder::new(&g);
        let mut batch = BatchDecoder::new(g.id(), g.config());
        for _ in 0..30 {
            batch.push(enc.emit(&mut rng)).unwrap();
        }
        assert_eq!(batch.solve().unwrap(), g.to_bytes());
    }
}
