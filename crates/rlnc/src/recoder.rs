//! Relay-side re-encoder (Sec. 3.1).
//!
//! An intermediate forwarder accepts an incoming packet only if it is
//! *innovative* with respect to its buffer, and refreshes the packet stream
//! by broadcasting random linear combinations of everything it holds. The
//! re-encoding replaces the coding coefficients with a new random set while
//! staying inside the row space of the received packets — so a re-encoded
//! packet carries information from the newly arrived packet *and* all
//! opportunistically received earlier ones.

use rand::Rng;

use crate::decoder::{Absorption, Decoder};
use crate::error::RlncError;
use crate::generation::GenerationConfig;
use crate::kernel::Kernel;
use crate::packet::{CodedPacket, GenerationId};

/// Buffer-and-recode state of one relay for one generation.
///
/// Internally a [`Decoder`]: the reduced row-echelon buffer doubles as the
/// innovation filter. A relay that gathers all `n` independent blocks keeps
/// re-encoding at its assigned rate but stops accepting packets, exactly as
/// described in Sec. 4 (*Packet and Queue Management*).
///
/// # Examples
///
/// ```
/// use omnc_rlnc::{Encoder, Generation, GenerationConfig, GenerationId, Recoder};
/// use rand::SeedableRng;
///
/// let cfg = GenerationConfig::new(4, 16)?;
/// let g = Generation::from_bytes_padded(GenerationId::new(0), cfg, b"payload")?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let enc = Encoder::new(&g);
///
/// let mut relay = Recoder::new(GenerationId::new(0), cfg);
/// relay.absorb(&enc.emit(&mut rng))?;
/// let refreshed = relay.emit(&mut rng)?; // a fresh combination
/// assert_eq!(refreshed.generation(), GenerationId::new(0));
/// # Ok::<(), omnc_rlnc::RlncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Recoder {
    buffer: Decoder,
    kernel: Kernel,
}

impl Recoder {
    /// Creates an empty relay buffer with the default kernel.
    pub fn new(generation: GenerationId, config: GenerationConfig) -> Self {
        Recoder::with_kernel(generation, config, Kernel::default())
    }

    /// Creates an empty relay buffer with an explicit kernel.
    pub fn with_kernel(generation: GenerationId, config: GenerationConfig, kernel: Kernel) -> Self {
        Recoder {
            buffer: Decoder::with_kernel(generation, config, kernel),
            kernel,
        }
    }

    /// Attaches a profiler: re-encoding emissions record a `recode` span
    /// with the kernel's share attributed to a nested `gf256.*` span, and
    /// buffer absorptions record the usual decoder spans.
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.buffer.set_profiler(profiler);
    }

    /// The generation this relay serves.
    pub fn generation(&self) -> GenerationId {
        self.buffer.generation()
    }

    /// Number of independent packets buffered (the relay's rank).
    pub fn rank(&self) -> usize {
        self.buffer.rank()
    }

    /// `true` once the relay holds a full generation; further incoming
    /// packets can never be innovative and upstream traffic is futile.
    pub fn is_full(&self) -> bool {
        self.buffer.is_complete()
    }

    /// Offers an incoming packet to the buffer.
    ///
    /// # Errors
    ///
    /// Propagates the shape/generation errors of [`Decoder::absorb`].
    pub fn absorb(&mut self, packet: &CodedPacket) -> Result<Absorption, RlncError> {
        self.buffer.absorb(packet)
    }

    /// `true` if `packet` would raise this relay's rank.
    pub fn would_be_innovative(&self, packet: &CodedPacket) -> bool {
        self.buffer.would_be_innovative(packet)
    }

    /// Emits a fresh random combination of all buffered packets.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::NothingBuffered`] if no innovative packet has
    /// been absorbed yet (a relay with an empty queue stays silent).
    pub fn emit<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CodedPacket, RlncError> {
        if self.buffer.rank() == 0 {
            return Err(RlncError::NothingBuffered);
        }
        let profiler = self.buffer.profiler().clone();
        let _recode = profiler.span("recode");
        let cfg = self.buffer.config();
        let mut coeff_out = vec![0u8; cfg.blocks()];
        let mut payload_out = vec![0u8; cfg.block_size()];
        loop {
            let _kernel = profiler.span(self.kernel.span_name());
            for (coeff, payload) in self.buffer.rows() {
                // Weight for this buffered row; re-drawing per emission makes
                // packets from different relays independent w.h.p.
                let w: u8 = rng.gen();
                if w != 0 {
                    self.kernel.mul_add_assign(&mut coeff_out, coeff, w);
                    self.kernel.mul_add_assign(&mut payload_out, payload, w);
                }
            }
            if coeff_out.iter().any(|&c| c != 0) {
                break;
            }
        }
        Ok(
            CodedPacket::new(self.buffer.generation(), coeff_out, payload_out)
                .expect("recoder always produces well-formed packets"),
        )
    }

    /// Read access to the underlying buffer (rank, stats, rows).
    pub fn buffer(&self) -> &Decoder {
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::generation::Generation;
    use rand::SeedableRng;

    fn setup() -> (Generation, rand::rngs::StdRng) {
        let cfg = GenerationConfig::new(6, 16).unwrap();
        let data: Vec<u8> = (0..cfg.payload_len()).map(|i| (i ^ 0x5a) as u8).collect();
        (
            Generation::from_bytes(GenerationId::new(3), cfg, &data).unwrap(),
            rand::rngs::StdRng::seed_from_u64(11),
        )
    }

    #[test]
    fn empty_relay_cannot_emit() {
        let relay = Recoder::new(GenerationId::new(0), GenerationConfig::new(4, 4).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(relay.emit(&mut rng), Err(RlncError::NothingBuffered));
    }

    #[test]
    fn recoded_packets_stay_in_row_space() {
        let (g, mut rng) = setup();
        let enc = Encoder::new(&g);
        let mut relay = Recoder::new(g.id(), g.config());
        for _ in 0..3 {
            relay.absorb(&enc.emit(&mut rng)).unwrap();
        }
        // A verifier that absorbed the same packets must find every recoded
        // packet redundant: the relay adds no spurious information.
        let verifier = relay.buffer().clone();
        for _ in 0..20 {
            let p = relay.emit(&mut rng).unwrap();
            assert!(!verifier.would_be_innovative(&p));
        }
    }

    #[test]
    fn destination_decodes_via_relay_only() {
        let (g, mut rng) = setup();
        let enc = Encoder::new(&g);
        let mut relay = Recoder::new(g.id(), g.config());
        while !relay.is_full() {
            relay.absorb(&enc.emit(&mut rng)).unwrap();
        }
        let mut dst = Decoder::new(g.id(), g.config());
        while !dst.is_complete() {
            dst.absorb(&relay.emit(&mut rng).unwrap()).unwrap();
        }
        assert_eq!(dst.recover().unwrap(), g.to_bytes());
    }

    #[test]
    fn profiled_recoder_emits_identical_packets_and_counts_recodes() {
        let (g, _) = setup();
        let enc = Encoder::new(&g);
        let mut plain = Recoder::new(g.id(), g.config());
        let mut profiled = Recoder::new(g.id(), g.config());
        let profiler = telemetry::Profiler::virtual_clock();
        profiled.set_profiler(profiler.clone());
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(5);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let p = enc.emit(&mut rng_a);
            let q = enc.emit(&mut rng_b);
            plain.absorb(&p).unwrap();
            profiled.absorb(&q).unwrap();
        }
        for _ in 0..4 {
            assert_eq!(
                plain.emit(&mut rng_a).unwrap(),
                profiled.emit(&mut rng_b).unwrap()
            );
        }
        let report = profiler.report();
        assert_eq!(report.span("recode").unwrap().calls, 4);
        assert!(report
            .spans
            .iter()
            .any(|s| s.path.starts_with("recode;gf256.")));
    }

    #[test]
    fn full_relay_rejects_everything_as_redundant() {
        let (g, mut rng) = setup();
        let enc = Encoder::new(&g);
        let mut relay = Recoder::new(g.id(), g.config());
        while !relay.is_full() {
            relay.absorb(&enc.emit(&mut rng)).unwrap();
        }
        for _ in 0..10 {
            assert_eq!(
                relay.absorb(&enc.emit(&mut rng)).unwrap(),
                Absorption::Redundant
            );
        }
    }

    #[test]
    fn relay_with_partial_rank_still_helps_destination() {
        // Two relays each holding *different* partial information let the
        // destination assemble the full generation — the paper's two-path
        // scenario (Sec. 3.2).
        let (g, mut rng) = setup();
        let enc = Encoder::new(&g);
        let mut u = Recoder::new(g.id(), g.config());
        let mut v = Recoder::new(g.id(), g.config());
        for _ in 0..4 {
            u.absorb(&enc.emit(&mut rng)).unwrap();
            v.absorb(&enc.emit(&mut rng)).unwrap();
        }
        let mut dst = Decoder::new(g.id(), g.config());
        let mut safety = 0;
        while !dst.is_complete() && safety < 1000 {
            let _ = dst.absorb(&u.emit(&mut rng).unwrap());
            let _ = dst.absorb(&v.emit(&mut rng).unwrap());
            safety += 1;
        }
        assert!(
            dst.is_complete(),
            "u rank {} + v rank {} should cover",
            u.rank(),
            v.rank()
        );
        assert_eq!(dst.recover().unwrap(), g.to_bytes());
    }
}
