//! Selection between the baseline and accelerated GF(2^8) kernels.

use serde::{Deserialize, Serialize};

/// Which slice kernel the codec uses for its row operations.
///
/// The paper (Sec. 4) compares a traditional lookup-table implementation with
/// an accelerated loop-based one and reports a 3–5x speedup for the latter.
/// Benchmarks in `omnc-bench` reproduce that comparison by instantiating the
/// codec with each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Kernel {
    /// Byte-at-a-time log/exp table lookups (the paper's baseline).
    Table,
    /// Wide-word SWAR kernel processing 8 bytes per iteration (the portable
    /// analogue of the paper's SSE2 acceleration). The default.
    #[default]
    Wide,
    /// Per-call full product table: one load per byte after a 32-multiply
    /// setup; the fastest variant on many hosts.
    Product,
}

impl Kernel {
    /// Profiler span name attributing GF(2^8) work to this kernel
    /// variant (`gf256` stays dependency-free; cost is recorded at the
    /// dispatch call sites in the codec).
    #[inline]
    #[must_use]
    pub fn span_name(self) -> &'static str {
        match self {
            Kernel::Table => "gf256.table",
            Kernel::Wide => "gf256.wide",
            Kernel::Product => "gf256.product",
        }
    }

    /// `dst += c * src` with this kernel.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn mul_add_assign(self, dst: &mut [u8], src: &[u8], c: u8) {
        match self {
            Kernel::Table => gf256::slice::mul_add_assign(dst, src, c),
            Kernel::Wide => gf256::wide::mul_add_assign(dst, src, c),
            Kernel::Product => gf256::product::mul_add_assign(dst, src, c),
        }
    }

    /// `data *= c` with this kernel.
    #[inline]
    pub fn mul_assign(self, data: &mut [u8], c: u8) {
        match self {
            Kernel::Table => gf256::slice::mul_assign(data, c),
            Kernel::Wide => gf256::wide::mul_assign(data, c),
            Kernel::Product => gf256::product::mul_assign(data, c),
        }
    }

    /// `data /= c` with this kernel.
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero.
    #[inline]
    pub fn div_assign(self, data: &mut [u8], c: u8) {
        match self {
            Kernel::Table => gf256::slice::div_assign(data, c),
            Kernel::Wide => gf256::wide::div_assign(data, c),
            Kernel::Product => gf256::product::div_assign(data, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree() {
        let src: Vec<u8> = (0..100u8).collect();
        for kernel in [Kernel::Table, Kernel::Wide, Kernel::Product] {
            let mut dst = vec![0xa5u8; 100];
            kernel.mul_add_assign(&mut dst, &src, 0x1d);
            kernel.mul_assign(&mut dst, 0x80);
            kernel.div_assign(&mut dst, 0x80);
            let mut reference = vec![0xa5u8; 100];
            gf256::slice::mul_add_assign(&mut reference, &src, 0x1d);
            assert_eq!(dst, reference, "{kernel:?}");
        }
    }

    #[test]
    fn default_is_wide() {
        assert_eq!(Kernel::default(), Kernel::Wide);
    }
}
