//! Generations: the paper's groups of source data blocks (matrix `B`).

use serde::{Deserialize, Serialize};

use crate::error::RlncError;
use crate::packet::GenerationId;

/// Coding parameters of a generation: `n` blocks of `m` bytes.
///
/// The paper's evaluation uses 40 blocks of 1 KB ([`GenerationConfig::PAPER`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GenerationConfig {
    blocks: usize,
    block_size: usize,
}

impl GenerationConfig {
    /// The configuration used throughout the paper's evaluation (Sec. 5):
    /// each generation contains 40 data blocks of 1 KB.
    pub const PAPER: GenerationConfig = GenerationConfig {
        blocks: 40,
        block_size: 1024,
    };

    /// Creates a configuration with `blocks` blocks of `block_size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::EmptyGeneration`] if either dimension is zero.
    pub fn new(blocks: usize, block_size: usize) -> Result<Self, RlncError> {
        if blocks == 0 || block_size == 0 {
            return Err(RlncError::EmptyGeneration);
        }
        Ok(GenerationConfig { blocks, block_size })
    }

    /// Number of blocks `n` (rows of the paper's matrix `B`).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Bytes per block `m` (columns of `B`).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total source bytes held by one generation.
    pub fn payload_len(&self) -> usize {
        self.blocks * self.block_size
    }

    /// Bytes a coded packet of this generation occupies on the wire
    /// (coefficients + payload + header).
    pub fn packet_wire_len(&self) -> usize {
        16 + self.blocks + self.block_size
    }
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig::PAPER
    }
}

/// One generation of source data: the matrix `B` whose rows are the blocks.
///
/// Data shorter than the generation is zero-padded by
/// [`Generation::from_bytes_padded`]; exact-size construction via
/// [`Generation::from_bytes`] rejects mismatches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Generation {
    id: GenerationId,
    config: GenerationConfig,
    blocks: Vec<Vec<u8>>,
}

impl Generation {
    /// Splits `data` into the generation's blocks.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::PayloadSizeMismatch`] unless
    /// `data.len() == config.payload_len()`.
    pub fn from_bytes(
        id: GenerationId,
        config: GenerationConfig,
        data: &[u8],
    ) -> Result<Self, RlncError> {
        if data.len() != config.payload_len() {
            return Err(RlncError::PayloadSizeMismatch {
                expected: config.payload_len(),
                actual: data.len(),
            });
        }
        let blocks = data
            .chunks(config.block_size())
            .map(<[u8]>::to_vec)
            .collect();
        Ok(Generation { id, config, blocks })
    }

    /// Like [`Generation::from_bytes`] but zero-pads short data (the usual
    /// case for the last generation of a transfer).
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::PayloadSizeMismatch`] if `data` is *longer* than
    /// the generation.
    pub fn from_bytes_padded(
        id: GenerationId,
        config: GenerationConfig,
        data: &[u8],
    ) -> Result<Self, RlncError> {
        if data.len() > config.payload_len() {
            return Err(RlncError::PayloadSizeMismatch {
                expected: config.payload_len(),
                actual: data.len(),
            });
        }
        let mut padded = data.to_vec();
        padded.resize(config.payload_len(), 0);
        Generation::from_bytes(id, config, &padded)
    }

    /// The generation's identifier.
    pub fn id(&self) -> GenerationId {
        self.id
    }

    /// The coding parameters.
    pub fn config(&self) -> GenerationConfig {
        self.config
    }

    /// The source blocks (rows of `B`).
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Reassembles the generation's source bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.config.payload_len());
        for b in &self.blocks {
            out.extend_from_slice(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        assert_eq!(GenerationConfig::PAPER.blocks(), 40);
        assert_eq!(GenerationConfig::PAPER.block_size(), 1024);
        assert_eq!(GenerationConfig::PAPER.payload_len(), 40 * 1024);
        assert_eq!(GenerationConfig::default(), GenerationConfig::PAPER);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert_eq!(
            GenerationConfig::new(0, 10),
            Err(RlncError::EmptyGeneration)
        );
        assert_eq!(
            GenerationConfig::new(10, 0),
            Err(RlncError::EmptyGeneration)
        );
    }

    #[test]
    fn from_bytes_roundtrip() {
        let cfg = GenerationConfig::new(4, 8).unwrap();
        let data: Vec<u8> = (0..32).collect();
        let g = Generation::from_bytes(GenerationId::new(1), cfg, &data).unwrap();
        assert_eq!(g.blocks().len(), 4);
        assert_eq!(g.blocks()[1], (8..16).collect::<Vec<u8>>());
        assert_eq!(g.to_bytes(), data);
    }

    #[test]
    fn exact_size_enforced() {
        let cfg = GenerationConfig::new(4, 8).unwrap();
        let err = Generation::from_bytes(GenerationId::new(0), cfg, &[0; 31]).unwrap_err();
        assert_eq!(
            err,
            RlncError::PayloadSizeMismatch {
                expected: 32,
                actual: 31
            }
        );
    }

    #[test]
    fn padding_fills_with_zeros() {
        let cfg = GenerationConfig::new(2, 4).unwrap();
        let g = Generation::from_bytes_padded(GenerationId::new(0), cfg, &[1, 2, 3]).unwrap();
        assert_eq!(g.to_bytes(), vec![1, 2, 3, 0, 0, 0, 0, 0]);
        assert!(Generation::from_bytes_padded(GenerationId::new(0), cfg, &[0; 9]).is_err());
    }
}
