//! Progressive Gauss-Jordan decoder (Sec. 4, *Progressive decoding*).
//!
//! The decoding matrix `[R | X]` is kept in *reduced row-echelon form* at all
//! times, so that:
//!
//! * an incoming packet's innovation check is a single reduction pass — a
//!   non-innovative packet reduces to an all-zero row and is discarded;
//! * once `n` independent packets have arrived, the left part is the identity
//!   and the right part is exactly the original blocks: decoding finishes
//!   "on the fly" with no final batch inversion.

use telemetry::{Counter, Gauge, Histogram, Profiler, Registry, Series, Span};

use crate::error::RlncError;
use crate::generation::GenerationConfig;
use crate::kernel::Kernel;
use crate::packet::{CodedPacket, GenerationId};

/// Telemetry instruments for decoder progress, shared by every decoder the
/// handle is attached to (counters aggregate across generations).
///
/// Build once per session with [`DecoderMetrics::from_registry`] and attach
/// with [`Decoder::set_metrics`]. When no metrics are attached the decoder's
/// hot path is untouched — not even a clock read.
#[derive(Debug, Clone)]
pub struct DecoderMetrics {
    innovative: Counter,
    redundant: Counter,
    rank: Gauge,
    absorb_us: Histogram,
    decode_us: Histogram,
}

impl DecoderMetrics {
    /// Registers the decoder instruments on `registry`:
    /// `rlnc.decoder.innovative` / `rlnc.decoder.redundant` (packet
    /// counters), `rlnc.decoder.rank` (rank of the most recent absorb),
    /// `rlnc.decoder.absorb_us` (per-packet Gauss-Jordan latency) and
    /// `rlnc.decoder.decode_us` (first-packet-to-completion latency).
    pub fn from_registry(registry: &Registry) -> Self {
        DecoderMetrics {
            innovative: registry.counter("rlnc.decoder.innovative"),
            redundant: registry.counter("rlnc.decoder.redundant"),
            rank: registry.gauge("rlnc.decoder.rank"),
            absorb_us: registry.histogram(
                "rlnc.decoder.absorb_us",
                &[
                    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
                ],
            ),
            decode_us: registry.histogram(
                "rlnc.decoder.decode_us",
                &[10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7],
            ),
        }
    }
}

/// Outcome of feeding one packet to a [`Decoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Absorption {
    /// The packet increased the decoder's rank (the new rank is carried).
    Innovative {
        /// Rank after absorbing the packet.
        rank: usize,
    },
    /// The packet was linearly dependent on already-received ones and was
    /// discarded, exactly as relays and destinations do in the paper.
    Redundant,
}

impl Absorption {
    /// `true` if the packet was innovative.
    pub fn is_innovative(self) -> bool {
        matches!(self, Absorption::Innovative { .. })
    }

    /// The decoder rank after this absorption, given the rank it would
    /// report now (`current_rank`): innovative absorptions carry their
    /// post-absorption rank; redundant ones leave it unchanged.
    pub fn rank_after(self, current_rank: usize) -> usize {
        match self {
            Absorption::Innovative { rank } => rank,
            Absorption::Redundant => current_rank,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    coeff: Vec<u8>,
    payload: Vec<u8>,
    pivot: usize,
}

/// Progressive RLNC decoder for a single generation.
///
/// Also serves as the innovation filter inside relays (see
/// [`crate::Recoder`]): a relay accepts an incoming packet only if it is
/// innovative with respect to its buffer (Sec. 3.1).
///
/// # Examples
///
/// ```
/// use omnc_rlnc::{Decoder, Encoder, Generation, GenerationConfig, GenerationId};
/// use rand::SeedableRng;
///
/// let cfg = GenerationConfig::new(4, 8)?;
/// let data: Vec<u8> = (0..32).collect();
/// let g = Generation::from_bytes(GenerationId::new(0), cfg, &data)?;
/// let enc = Encoder::new(&g);
/// let mut dec = Decoder::new(GenerationId::new(0), cfg);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// while !dec.is_complete() {
///     dec.absorb(&enc.emit(&mut rng))?;
/// }
/// assert_eq!(dec.recover().unwrap(), data);
/// # Ok::<(), omnc_rlnc::RlncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Decoder {
    generation: GenerationId,
    config: GenerationConfig,
    kernel: Kernel,
    rows: Vec<Row>,
    /// `pivot_row[c]` is the index into `rows` whose pivot is column `c`.
    pivot_row: Vec<Option<usize>>,
    received: u64,
    redundant: u64,
    metrics: Option<DecoderMetrics>,
    profiler: Profiler,
    rank_series: Series,
    first_absorb: Option<Span>,
}

impl Decoder {
    /// Creates an empty decoder for `generation` with the default kernel.
    pub fn new(generation: GenerationId, config: GenerationConfig) -> Self {
        Decoder::with_kernel(generation, config, Kernel::default())
    }

    /// Creates an empty decoder with an explicit GF(2^8) kernel.
    pub fn with_kernel(generation: GenerationId, config: GenerationConfig, kernel: Kernel) -> Self {
        Decoder {
            generation,
            config,
            kernel,
            rows: Vec::with_capacity(config.blocks()),
            pivot_row: vec![None; config.blocks()],
            received: 0,
            redundant: 0,
            metrics: None,
            profiler: Profiler::disabled(),
            rank_series: Series::disabled(),
            first_absorb: None,
        }
    }

    /// Attaches telemetry instruments; every subsequent absorb updates the
    /// innovative/redundant counters and latency histograms.
    pub fn set_metrics(&mut self, metrics: DecoderMetrics) {
        self.metrics = Some(metrics);
    }

    /// Attaches a hierarchical profiler: each absorb opens a `decode`
    /// span with `eliminate` / `rank_update` children and per-kernel
    /// `gf256.*` leaves. A disabled profiler (the default) keeps the
    /// hot path branch-only.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The attached profiler (disabled unless [`Decoder::set_profiler`] was
    /// called). Lets wrappers like [`crate::Recoder`] attribute their own
    /// work to the same span tree.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Attaches a windowed timeline series for this decoder's rank
    /// progress (one series per generation, e.g.
    /// `omnc/k0/rank/g3`). The decoder has no clock of its own, so
    /// nothing records automatically — the owner stamps progress with
    /// [`Decoder::record_rank`] whenever its epoch axis advances. A
    /// disabled series (the default) keeps the decoder untouched.
    pub fn set_rank_series(&mut self, series: Series) {
        self.rank_series = series;
    }

    /// Samples the current rank into the attached rank series at `epoch`
    /// (simulated seconds at a destination, packets offered in a bench —
    /// any monotone axis the owner drives). One branch when no series is
    /// attached.
    pub fn record_rank(&self, epoch: f64) {
        self.rank_series.record(epoch, self.rank() as f64);
    }

    /// The generation this decoder collects.
    pub fn generation(&self) -> GenerationId {
        self.generation
    }

    /// The generation's coding parameters.
    pub fn config(&self) -> GenerationConfig {
        self.config
    }

    /// Current rank (number of innovative packets absorbed).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Remaining innovative packets needed to decode.
    pub fn missing(&self) -> usize {
        self.config.blocks() - self.rank()
    }

    /// `true` once `n` innovative packets have been gathered.
    pub fn is_complete(&self) -> bool {
        self.rank() == self.config.blocks()
    }

    /// Total packets offered to [`Decoder::absorb`] (innovative + redundant).
    pub fn packets_received(&self) -> u64 {
        self.received
    }

    /// Packets that were discarded as non-innovative.
    pub fn packets_redundant(&self) -> u64 {
        self.redundant
    }

    /// Feeds one packet through the Gauss-Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::GenerationMismatch`],
    /// [`RlncError::CoefficientLengthMismatch`] or
    /// [`RlncError::BlockSizeMismatch`] when the packet does not fit this
    /// decoder; such packets leave the decoder untouched.
    pub fn absorb(&mut self, packet: &CodedPacket) -> Result<Absorption, RlncError> {
        // Telemetry-free fast path: no clock reads, no counter updates.
        if self.metrics.is_none() && !self.profiler.is_enabled() {
            let disabled = Profiler::disabled();
            return self.absorb_inner(packet, &disabled);
        }
        let profiler = self.profiler.clone();
        let _decode = profiler.span("decode");
        // Wall-clock metrics only run when DecoderMetrics are attached, so
        // profiler-only (virtual clock) runs never read the wall clock.
        let started = self.metrics.as_ref().map(|_| Span::begin());
        if self.first_absorb.is_none() {
            self.first_absorb = started;
        }
        let result = self.absorb_inner(packet, &profiler);
        let complete = self.is_complete();
        let first = self.first_absorb;
        if let Some(metrics) = self.metrics.as_ref() {
            if let (Ok(outcome), Some(started)) = (&result, started) {
                metrics.absorb_us.observe(started.elapsed_us());
                match outcome {
                    Absorption::Innovative { rank } => {
                        metrics.innovative.inc();
                        metrics.rank.set(*rank as f64);
                        if complete {
                            if let Some(first) = first {
                                metrics.decode_us.observe(first.elapsed_us());
                            }
                        }
                    }
                    Absorption::Redundant => metrics.redundant.inc(),
                }
            }
        }
        result
    }

    fn absorb_inner(
        &mut self,
        packet: &CodedPacket,
        profiler: &Profiler,
    ) -> Result<Absorption, RlncError> {
        self.check(packet)?;
        self.received += 1;

        let mut coeff = packet.coefficients().to_vec();
        let mut payload = packet.payload().to_vec();

        // Forward reduction against existing pivots.
        let pivot = {
            let _eliminate = profiler.span("eliminate");
            for col in 0..self.config.blocks() {
                let c = coeff[col];
                if c == 0 {
                    continue;
                }
                if let Some(r) = self.pivot_row[col] {
                    let row = &self.rows[r];
                    let _kernel = profiler.span(self.kernel.span_name());
                    // coeff/payload -= c * row  (subtraction == addition in GF(2^8))
                    self.kernel.mul_add_assign(&mut coeff, &row.coeff, c);
                    self.kernel.mul_add_assign(&mut payload, &row.payload, c);
                    debug_assert_eq!(coeff[col], 0);
                }
            }

            // Find the new pivot, if any.
            let Some(pivot) = coeff.iter().position(|&c| c != 0) else {
                self.redundant += 1;
                return Ok(Absorption::Redundant);
            };
            pivot
        };

        let _rank_update = profiler.span("rank_update");

        // Normalize the new row.
        let lead = coeff[pivot];
        {
            let _kernel = profiler.span(self.kernel.span_name());
            self.kernel.div_assign(&mut coeff, lead);
            self.kernel.div_assign(&mut payload, lead);
        }

        // Back-substitute into existing rows to keep the matrix *reduced*.
        let new_index = self.rows.len();
        for row in &mut self.rows {
            let c = row.coeff[pivot];
            if c != 0 {
                let _kernel = profiler.span(self.kernel.span_name());
                self.kernel.mul_add_assign(&mut row.coeff, &coeff, c);
                self.kernel.mul_add_assign(&mut row.payload, &payload, c);
            }
        }

        self.rows.push(Row {
            coeff,
            payload,
            pivot,
        });
        self.pivot_row[pivot] = Some(new_index);
        Ok(Absorption::Innovative {
            rank: self.rows.len(),
        })
    }

    /// Returns `true` if `packet` would be innovative, without mutating the
    /// decoder. Costs one reduction pass over the coefficient vector only.
    pub fn would_be_innovative(&self, packet: &CodedPacket) -> bool {
        let _span = self.profiler.span("innovation_check");
        if self.check(packet).is_err() {
            return false;
        }
        let mut coeff = packet.coefficients().to_vec();
        for col in 0..self.config.blocks() {
            let c = coeff[col];
            if c == 0 {
                continue;
            }
            if let Some(r) = self.pivot_row[col] {
                self.kernel
                    .mul_add_assign(&mut coeff, &self.rows[r].coeff, c);
            }
        }
        coeff.iter().any(|&c| c != 0)
    }

    /// Blocks decoded so far, indexed by block number. Progressive decoding
    /// exposes a block as soon as its matrix row has collapsed to a unit
    /// vector — before the whole generation is complete.
    pub fn decoded_blocks(&self) -> Vec<Option<&[u8]>> {
        let n = self.config.blocks();
        let mut out = vec![None; n];
        for row in &self.rows {
            let is_unit = row.coeff[row.pivot] == 1
                && row
                    .coeff
                    .iter()
                    .enumerate()
                    .all(|(i, &c)| i == row.pivot || c == 0);
            if is_unit {
                out[row.pivot] = Some(row.payload.as_slice());
            }
        }
        out
    }

    /// Recovers the original source bytes once complete.
    ///
    /// Returns `None` while the decoder is still missing packets.
    pub fn recover(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = vec![0u8; self.config.payload_len()];
        for row in &self.rows {
            debug_assert_eq!(row.coeff[row.pivot], 1);
            // `pivot < generation_size` and the product is bounded by
            // `payload_len()`, which already fit in memory as `out`.
            let start = row.pivot * self.config.block_size(); // lint: allow(unchecked-arith)
            out[start..start + self.config.block_size()].copy_from_slice(&row.payload);
        }
        Some(out)
    }

    /// The stored (coefficient, payload) rows in reduced row-echelon form.
    /// Relays re-encode from exactly these rows.
    pub fn rows(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.rows
            .iter()
            .map(|r| (r.coeff.as_slice(), r.payload.as_slice()))
    }

    fn check(&self, packet: &CodedPacket) -> Result<(), RlncError> {
        if packet.generation() != self.generation {
            return Err(RlncError::GenerationMismatch {
                expected: self.generation,
                actual: packet.generation(),
            });
        }
        if packet.coefficients().len() != self.config.blocks() {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.config.blocks(),
                actual: packet.coefficients().len(),
            });
        }
        if packet.payload().len() != self.config.block_size() {
            return Err(RlncError::BlockSizeMismatch {
                expected: self.config.block_size(),
                actual: packet.payload().len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::generation::Generation;
    use rand::SeedableRng;

    fn setup(n: usize, m: usize, seed: u64) -> (Generation, rand::rngs::StdRng) {
        let cfg = GenerationConfig::new(n, m).unwrap();
        let rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..cfg.payload_len()).map(|i| (i * 31 + 7) as u8).collect();
        (
            Generation::from_bytes(GenerationId::new(0), cfg, &data).unwrap(),
            rng.clone(),
        )
    }

    #[test]
    fn decodes_after_exactly_n_innovative_packets() {
        let (g, mut rng) = setup(10, 32, 1);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(g.id(), g.config());
        let mut innovative = 0;
        while !dec.is_complete() {
            if dec.absorb(&enc.emit(&mut rng)).unwrap().is_innovative() {
                innovative += 1;
            }
        }
        assert_eq!(innovative, 10);
        assert_eq!(dec.recover().unwrap(), g.to_bytes());
    }

    #[test]
    fn rank_never_decreases_and_redundant_changes_nothing() {
        let (g, mut rng) = setup(6, 8, 2);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(g.id(), g.config());
        // Absorb three packets, replay the same three: all replays redundant.
        let packets: Vec<_> = (0..3).map(|_| enc.emit(&mut rng)).collect();
        for p in &packets {
            dec.absorb(p).unwrap();
        }
        let rank = dec.rank();
        for p in &packets {
            assert_eq!(dec.absorb(p).unwrap(), Absorption::Redundant);
            assert_eq!(dec.rank(), rank);
        }
        assert_eq!(dec.packets_redundant(), 3);
        assert_eq!(dec.packets_received(), 6);
    }

    #[test]
    fn metrics_track_innovative_and_redundant_counts() {
        let (g, mut rng) = setup(8, 16, 4);
        let enc = Encoder::new(&g);
        let registry = Registry::new();
        let mut dec = Decoder::new(g.id(), g.config());
        dec.set_metrics(DecoderMetrics::from_registry(&registry));
        // Absorb two packets twice each (replays are redundant), then fresh
        // packets until the generation decodes.
        let replayed: Vec<_> = (0..2).map(|_| enc.emit(&mut rng)).collect();
        for p in replayed.iter().chain(replayed.iter()) {
            dec.absorb(p).unwrap();
        }
        while !dec.is_complete() {
            dec.absorb(&enc.emit(&mut rng)).unwrap();
        }
        let snapshot = registry.snapshot();
        let find = |name: &str| {
            snapshot
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} not registered"))
        };
        assert_eq!(find("rlnc.decoder.innovative").value, 8.0);
        assert_eq!(
            find("rlnc.decoder.redundant").value,
            dec.packets_redundant() as f64
        );
        assert!(find("rlnc.decoder.redundant").value >= 2.0);
        assert_eq!(find("rlnc.decoder.rank").value, 8.0);
        let absorb_us = find("rlnc.decoder.absorb_us");
        assert_eq!(absorb_us.count, dec.packets_received());
        let decode_us = find("rlnc.decoder.decode_us");
        assert_eq!(decode_us.count, 1);
        assert_eq!(dec.recover().unwrap(), g.to_bytes());
    }

    #[test]
    fn rank_series_tracks_progress_per_generation() {
        let (g, mut rng) = setup(8, 16, 6);
        let enc = Encoder::new(&g);
        let ts = telemetry::TimeSeries::enabled(1.0, 32);
        let mut dec = Decoder::new(g.id(), g.config());
        dec.set_rank_series(ts.series("rank/g0"));
        while !dec.is_complete() {
            dec.absorb(&enc.emit(&mut rng)).unwrap();
            dec.record_rank(dec.packets_received() as f64);
        }
        let snap = ts.snapshot();
        let series = snap.series("rank/g0").expect("rank series exists");
        assert_eq!(series.total_count(), dec.packets_received());
        let final_max = series
            .buckets
            .iter()
            .map(|b| b.max)
            .fold(f64::MIN, f64::max);
        assert_eq!(final_max, 8.0, "rank reaches the generation size");
        // Rank is monotone, so bucket maxima are non-decreasing in time.
        let maxima: Vec<f64> = series.buckets.iter().map(|b| b.max).collect();
        assert!(maxima.windows(2).all(|w| w[0] <= w[1]));
        // A decoder without a series attached records nothing and absorbs
        // identically.
        let plain = Decoder::new(g.id(), g.config());
        plain.record_rank(1.0);
        assert_eq!(plain.rank(), 0);
    }

    #[test]
    fn detached_decoder_behaves_identically() {
        let (g, mut rng) = setup(6, 8, 5);
        let enc = Encoder::new(&g);
        let registry = Registry::new();
        let mut plain = Decoder::new(g.id(), g.config());
        let mut instrumented = Decoder::new(g.id(), g.config());
        instrumented.set_metrics(DecoderMetrics::from_registry(&registry));
        for _ in 0..12 {
            let p = enc.emit(&mut rng);
            assert_eq!(plain.absorb(&p).unwrap(), instrumented.absorb(&p).unwrap());
        }
        assert_eq!(plain.recover().unwrap(), instrumented.recover().unwrap());
    }

    #[test]
    fn profiled_decoder_matches_plain_and_attributes_kernel_time() {
        let (g, mut rng) = setup(8, 16, 11);
        let enc = Encoder::new(&g);
        let mut plain = Decoder::new(g.id(), g.config());
        let mut profiled = Decoder::new(g.id(), g.config());
        let profiler = Profiler::virtual_clock();
        profiled.set_profiler(profiler.clone());
        while !plain.is_complete() {
            let p = enc.emit(&mut rng);
            assert_eq!(plain.absorb(&p).unwrap(), profiled.absorb(&p).unwrap());
        }
        assert_eq!(plain.recover(), profiled.recover());
        let report = profiler.report();
        let decode = report.span("decode").expect("decode span");
        assert_eq!(decode.calls, plain.packets_received());
        let eliminate = report.span("decode;eliminate").expect("eliminate span");
        let rank = report.span("decode;rank_update").expect("rank_update span");
        assert!(report.span("decode;rank_update;gf256.wide").is_some());
        // Parent self time = total − children, and children fit inside.
        assert!(eliminate.total_ticks + rank.total_ticks <= decode.total_ticks);
        assert_eq!(
            decode.self_ticks,
            decode.total_ticks - eliminate.total_ticks - rank.total_ticks
        );
    }

    #[test]
    fn would_be_innovative_is_consistent_with_absorb() {
        let (g, mut rng) = setup(5, 4, 3);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(g.id(), g.config());
        for _ in 0..20 {
            let p = enc.emit(&mut rng);
            let predicted = dec.would_be_innovative(&p);
            let got = dec.absorb(&p).unwrap().is_innovative();
            assert_eq!(predicted, got);
        }
    }

    #[test]
    fn progressive_blocks_appear_before_completion() {
        let (g, _) = setup(4, 4, 4);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(g.id(), g.config());
        // Feed unit rows for blocks 2 and 0: those exact blocks decode early.
        for i in [2usize, 0] {
            let mut c = vec![0u8; 4];
            c[i] = 1;
            dec.absorb(&enc.emit_with_coefficients(&c)).unwrap();
        }
        let blocks = dec.decoded_blocks();
        assert!(blocks[0].is_some() && blocks[2].is_some());
        assert!(blocks[1].is_none() && blocks[3].is_none());
        assert_eq!(blocks[2].unwrap(), &g.blocks()[2][..]);
        assert!(dec.recover().is_none());
    }

    #[test]
    fn mismatched_packets_are_rejected_without_effect() {
        let (g, mut rng) = setup(4, 4, 5);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(GenerationId::new(1), g.config());
        let p = enc.emit(&mut rng);
        assert!(matches!(
            dec.absorb(&p),
            Err(RlncError::GenerationMismatch { .. })
        ));
        assert_eq!(dec.packets_received(), 0);
        assert_eq!(dec.rank(), 0);

        let mut dec2 = Decoder::new(g.id(), GenerationConfig::new(5, 4).unwrap());
        assert!(matches!(
            dec2.absorb(&p),
            Err(RlncError::CoefficientLengthMismatch { .. })
        ));
        let mut dec3 = Decoder::new(g.id(), GenerationConfig::new(4, 5).unwrap());
        assert!(matches!(
            dec3.absorb(&p),
            Err(RlncError::BlockSizeMismatch { .. })
        ));
    }

    #[test]
    fn matrix_stays_in_reduced_row_echelon_form() {
        let (g, mut rng) = setup(8, 4, 6);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(g.id(), g.config());
        while !dec.is_complete() {
            dec.absorb(&enc.emit(&mut rng)).unwrap();
            for (coeff, _) in dec.rows() {
                let pivot = coeff.iter().position(|&c| c != 0).unwrap();
                assert_eq!(coeff[pivot], 1, "pivot normalized");
                // Reduced: the pivot column is zero in every *other* row.
                let others = dec
                    .rows()
                    .filter(|(c, _)| c.as_ptr() != coeff.as_ptr())
                    .filter(|(c, _)| c[pivot] != 0)
                    .count();
                assert_eq!(others, 0, "pivot column eliminated elsewhere");
            }
        }
    }

    #[test]
    fn completion_yields_identity_matrix() {
        let (g, mut rng) = setup(6, 4, 7);
        let enc = Encoder::new(&g);
        let mut dec = Decoder::new(g.id(), g.config());
        while !dec.is_complete() {
            dec.absorb(&enc.emit(&mut rng)).unwrap();
        }
        // Left part of [R | X] is the identity (Sec. 4).
        let mut seen = [false; 6];
        for (coeff, _) in dec.rows() {
            let pivot = coeff.iter().position(|&c| c != 0).unwrap();
            assert!(coeff
                .iter()
                .enumerate()
                .all(|(i, &c)| (i == pivot) == (c != 0)));
            seen[pivot] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
