//! Systematic encoding: send the native blocks once before switching to
//! random combinations.
//!
//! Practical RLNC deployments (including the published MORE implementation)
//! often send each source block uncoded first — on loss-free paths the
//! decoder then performs no elimination work at all, and under loss only
//! the missing blocks need coded repair. The paper's OMNC uses pure random
//! coding (every packet is a fresh combination); this encoder exists for
//! the ablation benchmarks that quantify what systematic pre-coding buys.

use rand::Rng;

use crate::encoder::Encoder;
use crate::generation::Generation;
use crate::kernel::Kernel;
use crate::packet::CodedPacket;

/// An encoder that emits each native block once, then random combinations.
///
/// # Examples
///
/// ```
/// use omnc_rlnc::{Decoder, Generation, GenerationConfig, GenerationId, SystematicEncoder};
/// use rand::SeedableRng;
///
/// let cfg = GenerationConfig::new(4, 8)?;
/// let data: Vec<u8> = (0..32).collect();
/// let g = Generation::from_bytes(GenerationId::new(0), cfg, &data)?;
/// let mut enc = SystematicEncoder::new(&g);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
///
/// // With no loss, the first n packets decode with zero elimination work.
/// let mut dec = Decoder::new(GenerationId::new(0), cfg);
/// for _ in 0..4 {
///     dec.absorb(&enc.emit(&mut rng))?;
/// }
/// assert_eq!(dec.recover().unwrap(), data);
/// # Ok::<(), omnc_rlnc::RlncError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystematicEncoder<'a> {
    inner: Encoder<'a>,
    next_native: usize,
}

impl<'a> SystematicEncoder<'a> {
    /// Creates a systematic encoder with the default kernel.
    pub fn new(generation: &'a Generation) -> Self {
        SystematicEncoder {
            inner: Encoder::new(generation),
            next_native: 0,
        }
    }

    /// Creates a systematic encoder with an explicit kernel.
    pub fn with_kernel(generation: &'a Generation, kernel: Kernel) -> Self {
        SystematicEncoder {
            inner: Encoder::with_kernel(generation, kernel),
            next_native: 0,
        }
    }

    /// `true` while native (uncoded) blocks remain to be sent.
    pub fn in_systematic_phase(&self) -> bool {
        self.next_native < self.inner.generation().config().blocks()
    }

    /// Emits the next packet: the next native block during the systematic
    /// phase, then fresh random combinations forever after.
    pub fn emit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> CodedPacket {
        let n = self.inner.generation().config().blocks();
        if self.next_native < n {
            let mut coeffs = vec![0u8; n];
            coeffs[self.next_native] = 1;
            self.next_native += 1;
            self.inner.emit_with_coefficients(&coeffs)
        } else {
            self.inner.emit(rng)
        }
    }

    /// Restarts the systematic phase (e.g. for a retransmission round).
    pub fn reset(&mut self) {
        self.next_native = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::generation::GenerationConfig;
    use crate::packet::GenerationId;
    use rand::SeedableRng;

    fn setup() -> Generation {
        let cfg = GenerationConfig::new(6, 16).unwrap();
        let data: Vec<u8> = (0..cfg.payload_len()).map(|i| (i * 5 + 1) as u8).collect();
        Generation::from_bytes(GenerationId::new(0), cfg, &data).unwrap()
    }

    #[test]
    fn first_n_packets_are_the_native_blocks() {
        let g = setup();
        let mut enc = SystematicEncoder::new(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for i in 0..6 {
            assert!(enc.in_systematic_phase());
            let p = enc.emit(&mut rng);
            assert_eq!(p.payload(), &g.blocks()[i][..], "block {i}");
            let mut expect = [0u8; 6];
            expect[i] = 1;
            assert_eq!(p.coefficients(), &expect[..]);
        }
        assert!(!enc.in_systematic_phase());
        // Post-systematic packets are random combinations.
        let p = enc.emit(&mut rng);
        assert!(p.coefficients().iter().filter(|&&c| c != 0).count() > 1);
    }

    #[test]
    fn decodes_under_loss_with_coded_repair() {
        let g = setup();
        let mut enc = SystematicEncoder::new(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut dec = Decoder::new(g.id(), g.config());
        // Lose half the systematic packets.
        for i in 0..6 {
            let p = enc.emit(&mut rng);
            if i % 2 == 0 {
                dec.absorb(&p).unwrap();
            }
        }
        assert_eq!(dec.rank(), 3);
        // Coded repair packets fill the gaps.
        while !dec.is_complete() {
            dec.absorb(&enc.emit(&mut rng)).unwrap();
        }
        assert_eq!(dec.recover().unwrap(), g.to_bytes());
    }

    #[test]
    fn reset_replays_the_systematic_phase() {
        let g = setup();
        let mut enc = SystematicEncoder::new(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let first = enc.emit(&mut rng);
        for _ in 0..7 {
            let _ = enc.emit(&mut rng);
        }
        enc.reset();
        assert_eq!(enc.emit(&mut rng), first, "native block 0 again");
    }
}
