//! Evaluation metrics and summary statistics (throughput gain, CDFs).

use serde::{Deserialize, Serialize};

/// Throughput gain of a protocol over the ETX-routing baseline on the same
/// session — the comparison metric of Fig. 2.
///
/// # Panics
///
/// Panics if `etx_throughput` is not positive.
pub fn throughput_gain(protocol_throughput: f64, etx_throughput: f64) -> f64 {
    assert!(etx_throughput > 0.0, "baseline throughput must be positive");
    protocol_throughput / etx_throughput
}

/// An empirical CDF over session-level samples, as plotted throughout the
/// paper's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from raw samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sample median.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Evenly spaced `(x, P(X ≤ x))` points for plotting/printing.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if lo == hi {
            // Degenerate support: every sample is identical, so the whole
            // curve is the single point (lo, 1) rather than `points + 1`
            // copies of it.
            return vec![(lo, 1.0)];
        }
        (0..=points)
            .map(|k| {
                let x = lo + (hi - lo) * k as f64 / points as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::new(iter.into_iter().collect())
    }
}

/// Renders a CDF as a plain-text table, the form the bench binaries print.
pub fn render_cdf(name: &str, cdf: &Cdf, points: usize) -> String {
    let mut out = format!("# CDF: {name} (n={}, mean={:.3})\n", cdf.len(), cdf.mean());
    for (x, p) in cdf.curve(points) {
        out.push_str(&format!("{x:>12.4}  {p:>6.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_is_a_ratio() {
        assert_eq!(throughput_gain(245.0, 100.0), 2.45);
    }

    #[test]
    #[should_panic(expected = "baseline throughput must be positive")]
    fn zero_baseline_panics() {
        let _ = throughput_gain(1.0, 0.0);
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.mean(), 2.0);
        assert_eq!(cdf.median(), 2.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
        assert_eq!(cdf.quantile(0.0 + 1e-9), 1.0);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf: Cdf = (0..100).map(|i| (i * 37 % 100) as f64).collect();
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 21);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn degenerate_curve_collapses_to_one_point() {
        let cdf = Cdf::new(vec![4.2; 7]);
        assert_eq!(cdf.curve(20), vec![(4.2, 1.0)]);
        // A single sample is the same degenerate case.
        assert_eq!(Cdf::new(vec![1.5]).curve(5), vec![(1.5, 1.0)]);
    }

    #[test]
    fn render_contains_header_and_rows() {
        let cdf = Cdf::new(vec![1.0, 2.0]);
        let text = render_cdf("test", &cdf, 2);
        assert!(text.contains("# CDF: test"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_samples_panic() {
        let _ = Cdf::new(vec![1.0, f64::NAN]);
    }
}
