//! Experiment scenarios: the paper's evaluation setups plus reduced-scale
//! variants for fast runs.

use net_topo::deploy::{random_session, random_sessions, Deployment};
use net_topo::graph::{NodeId, Topology};
use net_topo::phy::Phy;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::session::SessionConfig;

/// Link-quality regime of the deployment (Fig. 2 left vs right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quality {
    /// Intermediate link qualities, average reception probability ≈ 0.58.
    Lossy,
    /// Increased transmission power, average ≈ 0.91.
    High,
}

/// A complete experiment scenario: deployment parameters plus per-session
/// configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of deployed nodes (paper: 300).
    pub nodes: usize,
    /// Deployment density: average neighbors within range (paper: 6).
    pub density: f64,
    /// Link-quality regime.
    pub quality: Quality,
    /// Number of unicast sessions to run (paper: 300).
    pub sessions: usize,
    /// Hop-count constraint on session endpoints (paper: 4–10).
    pub hops: (usize, usize),
    /// Per-session configuration.
    pub session: SessionConfig,
    /// Master seed; every deployment/session derives from it.
    pub seed: u64,
}

impl Scenario {
    /// The paper's full-scale lossy-network experiment (Figs. 2–4): 300
    /// nodes, density 6, 300 sessions of 800 seconds.
    pub fn paper(quality: Quality) -> Self {
        Scenario {
            nodes: 300,
            density: 6.0,
            quality,
            sessions: 300,
            hops: (4, 10),
            session: SessionConfig::paper(),
            seed: 2008,
        }
    }

    /// Reduced-scale variant preserving every ratio: enough sessions for
    /// stable CDFs, minutes instead of hours of host time.
    pub fn reduced(quality: Quality) -> Self {
        Scenario {
            nodes: 120,
            density: 6.0,
            quality,
            sessions: 40,
            hops: (4, 10),
            session: SessionConfig::reduced(),
            seed: 2008,
        }
    }

    /// A tiny scenario for unit tests and the quickstart example (full
    /// payload coding, verification on).
    pub fn small_test() -> Self {
        Scenario {
            nodes: 40,
            density: 6.0,
            quality: Quality::Lossy,
            sessions: 3,
            hops: (2, 6),
            session: SessionConfig::tiny(),
            seed: 7,
        }
    }

    /// The PHY model of this scenario's quality regime.
    pub fn phy(&self) -> Phy {
        match self.quality {
            Quality::Lossy => Phy::paper_lossy(),
            Quality::High => Phy::paper_high_quality(),
        }
    }

    /// Builds the deployment topology (deterministic in the scenario seed).
    pub fn build_topology(&self) -> Topology {
        // The *placement* is fixed by the lossy-regime PHY so that the
        // high-power experiment reuses the identical topology (Sec. 5).
        let dep = Deployment::random(self.nodes, self.density, &Phy::paper_lossy(), self.seed);
        dep.topology_with_phy(&self.phy())
    }

    /// Draws the `k`-th session: topology plus a source/destination pair
    /// satisfying the hop constraint.
    ///
    /// # Panics
    ///
    /// Panics if no valid pair exists after many tries (practically
    /// impossible at the configured scales).
    pub fn build_session(&self, k: u64) -> (Topology, NodeId, NodeId) {
        let topo = self.build_topology();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ (k.wrapping_mul(0x51ab)));
        let (s, d) = random_session(&topo, &mut rng, self.hops, 50_000)
            .expect("a connected density-6 deployment always has mid-length sessions");
        (topo, s, d)
    }

    /// Builds the shared topology once and draws *all* session endpoint
    /// pairs for a multi-session workload. Each pair uses the same
    /// derivation as [`Scenario::build_session`], so session `k` of the
    /// concurrent workload has exactly the endpoints its single-session
    /// cell would — the two runners stay comparable.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Scenario::build_session`].
    pub fn build_multi(&self) -> (Topology, Vec<(NodeId, NodeId)>) {
        let topo = self.build_topology();
        let endpoints = random_sessions(&topo, self.sessions, self.hops, 50_000, |k| {
            self.seed ^ (k.wrapping_mul(0x51ab))
        })
        .expect("a connected density-6 deployment always has mid-length sessions");
        (topo, endpoints)
    }

    /// The simulation seed of session `k` (what [`Scenario::session_seeds`]
    /// yields at position `k`).
    pub fn session_seed(&self, k: u64) -> u64 {
        self.seed.wrapping_add(k.wrapping_mul(7919))
    }

    /// Session seeds for iteration.
    pub fn session_seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.sessions as u64).map(move |k| self.session_seed(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_the_paper() {
        let s = Scenario::paper(Quality::Lossy);
        assert_eq!(s.nodes, 300);
        assert_eq!(s.density, 6.0);
        assert_eq!(s.sessions, 300);
        assert_eq!(s.hops, (4, 10));
        assert_eq!(s.session.duration, 800.0);
    }

    #[test]
    fn quality_regimes_share_the_topology_structure() {
        let lossy = Scenario {
            nodes: 50,
            ..Scenario::small_test()
        };
        let mut high = lossy.clone();
        high.quality = Quality::High;
        let tl = lossy.build_topology();
        let th = high.build_topology();
        // High power may revive shadow-blocked links but never loses one.
        assert!(th.link_count() >= tl.link_count());
        assert!(th.avg_link_quality() > tl.avg_link_quality());
    }

    #[test]
    fn sessions_respect_hop_bounds() {
        let s = Scenario::small_test();
        let (topo, src, dst) = s.build_session(0);
        let sp = net_topo::dijkstra::shortest_paths(&topo, src, net_topo::etx::link_cost);
        let hops = sp.hops_to(dst).unwrap();
        assert!((s.hops.0..=s.hops.1).contains(&hops), "hops {hops}");
    }

    #[test]
    fn lossy_calibration_on_real_deployments() {
        // The realized average link quality of a deployment should be near
        // the paper's 0.58 (lossy) and 0.91 (high power).
        let lossy = Scenario::reduced(Quality::Lossy).build_topology();
        let high = Scenario::reduced(Quality::High).build_topology();
        let ql = lossy.avg_link_quality();
        let qh = high.avg_link_quality();
        assert!((0.52..=0.66).contains(&ql), "lossy avg {ql}");
        assert!((0.85..=0.96).contains(&qh), "high avg {qh}");
    }

    #[test]
    fn build_multi_matches_per_session_draws() {
        let s = Scenario::small_test();
        let (topo, endpoints) = s.build_multi();
        assert_eq!(endpoints.len(), s.sessions);
        for (k, &(src, dst)) in endpoints.iter().enumerate() {
            let (single_topo, ss, sd) = s.build_session(k as u64);
            assert_eq!(topo, single_topo);
            assert_eq!((src, dst), (ss, sd), "session {k}");
        }
    }

    #[test]
    fn session_seeds_are_distinct() {
        let s = Scenario::small_test();
        let seeds: Vec<u64> = s.session_seeds().collect();
        assert_eq!(seeds.len(), s.sessions);
        for (k, &seed) in seeds.iter().enumerate() {
            assert_eq!(seed, s.session_seed(k as u64));
        }
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
