//! Unicast session configuration and the shared session ledger.

use std::sync::Arc;

use parking_lot::Mutex;
use rlnc::{GenerationConfig, GenerationId};
use serde::{Deserialize, Serialize};

/// Configuration of one long-lived unicast session.
///
/// The paper's evaluation (Sec. 5) uses UDP CBR sessions at half the channel
/// capacity, generations of 40 × 1 KB blocks, and 800-second sessions; the
/// defaults below are a reduced-scale version with identical ratios so that
/// the whole benchmark suite runs quickly (pass `--full` to the bench
/// binaries for paper scale).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// MAC channel capacity in bytes/second (paper: 1e5).
    pub capacity: f64,
    /// Offered CBR load in bytes/second (paper: half the capacity).
    pub cbr_rate: f64,
    /// Blocks per generation (paper: 40).
    pub generation_blocks: usize,
    /// *Charged* bytes per block on the wire (paper: 1024). The simulated
    /// payload may be smaller (see `payload_block_size`) — throughput and
    /// queue dynamics depend only on the charged size.
    pub wire_block_size: usize,
    /// Bytes of payload actually carried and coded per block. Setting this
    /// to 1 runs the full coding pipeline over the coefficient vectors while
    /// skipping bulk payload arithmetic — bit-exact protocol behaviour at a
    /// fraction of the host CPU cost. Tests and examples use the full size.
    pub payload_block_size: usize,
    /// Session duration in simulated seconds (paper: 800).
    pub duration: f64,
    /// Maximum MAC-level retransmissions per hop for ETX routing before a
    /// block is dropped (reliability is near-total well below this).
    pub max_retransmissions: u32,
}

impl SessionConfig {
    /// The paper's full-scale parameters.
    pub fn paper() -> Self {
        SessionConfig {
            capacity: 1e5,
            cbr_rate: 5e4,
            generation_blocks: 40,
            wire_block_size: 1024,
            payload_block_size: 1,
            duration: 800.0,
            max_retransmissions: 100,
        }
    }

    /// Reduced-scale defaults for fast runs: same ratios, ~1/10 the events.
    pub fn reduced() -> Self {
        SessionConfig {
            capacity: 2e4,
            duration: 120.0,
            cbr_rate: 1e4,
            ..SessionConfig::paper()
        }
    }

    /// A tiny configuration for unit tests (full payload coding).
    pub fn tiny() -> Self {
        SessionConfig {
            capacity: 1e4,
            cbr_rate: 5e3,
            generation_blocks: 8,
            wire_block_size: 128,
            payload_block_size: 128,
            duration: 60.0,
            max_retransmissions: 100,
        }
    }

    /// The RLNC generation parameters (blocks × payload size).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero blocks or block size.
    pub fn generation_config(&self) -> GenerationConfig {
        GenerationConfig::new(self.generation_blocks, self.payload_block_size)
            .expect("session configs have positive dimensions")
    }

    /// Wire bytes of one coded packet: header + coefficient vector +
    /// charged block size.
    pub fn coded_wire_len(&self) -> usize {
        16 + self.generation_blocks + self.wire_block_size
    }

    /// Wire bytes of one uncoded block (ETX routing): header + block.
    pub fn block_wire_len(&self) -> usize {
        16 + self.wire_block_size
    }

    /// Application bytes represented by one decoded generation (charged
    /// size — what throughput is measured in).
    pub fn generation_app_bytes(&self) -> f64 {
        (self.generation_blocks * self.wire_block_size) as f64
    }

    /// Time at which the CBR application has produced generation `g`
    /// (generations stream at `cbr_rate`).
    pub fn generation_available_at(&self, g: GenerationId) -> f64 {
        self.generation_app_bytes() * g.as_u64() as f64 / self.cbr_rate
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::reduced()
    }
}

/// Builder for [`SessionConfig`] (start from a preset, adjust, validate).
///
/// # Examples
///
/// ```
/// use omnc::session::SessionConfig;
///
/// let cfg = SessionConfig::builder()
///     .capacity(5e4)
///     .cbr_fraction(0.5)
///     .generation(40, 1024)
///     .full_payload()
///     .duration(60.0)
///     .build();
/// assert_eq!(cfg.cbr_rate, 2.5e4);
/// assert_eq!(cfg.payload_block_size, 1024);
/// ```
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    inner: SessionConfig,
}

impl SessionConfig {
    /// Starts a builder from the reduced-scale defaults.
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder {
            inner: SessionConfig::reduced(),
        }
    }
}

impl SessionConfigBuilder {
    /// Sets the MAC channel capacity (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics unless positive and finite.
    pub fn capacity(mut self, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        self.inner.capacity = capacity;
        self
    }

    /// Sets the offered CBR load as a fraction of the capacity (the paper
    /// uses 0.5).
    ///
    /// # Panics
    ///
    /// Panics unless the fraction is in `(0, 1]`.
    pub fn cbr_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
            "cbr fraction must be in (0, 1]"
        );
        self.inner.cbr_rate = self.inner.capacity * fraction;
        self
    }

    /// Sets generation geometry: `blocks` of `wire_block_size` charged
    /// bytes (payload stays coefficient-only unless
    /// [`SessionConfigBuilder::full_payload`] is called after this).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn generation(mut self, blocks: usize, wire_block_size: usize) -> Self {
        assert!(
            blocks > 0 && wire_block_size > 0,
            "generation dimensions must be positive"
        );
        self.inner.generation_blocks = blocks;
        self.inner.wire_block_size = wire_block_size;
        self.inner.payload_block_size = self.inner.payload_block_size.min(wire_block_size);
        self
    }

    /// Carries (and verifies) real payload bytes equal to the wire size.
    pub fn full_payload(mut self) -> Self {
        self.inner.payload_block_size = self.inner.wire_block_size;
        self
    }

    /// Sets the session duration in simulated seconds.
    ///
    /// # Panics
    ///
    /// Panics unless positive and finite.
    pub fn duration(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "duration must be positive"
        );
        self.inner.duration = seconds;
        self
    }

    /// Sets the ETX per-hop retransmission budget.
    pub fn max_retransmissions(mut self, budget: u32) -> Self {
        self.inner.max_retransmissions = budget;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SessionConfig {
        self.inner
    }
}

/// Session state shared between the source and destination behaviors.
///
/// The paper sends the "successfully decoded" ACK back over best-path
/// routing and treats it as cheap and reliable. The reproduction models the
/// ACK as out-of-band and instantaneous through this shared ledger: the
/// destination records completion, the source observes it on its next
/// transmission opportunity and moves to the next generation. Intermediate
/// nodes likewise learn of expiry when they next act, matching the paper's
/// rule that "either an ACK or a coded packet with a higher generation ID"
/// expires old state.
#[derive(Debug, Default)]
pub struct SessionLedger {
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// Lowest generation not yet decoded by the destination.
    active: GenerationId,
    /// Completion times (seconds) of decoded generations, in order.
    completions: Vec<f64>,
    /// Innovative packets the destination absorbed in total.
    innovative: u64,
    /// Redundant packets the destination discarded.
    redundant: u64,
}

/// Shared handle to a [`SessionLedger`].
pub type SessionShared = Arc<SessionLedger>;

impl SessionLedger {
    /// Creates a fresh shared ledger starting at generation 0.
    pub fn shared() -> SessionShared {
        Arc::new(SessionLedger::default())
    }

    /// The generation currently in flight (first not yet decoded).
    pub fn active_generation(&self) -> GenerationId {
        self.inner.lock().active
    }

    /// Destination: mark `generation` decoded at time `now`. Idempotent for
    /// stale generations.
    pub fn complete_generation(&self, generation: GenerationId, now: f64) {
        let mut inner = self.inner.lock();
        if generation == inner.active {
            inner.active = generation.next();
            inner.completions.push(now);
        }
    }

    /// Destination: account an absorbed packet.
    pub fn record_packet(&self, innovative: bool) {
        let mut inner = self.inner.lock();
        if innovative {
            inner.innovative += 1;
        } else {
            inner.redundant += 1;
        }
    }

    /// Number of fully decoded generations.
    pub fn generations_decoded(&self) -> u64 {
        self.inner.lock().completions.len() as u64
    }

    /// Completion times of decoded generations.
    pub fn completion_times(&self) -> Vec<f64> {
        self.inner.lock().completions.clone()
    }

    /// (innovative, redundant) packet counts at the destination.
    pub fn packet_counts(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.innovative, inner.redundant)
    }

    /// Application throughput in bytes/second over `duration` seconds given
    /// the per-generation size (the paper averages over the entire
    /// session).
    pub fn throughput(&self, generation_bytes: f64, duration: f64) -> f64 {
        assert!(duration > 0.0, "duration must be positive");
        self.generations_decoded() as f64 * generation_bytes / duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_paper() {
        let c = SessionConfig::paper();
        assert_eq!(c.capacity, 1e5);
        assert_eq!(c.cbr_rate, 5e4);
        assert_eq!(c.generation_blocks, 40);
        assert_eq!(c.wire_block_size, 1024);
        assert_eq!(c.duration, 800.0);
        assert_eq!(c.coded_wire_len(), 16 + 40 + 1024);
        assert_eq!(c.generation_app_bytes(), 40.0 * 1024.0);
    }

    #[test]
    fn generation_availability_follows_cbr() {
        let c = SessionConfig::paper();
        assert_eq!(c.generation_available_at(GenerationId::new(0)), 0.0);
        // 40 KB at 50 kB/s = 0.8192 s per generation.
        let t1 = c.generation_available_at(GenerationId::new(1));
        assert!((t1 - 40.0 * 1024.0 / 5e4).abs() < 1e-12);
    }

    #[test]
    fn ledger_advances_only_on_active_generation() {
        let ledger = SessionLedger::shared();
        assert_eq!(ledger.active_generation(), GenerationId::new(0));
        ledger.complete_generation(GenerationId::new(1), 5.0); // stale/future: ignored
        assert_eq!(ledger.generations_decoded(), 0);
        ledger.complete_generation(GenerationId::new(0), 6.0);
        assert_eq!(ledger.active_generation(), GenerationId::new(1));
        ledger.complete_generation(GenerationId::new(0), 7.0); // stale: ignored
        assert_eq!(ledger.generations_decoded(), 1);
        assert_eq!(ledger.completion_times(), vec![6.0]);
    }

    #[test]
    fn throughput_is_decoded_bytes_over_duration() {
        let ledger = SessionLedger::shared();
        ledger.complete_generation(GenerationId::new(0), 1.0);
        ledger.complete_generation(GenerationId::new(1), 2.0);
        assert_eq!(ledger.throughput(1000.0, 10.0), 200.0);
    }

    #[test]
    fn builder_composes_presets() {
        let cfg = SessionConfig::builder()
            .capacity(4e4)
            .cbr_fraction(0.25)
            .generation(16, 512)
            .full_payload()
            .duration(33.0)
            .max_retransmissions(7)
            .build();
        assert_eq!(cfg.capacity, 4e4);
        assert_eq!(cfg.cbr_rate, 1e4);
        assert_eq!(cfg.generation_blocks, 16);
        assert_eq!(cfg.wire_block_size, 512);
        assert_eq!(cfg.payload_block_size, 512);
        assert_eq!(cfg.duration, 33.0);
        assert_eq!(cfg.max_retransmissions, 7);
    }

    #[test]
    #[should_panic(expected = "cbr fraction")]
    fn builder_rejects_bad_fraction() {
        let _ = SessionConfig::builder().cbr_fraction(1.5);
    }

    #[test]
    fn packet_accounting() {
        let ledger = SessionLedger::shared();
        ledger.record_packet(true);
        ledger.record_packet(true);
        ledger.record_packet(false);
        assert_eq!(ledger.packet_counts(), (2, 1));
    }
}
