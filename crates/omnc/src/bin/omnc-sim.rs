//! `omnc-sim` — command-line front end for running OMNC experiments.
//!
//! ```sh
//! omnc-sim --nodes 120 --sessions 10 --protocol omnc --quality lossy
//! omnc-sim --protocols all --sessions 5 --format json
//! ```
//!
//! Prints one line (or one JSON object) per session per protocol with
//! throughput, queue, utility and rate-control statistics.

use std::fs::File;
use std::io::{BufWriter, Write};

use omnc::multi::run_multi_cell;
use omnc::runner::{run_session_traced, Protocol, RunOptions};
use omnc::scenario::{Quality, Scenario};
use omnc::session::SessionConfig;
use omnc::telemetry::{
    sample_rss, set_alloc_counting, CountingAlloc, FlightRecorder, LogLevel, Logger, Observer,
    ObserverHandles, Profiler, ProgressBoard, Registry, TimeSeries,
};

// Counting is a no-op (one relaxed atomic load per allocation) until
// --count-allocs flips it on, so installing the wrapper unconditionally
// keeps default runs at full speed. RSS and allocation figures only ever
// reach the stderr log; stdout, --trace, and --profile artifacts stay
// byte-identical across identical seeded runs either way.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
}

struct Args {
    nodes: usize,
    density: f64,
    sessions: usize,
    multi: bool,
    duration: f64,
    quality: Quality,
    protocols: Vec<Protocol>,
    seed: u64,
    format: Format,
    full_payload: bool,
    trace: Option<String>,
    trace_capacity: usize,
    timeline: Option<String>,
    profile: Option<String>,
    profile_folded: Option<String>,
    profile_wall_clock: bool,
    count_allocs: bool,
    log_level: LogLevel,
    serve: Option<String>,
    flight_recorder: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            nodes: 120,
            density: 6.0,
            sessions: 5,
            multi: false,
            duration: 120.0,
            quality: Quality::Lossy,
            protocols: vec![Protocol::Omnc],
            seed: 2008,
            format: Format::Table,
            full_payload: false,
            trace: None,
            trace_capacity: 200_000,
            timeline: None,
            profile: None,
            profile_folded: None,
            profile_wall_clock: false,
            count_allocs: false,
            log_level: LogLevel::Info,
            serve: None,
            flight_recorder: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--nodes" => args.nodes = parse(value("--nodes")?)?,
                "--density" => args.density = parse(value("--density")?)?,
                "--sessions" => args.sessions = parse(value("--sessions")?)?,
                "--multi" => args.multi = true,
                "--duration" => args.duration = parse(value("--duration")?)?,
                "--seed" => args.seed = parse(value("--seed")?)?,
                "--quality" => {
                    args.quality = match value("--quality")?.as_str() {
                        "lossy" => Quality::Lossy,
                        "high" => Quality::High,
                        other => return Err(format!("unknown quality '{other}'")),
                    }
                }
                "--protocol" | "--protocols" => {
                    let v = value("--protocol")?;
                    args.protocols = match v.as_str() {
                        "all" => Protocol::ALL.to_vec(),
                        name => vec![parse_protocol(name)?],
                    };
                }
                "--format" => {
                    args.format = match value("--format")?.as_str() {
                        "table" => Format::Table,
                        "json" => Format::Json,
                        other => return Err(format!("unknown format '{other}'")),
                    }
                }
                "--full-payload" => args.full_payload = true,
                "--trace" => args.trace = Some(value("--trace")?.clone()),
                "--trace-capacity" => args.trace_capacity = parse(value("--trace-capacity")?)?,
                "--timeline" => args.timeline = Some(value("--timeline")?.clone()),
                "--profile" => args.profile = Some(value("--profile")?.clone()),
                "--profile-folded" => {
                    args.profile_folded = Some(value("--profile-folded")?.clone());
                }
                "--profile-clock" => {
                    args.profile_wall_clock = match value("--profile-clock")?.as_str() {
                        "wall" => true,
                        "virtual" => false,
                        other => return Err(format!("unknown profile clock '{other}'")),
                    }
                }
                "--count-allocs" => args.count_allocs = true,
                "--serve" => args.serve = Some(value("--serve")?.clone()),
                "--flight-recorder" => {
                    args.flight_recorder = Some(value("--flight-recorder")?.clone());
                }
                "--log-level" => {
                    let v = value("--log-level")?;
                    args.log_level = LogLevel::parse(v)
                        .ok_or_else(|| format!("unknown log level '{v}' (quiet|info|debug)"))?;
                }
                "--help" | "-h" => {
                    print_help();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("could not parse '{s}'"))
}

fn parse_protocol(name: &str) -> Result<Protocol, String> {
    match name.to_ascii_lowercase().as_str() {
        "omnc" => Ok(Protocol::Omnc),
        "more" => Ok(Protocol::More),
        "oldmore" => Ok(Protocol::OldMore),
        "etx" => Ok(Protocol::EtxRouting),
        other => Err(format!(
            "unknown protocol '{other}' (omnc|more|oldmore|etx|all)"
        )),
    }
}

fn print_help() {
    println!(
        "omnc-sim — run OMNC / MORE / oldMORE / ETX unicast sessions on random lossy meshes

USAGE:
    omnc-sim [OPTIONS]

OPTIONS:
    --nodes <N>         deployed nodes            [default: 120]
    --density <D>       avg neighbors in range    [default: 6]
    --sessions <K>      unicast sessions to run   [default: 5]
    --multi             run all K sessions *concurrently* on one shared
                        mesh (coupled rate control, shared queues and
                        channel) instead of as independent experiments
    --duration <SECS>   simulated session length  [default: 120]
    --quality <Q>       lossy | high              [default: lossy]
    --protocol <P>      omnc | more | oldmore | etx | all  [default: omnc]
    --seed <S>          master seed               [default: 2008]
    --format <F>        table | json              [default: table]
    --full-payload      code real 1 KB payloads (slower, verifies bytes)
    --trace <PATH>      write the causal packet-lifecycle trace as JSONL
                        (one stream per session/protocol; feed to omnc-report;
                        '-' writes to stdout for piping)
    --trace-capacity <N> max MAC events kept per run [default: 200000]
    --timeline <PATH>   write windowed dynamics series as JSON: per-node
                        queue depth, per-link delivery/loss, decoder rank
                        per generation, optimizer convergence, goodput —
                        one series set per session/protocol, named
                        <proto>/s<k>/… (feed to `omnc-report timeline`;
                        '-' writes to stdout). Sampled on simulated time,
                        so identical seeded runs write identical bytes;
                        --trace/--profile output is unaffected
    --profile <PATH>    write the hierarchical span profile as JSON
                        (event loop, MAC arbitration, encode/recode/decode,
                        gf256 kernels; feed to `omnc-report profile`)
    --profile-folded <PATH> write Brendan-Gregg folded stacks (flamegraph.pl
                        / speedscope input)
    --profile-clock <C> virtual | wall        [default: virtual]
                        (virtual counts clock reads — deterministic across
                        identical seeded runs; wall measures nanoseconds)
    --count-allocs      enable allocation counting: profiled spans gain
                        alloc columns and the log reports per-session
                        allocation deltas (stderr only — stdout, --trace,
                        and --profile stay byte-identical)
    --serve <ADDR>      serve live observability read-only over HTTP while
                        the run lasts: /metrics (Prometheus text from the
                        simulator's counters), /progress (JSON with ETA
                        and per-session state), /series (the --timeline
                        windows, when enabled). Never changes any output
                        byte; e.g. --serve 127.0.0.1:9100
    --flight-recorder <PATH> keep a ring of run breadcrumbs and dump them
                        to PATH if the run panics (nothing is written on
                        success); read the dump with `omnc-report flight`
    --log-level <L>     quiet | info | debug  [default: info]
    -h, --help          this text"
    );
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            Logger::default().error(&e);
            std::process::exit(2);
        }
    };
    let log = Logger::new(args.log_level);
    set_alloc_counting(args.count_allocs);

    let mut scenario = Scenario::reduced(args.quality);
    scenario.nodes = args.nodes;
    scenario.density = args.density;
    scenario.sessions = args.sessions;
    scenario.seed = args.seed;
    scenario.session = SessionConfig {
        duration: args.duration,
        payload_block_size: if args.full_payload { 1024 } else { 1 },
        ..SessionConfig::reduced()
    };

    if args.format == Format::Table {
        if args.multi {
            println!(
                "{:>4} {:>9} {:>10} {:>8} {:>8} {:>9} {:>7} {:>7}",
                "k", "protocol", "B/s", "gens", "airtime", "qwait_s", "sent", "lost"
            );
        } else {
            println!(
                "{:>4} {:>9} {:>10} {:>8} {:>7} {:>7} {:>7} {:>6}",
                "k", "protocol", "B/s", "gens", "queue", "nodeU", "pathU", "iters"
            );
        }
    }
    let mut trace_out: Option<BufWriter<Box<dyn Write>>> = args.trace.as_ref().map(|path| {
        let sink: Box<dyn Write> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(File::create(path).unwrap_or_else(|e| {
                log.error(&format!("cannot create trace file '{path}': {e}"));
                std::process::exit(2);
            }))
        };
        BufWriter::new(sink)
    });
    let profiling = args.profile.is_some() || args.profile_folded.is_some();
    let profiler = match (profiling, args.profile_wall_clock) {
        (false, _) => Profiler::disabled(),
        (true, true) => Profiler::wall(),
        (true, false) => Profiler::virtual_clock(),
    };
    // Defaults chosen so any session length lands in a readable chart:
    // 64 buckets starting at 0.25 s windows, coarsening 2:1 as runs grow.
    let timeline = if args.timeline.is_some() {
        TimeSeries::enabled(0.25, 64)
    } else {
        TimeSeries::disabled()
    };
    // The live plane: a registry for the simulator's MAC counters, a
    // progress board over session x protocol runs, and the observer
    // thread serving both (plus the --timeline windows) read-only.
    let registry = if args.serve.is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let board = if args.serve.is_some() {
        let cells = if args.multi {
            args.protocols.len()
        } else {
            args.sessions * args.protocols.len()
        };
        ProgressBoard::enabled("omnc-sim", cells, 1)
    } else {
        ProgressBoard::disabled()
    };
    let _observer = args.serve.as_ref().map(|addr| {
        let handles = ObserverHandles {
            registry: registry.clone(),
            timeline: timeline.clone(),
            progress: board.clone(),
        };
        match Observer::serve(addr, handles) {
            Ok(observer) => {
                log.info(&format!(
                    "observer serving /metrics /progress /series on http://{}",
                    observer.local_addr()
                ));
                observer
            }
            Err(e) => {
                log.error(&format!("cannot serve on '{addr}': {e}"));
                std::process::exit(2);
            }
        }
    });
    let flight = if args.flight_recorder.is_some() {
        FlightRecorder::enabled(256)
    } else {
        FlightRecorder::disabled()
    };
    let options = RunOptions {
        fault: None,
        trace_capacity: args.trace.is_some().then_some(args.trace_capacity),
        profiler: profiler.clone(),
        timeline: timeline.clone(),
        registry,
        flight: flight.clone(),
        ..RunOptions::default()
    };
    log.debug(&format!(
        "scenario: {} nodes, {} sessions, {}s, seed {}",
        scenario.nodes, scenario.sessions, scenario.session.duration, scenario.seed
    ));
    if args.multi {
        for &protocol in &args.protocols {
            let scope_key = format!("{}/multi", protocol.name().to_ascii_lowercase());
            board.cell_started(0, &scope_key);
            let _black_box = args
                .flight_recorder
                .as_ref()
                .map(|path| flight.arm(&scope_key, std::path::Path::new(path)));
            let scope = args.count_allocs.then(omnc::telemetry::AllocScope::start);
            let run_options = RunOptions {
                timeline_scope: scope_key,
                ..options.clone()
            };
            let (out, traces) = run_multi_cell(&scenario, protocol, &run_options);
            board.cell_finished(0, true);
            if let Some(scope) = scope {
                let d = scope.delta();
                let rss = sample_rss().map_or(0, |r| r.vm_rss_bytes) / (1024 * 1024);
                log.debug(&format!(
                    "multi {}: {} allocs, {} bytes allocated, rss {rss} MB",
                    protocol.name(),
                    d.alloc_events(),
                    d.bytes_allocated
                ));
            }
            if let (Some(file), Some(traces)) = (trace_out.as_mut(), traces) {
                for trace in traces {
                    if trace.dropped_mac_events > 0 {
                        log.warn(&format!(
                            "{} multi run dropped {} MAC events (raise --trace-capacity)",
                            protocol.name(),
                            trace.dropped_mac_events
                        ));
                    }
                    if let Err(e) = trace.write_jsonl(&mut *file) {
                        log.error(&format!("writing trace: {e}"));
                        std::process::exit(2);
                    }
                }
            }
            for s in &out.sessions {
                match args.format {
                    Format::Table => println!(
                        "{:>4} {:>9} {:>10.0} {:>8} {:>8.3} {:>9.1} {:>7} {:>7}",
                        s.session,
                        protocol.name(),
                        s.throughput,
                        s.generations_decoded,
                        s.airtime_share,
                        s.queue_wait,
                        s.packets_sent,
                        s.packets_lost,
                    ),
                    Format::Json => println!(
                        "{{\"session\":{},\"protocol\":\"{}\",\"throughput\":{:.1},\
                         \"generations\":{},\"airtime_share\":{:.4},\"queue_wait\":{:.3},\
                         \"packets_sent\":{},\"packets_lost\":{},\"completed\":{}}}",
                        s.session,
                        protocol.name(),
                        s.throughput,
                        s.generations_decoded,
                        s.airtime_share,
                        s.queue_wait,
                        s.packets_sent,
                        s.packets_lost,
                        s.completed(),
                    ),
                }
            }
            match args.format {
                Format::Table => println!(
                    "{:>4} {:>9} {:>10.0} total; {}/{} sessions completed, mean queue {:.2}",
                    "sum",
                    protocol.name(),
                    out.total_throughput,
                    out.sessions_completed,
                    out.sessions.len(),
                    out.mean_queue(),
                ),
                Format::Json => println!(
                    "{{\"protocol\":\"{}\",\"total_throughput\":{:.1},\
                     \"sessions_completed\":{},\"sessions\":{},\"mean_queue\":{:.3},\
                     \"mac_packets\":{}}}",
                    protocol.name(),
                    out.total_throughput,
                    out.sessions_completed,
                    out.sessions.len(),
                    out.mean_queue(),
                    out.mac_packets,
                ),
            }
        }
    } else {
        for (k, seed) in scenario.session_seeds().enumerate() {
            let (topology, src, dst) = scenario.build_session(k as u64);
            for &protocol in &args.protocols {
                log.debug(&format!(
                    "session {k}: {} {}->{} seed {seed}",
                    protocol.name(),
                    src.index(),
                    dst.index()
                ));
                let scope = args.count_allocs.then(omnc::telemetry::AllocScope::start);
                let scope_key = format!("{}/s{k}", protocol.name().to_ascii_lowercase());
                board.cell_started(0, &scope_key);
                let _black_box = args
                    .flight_recorder
                    .as_ref()
                    .map(|path| flight.arm(&scope_key, std::path::Path::new(path)));
                let run_options = RunOptions {
                    timeline_scope: scope_key,
                    ..options.clone()
                };
                let (out, trace) = run_session_traced(
                    &topology,
                    src,
                    dst,
                    protocol,
                    &scenario.session,
                    seed,
                    &run_options,
                );
                board.cell_finished(0, true);
                if let Some(scope) = scope {
                    let d = scope.delta();
                    let rss = sample_rss().map_or(0, |r| r.vm_rss_bytes) / (1024 * 1024);
                    log.debug(&format!(
                        "session {k} {}: {} allocs, {} bytes allocated, rss {rss} MB",
                        protocol.name(),
                        d.alloc_events(),
                        d.bytes_allocated
                    ));
                }
                if let (Some(file), Some(trace)) = (trace_out.as_mut(), trace) {
                    if trace.dropped_mac_events > 0 {
                        log.warn(&format!(
                            "session {k} {} dropped {} MAC events (raise --trace-capacity)",
                            protocol.name(),
                            trace.dropped_mac_events
                        ));
                    }
                    if let Err(e) = trace.write_jsonl(&mut *file) {
                        log.error(&format!("writing trace: {e}"));
                        std::process::exit(2);
                    }
                }
                match args.format {
                    Format::Table => println!(
                        "{:>4} {:>9} {:>10.0} {:>8} {:>7.2} {:>7.2} {:>7.2} {:>6}",
                        k,
                        protocol.name(),
                        out.throughput,
                        out.generations_decoded,
                        out.mean_queue(),
                        out.node_utility,
                        out.path_utility,
                        out.rc_iterations
                            .map(|i| i.to_string())
                            .unwrap_or_else(|| "-".into()),
                    ),
                    Format::Json => println!(
                        "{{\"session\":{k},\"protocol\":\"{}\",\"throughput\":{:.1},\
                     \"generations\":{},\"mean_queue\":{:.3},\"node_utility\":{:.3},\
                     \"path_utility\":{:.3},\"rc_iterations\":{}}}",
                        protocol.name(),
                        out.throughput,
                        out.generations_decoded,
                        out.mean_queue(),
                        out.node_utility,
                        out.path_utility,
                        out.rc_iterations
                            .map(|i| i.to_string())
                            .unwrap_or_else(|| "null".into()),
                    ),
                }
            }
        }
    }
    if let Some(mut file) = trace_out {
        if let Err(e) = file.flush() {
            log.error(&format!("flushing trace: {e}"));
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.timeline {
        let report = timeline.snapshot();
        let json = serde_json::to_string(&report).expect("timeline serializes");
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, json + "\n") {
            log.error(&format!("writing timeline '{path}': {e}"));
            std::process::exit(2);
        } else {
            log.info(&format!(
                "timeline: {} series -> {path}",
                report.series.len()
            ));
        }
    }
    if profiling {
        let report = profiler.report();
        if let Some(path) = &args.profile {
            let json = serde_json::to_string(&report).expect("report serializes");
            if let Err(e) = std::fs::write(path, json + "\n") {
                log.error(&format!("writing profile '{path}': {e}"));
                std::process::exit(2);
            }
            log.info(&format!(
                "profile: {} spans ({} clock) -> {path}",
                report.spans.len(),
                report.clock
            ));
        }
        if let Some(path) = &args.profile_folded {
            if let Err(e) = std::fs::write(path, report.folded()) {
                log.error(&format!("writing folded stacks '{path}': {e}"));
                std::process::exit(2);
            }
            log.info(&format!("folded stacks -> {path}"));
        }
    }
    if args.count_allocs {
        if let Some(rss) = sample_rss() {
            log.info(&format!(
                "memory: peak rss {} MB (current {} MB)",
                rss.vm_hwm_bytes / (1024 * 1024),
                rss.vm_rss_bytes / (1024 * 1024)
            ));
        }
    }
}
