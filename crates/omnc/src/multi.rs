//! Multi-session workloads: N concurrent unicast sessions sharing one mesh.
//!
//! The single-session runner ([`crate::runner`]) evaluates each session on
//! its own sub-topology, one simulator per session — the paper's Fig. 2/3
//! methodology, where sessions are independent experiments. This module is
//! the *coupled* counterpart: every session's behaviors are installed on the
//! **same** simulator over the **full** topology, so sessions contend for
//! the same per-receiver channel capacity, share transmit queues at common
//! forwarders, and (under OMNC) are rate-controlled *jointly* by the
//! coupled mUnicast program of Sec. 4.3 rather than per session in
//! isolation.
//!
//! Coordinates are original topology ids throughout — there is no
//! sub-topology re-indexing, so traces and timelines need no remapping.
//!
//! Protocol wiring per session `k`:
//!
//! * **OMNC** — one forwarder selection per session, a joint
//!   [`MUnicast`] solved with shared congestion prices
//!   ([`MUnicast::solve_distributed`]); the MAC enforces the *summed*
//!   per-node broadcast rates while each session's source/relays pace at
//!   their own share.
//! * **MORE / oldMORE** — per-session credits and ETX distances on the full
//!   topology; all sessions share one max-min fair MAC, reproducing the
//!   uncontrolled congestion the paper reports for MORE under load.
//! * **ETX** — per-session best paths; the unicast interference cliques are
//!   built from the union of next hops (first session wins at a shared
//!   forwarder — an approximation that only coarsens the interference
//!   model, never misroutes, since routing follows each behavior's own
//!   unicast destinations).

use std::collections::BTreeMap;

use drift::{MacModel, Simulator, TraceEvent};
use net_topo::etx;
use net_topo::graph::{NodeId, Topology};
use net_topo::select::{select_forwarders, Selection};
use omnc_opt::municast::MUnicast;
use omnc_opt::RateControlParams;
use serde::{Deserialize, Serialize};

use crate::msg::Msg;
use crate::proto::credits::{more_credits, oldmore_credits, CreditPlan};
use crate::proto::etx_routing::{EtxDestination, EtxForwarder};
use crate::proto::more::{MoreDestination, MoreRelay, MoreSource};
use crate::proto::omnc::{OmncDestination, OmncRelay, OmncSource};
use crate::runner::{Protocol, Role, RunOptions};
use crate::scenario::Scenario;
use crate::session::{SessionConfig, SessionLedger};
use crate::trace::{Absorbed, SessionTrace, TraceRecord};

/// Everything measured from one session of a multi-session run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSummary {
    /// The session's index `k` within the workload.
    pub session: u64,
    /// Source node (original topology id).
    pub src: NodeId,
    /// Destination node (original topology id).
    pub dst: NodeId,
    /// End-to-end application throughput in bytes/second.
    pub throughput: f64,
    /// Throughput predicted by the joint mUnicast program (OMNC only).
    pub predicted_throughput: Option<f64>,
    /// Generations fully decoded (coded protocols).
    pub generations_decoded: u64,
    /// Innovative/redundant packet counts at the destination.
    pub packet_counts: (u64, u64),
    /// MAC-level packets of this session that finished transmitting.
    pub packets_sent: u64,
    /// Per-receiver deliveries of this session's packets.
    pub packets_delivered: u64,
    /// Per-receiver channel losses of this session's packets.
    pub packets_lost: u64,
    /// This session's share of total consumed channel airtime (sums to 1
    /// across sessions when anything transmitted).
    pub airtime_share: f64,
    /// Total seconds this session's packets spent queued behind *anyone's*
    /// packets before transmission started — inter-session queue
    /// interference made visible.
    pub queue_wait: f64,
}

impl SessionSummary {
    /// Whether the session delivered anything end to end: at least one
    /// decoded generation (coded protocols) or one delivered block (ETX).
    pub fn completed(&self) -> bool {
        self.generations_decoded > 0 || self.packet_counts.0 > 0
    }
}

/// Everything measured from one multi-session run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSessionOutcome {
    /// The protocol every session ran.
    pub protocol: Protocol,
    /// Per-session summaries, indexed by session `k`.
    pub sessions: Vec<SessionSummary>,
    /// Sum of per-session end-to-end throughputs, bytes/second.
    pub total_throughput: f64,
    /// Sessions that delivered anything end to end
    /// ([`SessionSummary::completed`]).
    pub sessions_completed: usize,
    /// Time-averaged queue size of every node that transmitted, across the
    /// whole shared mesh (the Fig. 3 population, here under coupled load).
    pub queue_averages: Vec<f64>,
    /// Total MAC-level packet events the engine processed (transmissions
    /// plus per-receiver deliveries and losses) — the numerator of the
    /// `sim/multi_packets_per_s` bench metric.
    pub mac_packets: u64,
}

impl MultiSessionOutcome {
    /// Mean of the per-node time-averaged queue sizes (the Fig. 3 metric);
    /// zero if nothing transmitted.
    pub fn mean_queue(&self) -> f64 {
        if self.queue_averages.is_empty() {
            0.0
        } else {
            self.queue_averages.iter().sum::<f64>() / self.queue_averages.len() as f64
        }
    }
}

/// A deterministic per-session identifier for packet tags and traces,
/// derived the same way the single-session cells derive their session
/// seeds so session `k` is comparable across the two runners.
fn session_id(seed: u64, k: u64) -> u64 {
    seed.wrapping_add(k.wrapping_mul(7919)) ^ 0xC0DE
}

fn scoped(scope: &str, k: usize) -> String {
    if scope.is_empty() {
        format!("s{k}")
    } else {
        format!("{scope}/s{k}")
    }
}

/// Runs `endpoints.len()` concurrent unicast sessions of `protocol` on one
/// shared simulator over `topology`. Deterministic in `seed`.
///
/// With `options.trace_capacity` set, the second return value holds one
/// [`SessionTrace`] per session: the shared MAC trace split by packet-tag
/// session id (untagged events — `TxComplete`, queue samples — carry no
/// session and are omitted), merged with that session's absorption log.
///
/// # Panics
///
/// Panics if `endpoints` is empty, any `src == dst`, or any destination is
/// unreachable from its source.
pub fn run_multi_session(
    topology: &Topology,
    endpoints: &[(NodeId, NodeId)],
    protocol: Protocol,
    cfg: &SessionConfig,
    seed: u64,
    options: &RunOptions,
) -> (MultiSessionOutcome, Option<Vec<SessionTrace>>) {
    assert!(!endpoints.is_empty(), "at least one session is required");
    for &(src, dst) in endpoints {
        assert_ne!(src, dst, "sessions need distinct endpoints");
    }
    let n = topology.len();
    let k_count = endpoints.len();
    let ids: Vec<u64> = (0..k_count as u64).map(|k| session_id(seed, k)).collect();
    let verify = cfg.payload_block_size == cfg.wire_block_size;
    let ledgers: Vec<_> = (0..k_count).map(|_| SessionLedger::shared()).collect();
    options.flight.record(
        0.0,
        "multi/start",
        &format!("protocol={} sessions={k_count} nodes={n}", protocol.name()),
    );

    // Per-session behavior maps (original ids) and predicted throughputs.
    let mut roles: Vec<BTreeMap<NodeId, Role>> = (0..k_count).map(|_| BTreeMap::new()).collect();
    let mut predicted: Vec<Option<f64>> = vec![None; k_count];
    let mac;

    match protocol {
        Protocol::Omnc => {
            let selections: Vec<Selection> = endpoints
                .iter()
                .map(|&(src, dst)| select_forwarders(topology, src, dst))
                .collect();
            let mu = MUnicast::from_selections(topology, &selections, cfg.capacity);
            let sol = mu.solve_distributed(&RateControlParams::default());
            options.flight.record(
                0.0,
                "multi/rates",
                &format!("total_predicted={:.1}", sol.total()),
            );
            // The MAC enforces the summed per-node rates; each session's
            // roles pace at their own share.
            let mut mac_rates = vec![0.0; n];
            for (k, s) in mu.sessions().iter().enumerate() {
                let (src, dst) = endpoints[k];
                let mut rates = vec![0.0; n];
                for i in 0..s.node_count() {
                    // Recovered rates may carry -1e-12 style noise.
                    rates[s.node_id(i).index()] = sol.b[k][i].max(0.0);
                }
                rates[dst.index()] = 0.0; // the destination only listens
                                          // Role construction is setup, once per (session, node);
                                          // ledger handles are shared-ownership by design.
                for &orig in selections[k].nodes() {
                    let rate = rates[orig.index()];
                    let role = if orig == src {
                        // lint: allow(clone-in-hot-loop) -- setup-time shared handle
                        Role::OmncSrc(OmncSource::new(*cfg, ledgers[k].clone(), ids[k], rate))
                    } else if orig == dst {
                        Role::OmncDst(OmncDestination::new(
                            *cfg,
                            ledgers[k].clone(), // lint: allow(clone-in-hot-loop) -- setup-time shared handle
                            ids[k],
                            verify,
                        ))
                    } else {
                        Role::OmncRelay(OmncRelay::new(*cfg, rate))
                    };
                    roles[k].insert(orig, role);
                }
                for (total, rate) in mac_rates.iter_mut().zip(&rates) {
                    *total += rate;
                }
                predicted[k] = Some(sol.gamma[k]);
            }
            mac = MacModel::rate_limited(mac_rates, cfg.capacity);
        }
        Protocol::More | Protocol::OldMore => {
            for (k, &(src, dst)) in endpoints.iter().enumerate() {
                let selection = select_forwarders(topology, src, dst);
                let plan: CreditPlan = if protocol == Protocol::More {
                    more_credits(&selection)
                } else {
                    oldmore_credits(&selection)
                };
                let dist: Vec<f64> = (0..n)
                    .map(|v| {
                        selection
                            .dist_to_dst(NodeId::new(v))
                            .unwrap_or(f64::INFINITY)
                    })
                    .collect();
                // Setup only: one role per (session, node) before t=0.
                for &orig in selection.nodes() {
                    let role = if orig == src {
                        // lint: allow(clone-in-hot-loop) -- setup-time shared handle
                        Role::MoreSrc(MoreSource::new(*cfg, ledgers[k].clone(), ids[k]))
                    } else if orig == dst {
                        Role::MoreDst(MoreDestination::new(
                            *cfg,
                            ledgers[k].clone(), // lint: allow(clone-in-hot-loop) -- setup-time shared handle
                            ids[k],
                            verify,
                        ))
                    } else {
                        Role::MoreRelay(MoreRelay::new(
                            *cfg,
                            plan.tx_credit[orig.index()],
                            dist[orig.index()],
                            dist.clone(), // lint: allow(clone-in-hot-loop) -- each relay owns its distance table
                        ))
                    };
                    roles[k].insert(orig, role);
                }
            }
            mac = MacModel::fair_share(cfg.capacity);
        }
        Protocol::EtxRouting => {
            let mut next_hop = vec![usize::MAX; n];
            for (k, &(src, dst)) in endpoints.iter().enumerate() {
                let path = etx::best_path(topology, src, dst)
                    .expect("session endpoints must be connected");
                for w in path.windows(2) {
                    let u = w[0].index();
                    if next_hop[u] == usize::MAX {
                        next_hop[u] = w[1].index();
                    }
                    let fwd = if w[0] == src {
                        EtxForwarder::source(*cfg, w[1], dst)
                    } else {
                        EtxForwarder::relay(*cfg, w[1])
                    };
                    roles[k].insert(w[0], Role::EtxFwd(fwd.with_session(ids[k], src)));
                }
                roles[k].insert(dst, Role::EtxDst(EtxDestination::new()));
            }
            mac = MacModel::unicast_clique(cfg.capacity, next_hop);
        }
    }

    // ---- One simulator, every session's behaviors installed on it.
    let mut sim: Simulator<Msg, Role> = Simulator::new(topology, mac, seed);
    if let Some(capacity) = options.trace_capacity {
        sim.enable_trace(capacity);
    }
    sim.attach_profiler(options.profiler.clone());
    sim.attach_telemetry(&options.registry);
    if options.timeline.is_enabled() {
        let labels: Vec<u64> = (0..n as u64).collect();
        sim.attach_timeline(&options.timeline, &options.timeline_scope, &labels);
    }
    for (k, role_map) in roles.into_iter().enumerate() {
        let scope = scoped(&options.timeline_scope, k);
        for (orig, mut role) in role_map {
            role.set_profiler(&options.profiler);
            role.set_timeline(&options.timeline, &scope);
            sim.set_session_behavior(k, orig, role);
        }
    }
    if let Some((victim, at)) = options.fault {
        sim.schedule_kill(victim, at);
    }
    options.flight.record(
        0.0,
        "sim/start",
        &format!("protocol={} sessions={k_count}", protocol.name()),
    );
    sim.run_until(cfg.duration);
    options
        .flight
        .record(cfg.duration, "sim/done", protocol.name());

    // ---- Collect per-session metrics.
    let airtime_shares = sim.airtime_shares();
    let mut sessions = Vec::with_capacity(k_count);
    let mut mac_packets = 0u64;
    for (k, &(src, dst)) in endpoints.iter().enumerate() {
        let stats = sim.session_stats(k);
        let (partial_rank, delivered_blocks) = match sim.session_behavior(k, dst) {
            Some(Role::OmncDst(d)) => (d.state().partial_rank(), 0),
            Some(Role::MoreDst(d)) => (d.state().partial_rank(), 0),
            Some(Role::EtxDst(d)) => (0, d.blocks_delivered),
            _ => (0, 0),
        };
        let throughput = if protocol == Protocol::EtxRouting {
            delivered_blocks as f64 * cfg.wire_block_size as f64 / cfg.duration
        } else {
            let partial_bytes = partial_rank as f64 * cfg.wire_block_size as f64;
            ledgers[k].throughput(cfg.generation_app_bytes(), cfg.duration)
                + partial_bytes / cfg.duration
        };
        // Goodput dynamics and cross-session aggregates, per session scope.
        if options.timeline.is_enabled() {
            let scope = scoped(&options.timeline_scope, k);
            if let Some(state) = match sim.session_behavior(k, dst) {
                Some(Role::OmncDst(d)) => Some(d.state()),
                Some(Role::MoreDst(d)) => Some(d.state()),
                _ => None,
            } {
                let goodput = options.timeline.series(&format!("{scope}/goodput"));
                for a in state.absorptions.iter().filter(|a| a.innovative) {
                    goodput.record(a.at, 1.0);
                }
            }
            options
                .timeline
                .series(&format!("{scope}/airtime_share"))
                .record(cfg.duration, airtime_shares.get(k).copied().unwrap_or(0.0));
            options
                .timeline
                .series(&format!("{scope}/queue_wait"))
                .record(cfg.duration, stats.queue_wait);
        }
        let (innovative, redundant) = if protocol == Protocol::EtxRouting {
            (delivered_blocks, 0)
        } else {
            ledgers[k].packet_counts()
        };
        let generations_decoded = if protocol == Protocol::EtxRouting {
            0
        } else {
            ledgers[k].generations_decoded()
        };
        mac_packets += stats.packets_sent + stats.packets_delivered + stats.packets_lost;
        sessions.push(SessionSummary {
            session: k as u64,
            src,
            dst,
            throughput,
            predicted_throughput: predicted[k],
            generations_decoded,
            packet_counts: (innovative, redundant),
            packets_sent: stats.packets_sent,
            packets_delivered: stats.packets_delivered,
            packets_lost: stats.packets_lost,
            airtime_share: airtime_shares.get(k).copied().unwrap_or(0.0),
            queue_wait: stats.queue_wait,
        });
    }

    let queue_averages: Vec<f64> = topology
        .nodes()
        .filter(|&v| sim.stats(v).packets_sent > 0)
        .map(|v| sim.queue_average(v))
        .collect();

    let traces = options
        .trace_capacity
        .map(|_| split_traces(&sim, protocol, cfg, seed, endpoints, &ids, &sessions));

    let total_throughput = sessions.iter().map(|s| s.throughput).sum();
    let sessions_completed = sessions.iter().filter(|s| s.completed()).count();
    options.flight.record(
        cfg.duration,
        "multi/collect",
        &format!("total={total_throughput:.1} completed={sessions_completed}"),
    );
    let outcome = MultiSessionOutcome {
        protocol,
        sessions,
        total_throughput,
        sessions_completed,
        queue_averages,
        mac_packets,
    };
    (outcome, traces)
}

/// Splits the shared MAC trace into per-session [`SessionTrace`]s by packet
/// tag, merging each with that session's absorption log. Node ids are
/// already original-topology coordinates, so nothing is remapped.
fn split_traces(
    sim: &Simulator<Msg, Role>,
    protocol: Protocol,
    cfg: &SessionConfig,
    seed: u64,
    endpoints: &[(NodeId, NodeId)],
    ids: &[u64],
    sessions: &[SessionSummary],
) -> Vec<SessionTrace> {
    let id_to_k: BTreeMap<u64, usize> = ids.iter().enumerate().map(|(k, &id)| (id, k)).collect();
    let mut mac: Vec<Vec<TraceRecord>> = vec![Vec::new(); ids.len()];
    for e in sim.trace().events() {
        let tag = match *e {
            TraceEvent::TxStart { tag, .. }
            | TraceEvent::Delivered { tag, .. }
            | TraceEvent::Lost { tag, .. } => tag,
            // TxComplete and queue samples carry no tag; they belong to the
            // shared channel, not to any one session.
            _ => None,
        };
        let Some(t) = tag else { continue };
        let Some(&k) = id_to_k.get(&t.session) else {
            continue;
        };
        mac[k].push(TraceRecord::Mac(*e));
    }
    let dropped = sim.trace().dropped();
    endpoints
        .iter()
        .enumerate()
        .map(|(k, &(src, dst))| {
            let absorptions: Vec<Absorbed> = match sim.session_behavior(k, dst) {
                Some(Role::OmncDst(d)) => d.state().absorptions.clone(),
                Some(Role::MoreDst(d)) => d.state().absorptions.clone(),
                _ => Vec::new(),
            };
            let s = &sessions[k];
            let mac_records = std::mem::take(&mut mac[k]);
            let mut records = Vec::with_capacity(mac_records.len() + absorptions.len() + 2);
            records.push(TraceRecord::SessionStart {
                session: ids[k],
                protocol,
                src,
                dst,
                seed,
                duration: cfg.duration,
            });
            // Merge the two time-ordered streams, MAC first on ties (the
            // absorption of a delivery happens causally after the MAC event).
            let mut mac_it = mac_records.into_iter().peekable();
            let mut dec_it = absorptions
                .into_iter()
                .map(TraceRecord::Absorbed)
                .peekable();
            while let (Some(m), Some(d)) = (mac_it.peek(), dec_it.peek()) {
                let tm = m.at().unwrap_or(0.0);
                let td = d.at().unwrap_or(0.0);
                if tm <= td {
                    records.extend(mac_it.next());
                } else {
                    records.extend(dec_it.next());
                }
            }
            records.extend(mac_it);
            records.extend(dec_it);
            records.push(TraceRecord::SessionEnd {
                session: ids[k],
                throughput: s.throughput,
                generations_decoded: s.generations_decoded,
                innovative: s.packet_counts.0,
                redundant: s.packet_counts.1,
                final_rank: s.generations_decoded * cfg.generation_blocks as u64
                    + match sim.session_behavior(k, dst) {
                        Some(Role::OmncDst(d)) => d.state().partial_rank() as u64,
                        Some(Role::MoreDst(d)) => d.state().partial_rank() as u64,
                        _ => 0,
                    },
                dropped_mac_events: dropped,
            });
            SessionTrace {
                records,
                dropped_mac_events: dropped,
            }
        })
        .collect()
}

/// Runs the whole multi-session workload of `scenario` under `protocol`:
/// one shared topology, all `scenario.sessions` endpoint pairs concurrent
/// on one simulator. The multi-session analogue of
/// [`crate::runner::run_cell`].
///
/// # Panics
///
/// Panics if the scenario cannot draw all its sessions (disconnected
/// deployment or unsatisfiable hop bounds).
pub fn run_multi_cell(
    scenario: &Scenario,
    protocol: Protocol,
    options: &RunOptions,
) -> (MultiSessionOutcome, Option<Vec<SessionTrace>>) {
    let (topology, endpoints) = scenario.build_multi();
    run_multi_session(
        &topology,
        &endpoints,
        protocol,
        &scenario.session,
        scenario.seed,
        options,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tiny_scenario(sessions: usize) -> Scenario {
        let mut s = Scenario::small_test();
        s.sessions = sessions;
        s
    }

    #[test]
    fn all_protocols_run_concurrent_sessions() {
        let scenario = tiny_scenario(3);
        for protocol in Protocol::ALL {
            let (outcome, _) = run_multi_cell(&scenario, protocol, &RunOptions::default());
            assert_eq!(outcome.sessions.len(), 3, "{}", protocol.name());
            assert!(
                outcome.total_throughput > 0.0,
                "{} delivered nothing across 3 sessions",
                protocol.name()
            );
            assert!(outcome.sessions_completed >= 1, "{}", protocol.name());
            assert!(outcome.mac_packets > 0, "{}", protocol.name());
        }
    }

    #[test]
    fn airtime_shares_sum_to_one_and_expose_coupling() {
        let scenario = tiny_scenario(2);
        let (outcome, _) = run_multi_cell(&scenario, Protocol::More, &RunOptions::default());
        let total: f64 = outcome.sessions.iter().map(|s| s.airtime_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        // Sessions share queues on one mesh: somebody waited behind
        // somebody else's packets.
        assert!(outcome.sessions.iter().any(|s| s.queue_wait > 0.0));
    }

    #[test]
    fn multi_session_runs_are_deterministic() {
        let scenario = tiny_scenario(2);
        let a = run_multi_cell(&scenario, Protocol::Omnc, &RunOptions::default()).0;
        let b = run_multi_cell(&scenario, Protocol::Omnc, &RunOptions::default()).0;
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.throughput.to_bits(), y.throughput.to_bits());
            assert_eq!(x.packets_sent, y.packets_sent);
            assert_eq!(x.airtime_share.to_bits(), y.airtime_share.to_bits());
        }
    }

    #[test]
    fn traces_split_cleanly_by_session() {
        let scenario = tiny_scenario(2);
        let options = RunOptions {
            trace_capacity: Some(200_000),
            ..RunOptions::default()
        };
        let (outcome, traces) = run_multi_cell(&scenario, Protocol::Omnc, &options);
        let traces = traces.expect("tracing was requested");
        assert_eq!(traces.len(), 2);
        for (k, trace) in traces.iter().enumerate() {
            let Some(TraceRecord::SessionStart { session, .. }) = trace.records.first() else {
                panic!("trace must open with SessionStart");
            };
            // Every tagged MAC event in this stream belongs to session k.
            for r in &trace.records {
                if let TraceRecord::Mac(TraceEvent::TxStart { tag: Some(t), .. }) = r {
                    assert_eq!(t.session, *session);
                }
            }
            assert!(
                trace.mac_events().count() > 0,
                "session {k} traced no MAC events"
            );
            assert!(matches!(
                trace.records.last(),
                Some(TraceRecord::SessionEnd { .. })
            ));
        }
        // The two sessions traced different packet streams.
        assert!(outcome.sessions[0].packets_sent > 0);
    }

    #[test]
    fn session_ids_match_single_session_seeds() {
        // Session k of a multi run carries the same trace session id the
        // single-session runner would assign, keeping the two comparable.
        let scenario = tiny_scenario(2);
        assert_eq!(
            session_id(scenario.seed, 1),
            scenario.session_seed(1) ^ 0xC0DE
        );
    }
}
