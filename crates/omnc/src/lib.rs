//! # OMNC — Optimized Multipath Network Coding
//!
//! A faithful reproduction of *"Optimized Multipath Network Coding in Lossy
//! Wireless Networks"* (Xinyu Zhang and Baochun Li, ICDCS 2008), including
//! every baseline the paper evaluates against and the emulation testbed it
//! runs on.
//!
//! OMNC is a rate-control + multipath-routing protocol for unicast sessions
//! in lossy wireless mesh networks. The source streams random linear
//! network coded packets; *all* useful forwarders re-encode and re-broadcast
//! them; and a distributed optimization algorithm (Lagrangian decomposition
//! with subgradient updates) assigns every node its encoding/broadcast rate
//! so that path diversity is exploited without congesting the shared
//! channel.
//!
//! ## Crate layout
//!
//! This is the protocol crate, sitting on top of the substrates (which it
//! re-exports for one-stop usage):
//!
//! * [`gf256`] / [`rlnc`] — GF(2^8) arithmetic and the RLNC codec with
//!   progressive Gauss-Jordan decoding;
//! * [`net_topo`] — topologies, the empirical PHY model, ETX, node
//!   selection;
//! * [`omnc_opt`] — the sUnicast optimization framework and the distributed
//!   rate-control algorithm (the paper's core contribution);
//! * [`drift`] — the discrete-event wireless emulation testbed;
//! * [`simplex_lp`] — the exact LP reference solver.
//!
//! Protocol implementations live in [`proto`]: OMNC itself plus the paper's
//! three comparison points — MORE (SIGCOMM'07), oldMORE (its min-cost
//! precursor) and single-path ETX routing. [`runner`] wires a protocol to a
//! topology and executes one unicast session end-to-end; [`metrics`]
//! computes the paper's evaluation metrics (throughput gain, node/path
//! utility ratios); [`scenario`] holds the paper's experiment
//! configurations; [`multi`] runs N concurrent sessions coupled on one
//! shared mesh (joint rate control, shared queues and channel).
//!
//! ## Quickstart
//!
//! ```
//! use omnc::runner::{run_session, Protocol};
//! use omnc::scenario::Scenario;
//!
//! // A small lossy mesh; one unicast session under each protocol.
//! let scenario = Scenario::small_test();
//! let (topology, src, dst) = scenario.build_session(1);
//! let omnc = run_session(&topology, src, dst, Protocol::Omnc, &scenario.session, 7);
//! let etx = run_session(&topology, src, dst, Protocol::EtxRouting, &scenario.session, 7);
//! assert!(omnc.throughput > 0.0 && etx.throughput > 0.0);
//! println!("throughput gain: {:.2}", omnc.throughput / etx.throughput);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod metrics;
pub mod msg;
pub mod multi;
pub mod proto;
pub mod runner;
pub mod scenario;
pub mod session;
pub mod trace;
pub mod wire;

pub use drift;
pub use gf256;
pub use net_topo;
pub use omnc_opt;
pub use rlnc;
pub use simplex_lp;
pub use telemetry;
