//! Forwarding-credit computations for the MORE and oldMORE baselines.
//!
//! **MORE** (Chachulski et al., SIGCOMM'07) computes, for each forwarder
//! `i`, the expected number of transmissions `z_i` it must make per packet
//! the source injects, from the loss rates and the ETX ordering of the
//! forwarder list; at runtime a node increments its credit counter by
//! `TX_credit = z_i / (expected packets received from upstream per source
//! packet)` for every reception from upstream and transmits while the
//! counter is positive. The heuristic is *congestion-oblivious* — the paper
//! under reproduction shows this is exactly what limits MORE's throughput.
//!
//! **oldMORE** (the MIT-TR precursor, after Lun et al.'s min-cost
//! formulation) instead derives `z` from a minimum-cost flow that delivers
//! one unit of information: it concentrates on the highest-quality path(s),
//! pruning most forwarders — the poor path diversity visible in the paper's
//! Fig. 4.

use net_topo::graph::NodeId;
use net_topo::select::Selection;

/// Per-node forwarding parameters derived at session setup.
#[derive(Debug, Clone, PartialEq)]
pub struct CreditPlan {
    /// Expected transmissions per source packet, by topology node id.
    pub z: Vec<f64>,
    /// Credit increment per upstream reception, by topology node id.
    pub tx_credit: Vec<f64>,
}

impl CreditPlan {
    /// `true` if `node` participates in forwarding at all (z > ε). Nodes
    /// pruned by oldMORE's min-cost solution fail this.
    pub fn is_active(&self, node: NodeId, epsilon: f64) -> bool {
        self.z.get(node.index()).is_some_and(|&z| z > epsilon)
    }
}

/// Computes the MORE credit plan for a forwarder selection.
///
/// Nodes are ordered by ETX distance to the destination (descending); for
/// each node `i` the expected packets it must forward, `L_i`, counts
/// packets from farther nodes `j` that `i` receives and no node closer than
/// `i` receives; `z_i = L_i / P(some closer node hears i)`.
///
/// # Panics
///
/// Panics if the selection is degenerate (no path from source to
/// destination), which `select_forwarders` rules out.
pub fn more_credits(selection: &Selection) -> CreditPlan {
    let g = selection.subgraph();
    let n = g.len();
    // Forwarder list ordered farthest-first, destination last.
    let mut order: Vec<NodeId> = selection.nodes().to_vec();
    order.sort_by(|a, b| {
        let da = selection.dist_to_dst(*a).unwrap_or(f64::INFINITY);
        let db = selection.dist_to_dst(*b).unwrap_or(f64::INFINITY);
        db.partial_cmp(&da)
            .expect("finite distances")
            .then(a.index().cmp(&b.index()))
    });

    let dist = |v: NodeId| selection.dist_to_dst(v).unwrap_or(f64::INFINITY);
    let mut z = vec![0.0; n];

    // Probability that at least one strictly-closer forwarder receives a
    // transmission from `v`.
    let p_progress = |v: NodeId| -> f64 {
        let mut miss = 1.0;
        for l in g.out_links(v) {
            if dist(l.to) < dist(v) {
                miss *= 1.0 - l.p;
            }
        }
        1.0 - miss
    };

    for (idx, &i) in order.iter().enumerate() {
        if i == selection.dst() {
            continue;
        }
        let li = if i == selection.src() {
            1.0 // the source must deliver every packet once
        } else {
            // Packets from farther nodes j that i hears and no closer node hears.
            let mut li = 0.0;
            for &j in &order[..idx] {
                let Some(p_ji) = g.link_prob(j, i) else {
                    continue;
                };
                let mut none_closer = 1.0;
                for l in g.out_links(j) {
                    if dist(l.to) < dist(i) {
                        none_closer *= 1.0 - l.p;
                    }
                }
                li += z[j.index()] * p_ji * none_closer;
            }
            li
        };
        let progress = p_progress(i);
        z[i.index()] = if progress > 1e-12 { li / progress } else { 0.0 };
    }

    CreditPlan {
        tx_credit: tx_credits(selection, &z),
        z,
    }
}

/// Computes the oldMORE credit plan: `z` minimizing total expected
/// transmissions subject to delivering one unit of flow — the min-cost
/// formulation of oldMORE's precursor (Lun et al.).
///
/// The transmission count is charged *per link* (`x_e ≤ z_e · p_e`,
/// `z_i = Σ_e z_e`): delivering flow over a link costs `1/p` transmissions
/// regardless of what other receivers overhear. This is the "corresponding
/// \[constraint\] in \[5, 17\] which favors high-quality paths" that the OMNC
/// paper blames for oldMORE's poor path diversity (Sec. 5, Fig. 4
/// discussion): the optimum concentrates on the single cheapest (ETX-best)
/// path and prunes forwarders on lossy links.
///
/// # Panics
///
/// Panics if the selection does not connect the source to the destination,
/// which `select_forwarders` rules out.
pub fn oldmore_credits(selection: &Selection) -> CreditPlan {
    let g = selection.subgraph();
    let n = g.len();
    // The per-link min-cost program — minimize Σ_e z_e subject to unit flow
    // and x_e ≤ z_e·p_e — charges every unit of flow on link e exactly
    // 1/p_e transmissions, so its optimum is the ETX-shortest path (the LP
    // only splits flow on exact cost ties, which have measure zero on
    // probed topologies). Solving it as a shortest-path problem is
    // equivalent and runs in O(E log V) instead of a dense simplex.
    let sp = net_topo::dijkstra::shortest_paths(g, selection.src(), net_topo::etx::link_cost);
    let path = sp
        .path_to(selection.dst())
        .expect("selections connect the source to the destination");
    let mut z = vec![0.0; n];
    for w in path.windows(2) {
        let p = g
            .link_prob(w[0], w[1])
            .expect("path follows selection links");
        z[w[0].index()] += 1.0 / p;
    }
    CreditPlan {
        tx_credit: tx_credits(selection, &z),
        z,
    }
}

/// Runtime credit increments: `z_i` divided by the expected packets node
/// `i` hears from farther (active) forwarders per source packet.
fn tx_credits(selection: &Selection, z: &[f64]) -> Vec<f64> {
    let g = selection.subgraph();
    let dist = |v: NodeId| selection.dist_to_dst(v).unwrap_or(f64::INFINITY);
    let mut credit = vec![0.0; g.len()];
    for &i in selection.nodes() {
        if i == selection.src() || z[i.index()] <= 1e-12 {
            continue;
        }
        let mut expected_rx = 0.0;
        for l in g.in_links(i) {
            if dist(l.from) > dist(i) {
                expected_rx += z[l.from.index()] * l.p;
            }
        }
        credit[i.index()] = if expected_rx > 1e-12 {
            z[i.index()] / expected_rx
        } else {
            0.0
        };
    }
    credit
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::graph::{Link, Topology};
    use net_topo::select::select_forwarders;

    fn line(probs: &[f64]) -> (Topology, Selection) {
        let mut links = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            links.push(Link {
                from: NodeId::new(i),
                to: NodeId::new(i + 1),
                p,
            });
            links.push(Link {
                from: NodeId::new(i + 1),
                to: NodeId::new(i),
                p,
            });
        }
        let t = Topology::from_links(probs.len() + 1, links).unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(probs.len()));
        (t, sel)
    }

    fn diamond(p: f64) -> (Topology, Selection) {
        let t = Topology::from_links(
            4,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p,
                },
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(2),
                    p,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(3),
                    p,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(3),
                    p,
                },
            ],
        )
        .unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        (t, sel)
    }

    #[test]
    fn more_credits_on_a_lossless_line_are_one() {
        let (_, sel) = line(&[1.0, 1.0]);
        let plan = more_credits(&sel);
        // Each hop transmits exactly once per packet.
        assert!((plan.z[0] - 1.0).abs() < 1e-9);
        assert!((plan.z[1] - 1.0).abs() < 1e-9);
        assert_eq!(plan.z[2], 0.0, "destination never forwards");
    }

    #[test]
    fn more_credits_scale_with_loss() {
        let (_, sel) = line(&[0.5, 0.5]);
        let plan = more_credits(&sel);
        // p = 0.5 per hop: two expected transmissions per delivery.
        assert!((plan.z[0] - 2.0).abs() < 1e-9, "z_src = {}", plan.z[0]);
        assert!((plan.z[1] - 2.0).abs() < 1e-9, "z_relay = {}", plan.z[1]);
        // Relay hears z_src·p = 1 packet per source packet; credit = z/1.
        assert!((plan.tx_credit[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_uses_both_diamond_relays() {
        let (_, sel) = diamond(0.5);
        let plan = more_credits(&sel);
        assert!(plan.z[1] > 0.1 && plan.z[2] > 0.1, "{:?}", plan.z);
        assert!(plan.is_active(NodeId::new(1), 1e-6));
        assert!(plan.is_active(NodeId::new(2), 1e-6));
    }

    #[test]
    fn oldmore_prunes_the_worse_relay() {
        // Asymmetric diamond: relay 1 is on a much better path; min-cost
        // routes everything through it and prunes relay 2.
        let t = Topology::from_links(
            4,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 0.9,
                },
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(2),
                    p: 0.5,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(3),
                    p: 0.9,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(3),
                    p: 0.5,
                },
            ],
        )
        .unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        let plan = oldmore_credits(&sel);
        assert!(
            plan.is_active(NodeId::new(1), 1e-6),
            "good relay active: {:?}",
            plan.z
        );
        assert!(
            !plan.is_active(NodeId::new(2), 1e-6),
            "bad relay pruned: {:?}",
            plan.z
        );
    }

    #[test]
    fn oldmore_min_cost_matches_etx_on_a_line() {
        let (_, sel) = line(&[0.5, 0.8]);
        let plan = oldmore_credits(&sel);
        // Min transmissions: 1/p per hop.
        assert!((plan.z[0] - 2.0).abs() < 1e-6);
        assert!((plan.z[1] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn more_beats_oldmore_in_node_coverage() {
        // On a symmetric diamond MORE keeps both relays; oldMORE keeps the
        // minimum needed for one unit of flow.
        let (_, sel) = diamond(0.6);
        let more = more_credits(&sel);
        let old = oldmore_credits(&sel);
        let active = |plan: &CreditPlan| {
            sel.nodes()
                .iter()
                .filter(|&&v| v != sel.dst() && plan.is_active(v, 1e-6))
                .count()
        };
        assert!(active(&more) >= active(&old));
    }
}
