//! Single-path ETX routing (Couto et al., MobiCom'03) — the paper's
//! traditional baseline.
//!
//! Blocks travel uncoded along the ETX-shortest path, hop by hop, over the
//! unicast MAC; reliability comes from MAC-level retransmissions ("more
//! efficient than the end-to-end re-transmission", Sec. 5). The source
//! injects blocks at the CBR rate; each relay forwards to its fixed next
//! hop.

use drift::{Behavior, Ctx, Dest, Outgoing, PacketTag};
use net_topo::graph::NodeId;
use rlnc::GenerationId;

use crate::msg::Msg;
use crate::session::SessionConfig;

const TICK: u64 = 0;

/// A node on the ETX path (source or relay): forwards blocks to `next_hop`
/// with persistent retransmissions.
#[derive(Debug)]
pub struct EtxForwarder {
    cfg: SessionConfig,
    next_hop: NodeId,
    /// `Some(dst)` on the source: inject CBR traffic addressed to `dst`.
    inject_for: Option<NodeId>,
    next_seq: u64,
    /// Retransmissions used so far per in-flight block (bounded by
    /// `cfg.max_retransmissions`).
    retries: u32,
    /// Blocks dropped after exhausting the retransmission budget.
    pub blocks_dropped: u64,
    /// Blocks forwarded successfully (MAC-acknowledged).
    pub blocks_forwarded: u64,
    /// Trace identity: `(session id, end-to-end origin)`. When set, every
    /// forwarded block carries a [`PacketTag`] reconstructed from its
    /// sequence number, so retransmissions of the same block share one
    /// identity across hops.
    session: Option<(u64, NodeId)>,
}

impl EtxForwarder {
    /// Creates a pure relay forwarding to `next_hop`.
    pub fn relay(cfg: SessionConfig, next_hop: NodeId) -> Self {
        EtxForwarder {
            cfg,
            next_hop,
            inject_for: None,
            next_seq: 0,
            retries: 0,
            blocks_dropped: 0,
            blocks_forwarded: 0,
            session: None,
        }
    }

    /// Creates the source: injects blocks for `dst` at the CBR rate and
    /// forwards them to `next_hop`.
    pub fn source(cfg: SessionConfig, next_hop: NodeId, dst: NodeId) -> Self {
        EtxForwarder {
            inject_for: Some(dst),
            ..EtxForwarder::relay(cfg, next_hop)
        }
    }

    /// Enables causal tracing: tags every forwarded block with `session`
    /// and the path's end-to-end `origin` (the session source node).
    pub fn with_session(mut self, session: u64, origin: NodeId) -> Self {
        self.session = Some((session, origin));
        self
    }

    /// The tag for the block with sequence number `seq`, if tracing is
    /// enabled. Uncoded blocks have no generation; generation 0 is used as
    /// the conventional placeholder.
    fn tag_for(&self, seq: u64) -> Option<PacketTag> {
        self.session.map(|(session, origin)| PacketTag {
            session,
            generation: GenerationId::new(0),
            seq,
            origin,
        })
    }

    fn forward(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        let tag = match &msg {
            Msg::Block { seq, .. } => self.tag_for(*seq),
            _ => None,
        };
        ctx.enqueue(Outgoing {
            msg,
            wire_len: self.cfg.block_wire_len(),
            dest: Dest::Unicast(self.next_hop),
            tag,
        });
    }
}

impl Behavior<Msg> for EtxForwarder {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.inject_for.is_some() {
            ctx.set_timer(0.0, TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
        let Some(dst) = self.inject_for else { return };
        // CBR: one block every block_bytes / cbr_rate seconds.
        let interval = self.cfg.wire_block_size as f64 / self.cfg.cbr_rate;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.forward(ctx, Msg::Block { seq, dst });
        ctx.set_timer(interval, TICK);
    }

    fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: &Msg) {
        if let Msg::Block { .. } = msg {
            self.forward(ctx, msg.clone());
        }
    }

    fn on_unicast_result(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        _to: NodeId,
        msg: &Msg,
        delivered: bool,
    ) {
        if delivered {
            self.retries = 0;
            self.blocks_forwarded += 1;
        } else if self.retries < self.cfg.max_retransmissions {
            // MAC-level retransmission: the block goes back on the queue.
            self.retries += 1;
            self.forward(ctx, msg.clone());
        } else {
            self.retries = 0;
            self.blocks_dropped += 1;
        }
    }
}

/// The ETX destination: counts delivered blocks.
#[derive(Debug, Default)]
pub struct EtxDestination {
    /// Blocks delivered end-to-end.
    pub blocks_delivered: u64,
    /// Highest sequence number seen (for loss diagnostics).
    pub max_seq: u64,
}

impl EtxDestination {
    /// Creates the destination.
    pub fn new() -> Self {
        EtxDestination::default()
    }

    /// Delivered application bytes given the configured block size.
    pub fn bytes_delivered(&self, cfg: &SessionConfig) -> f64 {
        self.blocks_delivered as f64 * cfg.wire_block_size as f64
    }
}

impl Behavior<Msg> for EtxDestination {
    fn on_receive(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: &Msg) {
        if let Msg::Block { seq, .. } = msg {
            self.blocks_delivered += 1;
            self.max_seq = self.max_seq.max(*seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift::{MacModel, Simulator};
    use net_topo::graph::{Link, Topology};

    fn line(p: f64, hops: usize) -> Topology {
        let mut links = Vec::new();
        for i in 0..hops {
            links.push(Link {
                from: NodeId::new(i),
                to: NodeId::new(i + 1),
                p,
            });
            links.push(Link {
                from: NodeId::new(i + 1),
                to: NodeId::new(i),
                p,
            });
        }
        Topology::from_links(hops + 1, links).unwrap()
    }

    fn run_line(p: f64, hops: usize, seed: u64) -> (f64, u64) {
        let cfg = SessionConfig::tiny();
        let topo = line(p, hops);
        let dst = NodeId::new(hops);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(cfg.capacity), seed);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(EtxForwarder::source(cfg, NodeId::new(1), dst)),
        );
        for i in 1..hops {
            sim.set_behavior(
                NodeId::new(i),
                Box::new(EtxForwarder::relay(cfg, NodeId::new(i + 1))),
            );
        }
        sim.set_behavior(dst, Box::new(EtxDestination::new()));
        sim.run_until(cfg.duration);
        // Delivered blocks equal packets_received at the destination (the
        // only packets addressed to it are blocks, and MAC feedback is
        // reliable so there are no duplicates).
        (cfg.duration, sim.stats(dst).packets_received)
    }

    #[test]
    fn delivers_blocks_end_to_end() {
        let (_, delivered) = run_line(0.8, 3, 4);
        assert!(delivered > 10, "only {delivered} blocks delivered");
    }

    #[test]
    fn lossier_links_deliver_less() {
        let (_, good) = run_line(0.9, 3, 4);
        let (_, bad) = run_line(0.3, 3, 4);
        assert!(
            good > bad,
            "throughput should degrade with loss: good {good} vs bad {bad}"
        );
    }

    #[test]
    fn retransmissions_preserve_reliability() {
        // With persistent retransmissions and moderate loss, essentially
        // every injected block arrives (CBR is below path capacity).
        let cfg = SessionConfig {
            cbr_rate: 1.2e3,
            ..SessionConfig::tiny()
        };
        let topo = line(0.7, 2);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(cfg.capacity), 9);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(EtxForwarder::source(cfg, NodeId::new(1), NodeId::new(2))),
        );
        sim.set_behavior(
            NodeId::new(1),
            Box::new(EtxForwarder::relay(cfg, NodeId::new(2))),
        );
        sim.set_behavior(NodeId::new(2), Box::new(EtxDestination::new()));
        sim.run_until(cfg.duration);
        let delivered = sim.stats(NodeId::new(2)).packets_received as f64;
        let injected = cfg.duration * cfg.cbr_rate / cfg.wire_block_size as f64;
        assert!(
            delivered / injected > 0.8,
            "delivered {delivered} of ~{injected} injected"
        );
    }
}
