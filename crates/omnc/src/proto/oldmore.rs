//! oldMORE — the unpublished precursor of MORE (MIT-CSAIL-TR-2006-049),
//! built on Lun et al.'s min-cost formulation.
//!
//! Behaviorally it *is* MORE with different credits: the per-node expected
//! transmission counts come from a minimum-cost flow that concentrates on
//! the highest-quality path and prunes forwarders on lossy links (the low
//! node/path utility ratios of the paper's Fig. 4), and there is still no
//! rate control. The behaviours are therefore aliases of the MORE ones; the
//! difference is encapsulated in [`crate::proto::credits::oldmore_credits`].
//! Causal packet tagging ([`drift::PacketTag`]) is inherited from the MORE
//! behaviours too: oldMORE traces identically under `omnc-sim --trace`.

pub use crate::proto::more::{MoreDestination, MoreRelay, MoreSource};

/// oldMORE source (identical runtime behaviour to MORE's).
pub type OldMoreSource = MoreSource;
/// oldMORE relay (MORE's relay, driven by min-cost credits).
pub type OldMoreRelay = MoreRelay;
/// oldMORE destination.
pub type OldMoreDestination = MoreDestination;

#[cfg(test)]
mod tests {
    use crate::proto::credits::{more_credits, oldmore_credits};
    use net_topo::graph::{Link, NodeId, Topology};
    use net_topo::select::select_forwarders;

    /// The defining difference: on an asymmetric diamond oldMORE prunes the
    /// lossy relay that MORE keeps.
    #[test]
    fn oldmore_is_more_with_pruned_credits() {
        let t = Topology::from_links(
            4,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 0.9,
                },
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(2),
                    p: 0.5,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(3),
                    p: 0.9,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(3),
                    p: 0.5,
                },
            ],
        )
        .unwrap();
        let sel = select_forwarders(&t, NodeId::new(0), NodeId::new(3));
        let more = more_credits(&sel);
        let old = oldmore_credits(&sel);
        assert!(more.is_active(NodeId::new(2), 1e-6));
        assert!(!old.is_active(NodeId::new(2), 1e-6));
        // Both keep the good relay.
        assert!(more.is_active(NodeId::new(1), 1e-6));
        assert!(old.is_active(NodeId::new(1), 1e-6));
    }
}
