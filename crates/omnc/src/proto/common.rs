//! Pieces shared by every coded protocol: deterministic source data,
//! generation lifecycle, destination decoding and link-usage accounting.

use std::collections::BTreeMap;

use drift::{Ctx, Dest, Outgoing, PacketTag};
use net_topo::graph::NodeId;
use rand::{Rng, SeedableRng};
use rlnc::{Decoder, Encoder, Generation, GenerationId};
use telemetry::{Profiler, Series, TimeSeries};

use crate::msg::Msg;
use crate::session::{SessionConfig, SessionShared};
use crate::trace::Absorbed;

/// Deterministically generates the application payload of a generation:
/// the same `(session_seed, generation)` pair always yields the same bytes,
/// so destinations can verify recovered data without shipping it around.
pub fn source_data(cfg: &SessionConfig, session_seed: u64, generation: GenerationId) -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        session_seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(generation.as_u64()),
    );
    let mut data = vec![0u8; cfg.generation_config().payload_len()];
    rng.fill(&mut data[..]);
    data
}

/// Builds the [`Generation`] for `generation`.
///
/// # Panics
///
/// Panics only if the session config is degenerate (zero-sized), which
/// constructors rule out.
pub fn build_generation(
    cfg: &SessionConfig,
    session_seed: u64,
    generation: GenerationId,
) -> Generation {
    Generation::from_bytes(
        generation,
        cfg.generation_config(),
        &source_data(cfg, session_seed, generation),
    )
    .expect("source data is sized to the generation")
}

/// Source-side generation state machine shared by OMNC, MORE and oldMORE:
/// tracks the active generation (via the session ledger) and hands out
/// freshly coded packets, respecting CBR availability.
#[derive(Debug)]
pub struct CodedSource {
    cfg: SessionConfig,
    ledger: SessionShared,
    session_seed: u64,
    current: Option<Generation>,
    profiler: Profiler,
    /// Coded packets emitted (for utility metrics).
    pub packets_emitted: u64,
}

impl CodedSource {
    /// Creates the state machine; the first generation is built lazily.
    pub fn new(cfg: SessionConfig, ledger: SessionShared, session_seed: u64) -> Self {
        CodedSource {
            cfg,
            ledger,
            session_seed,
            current: None,
            profiler: Profiler::disabled(),
            packets_emitted: 0,
        }
    }

    /// Attaches a profiler: every emission records `encode` spans with the
    /// kernel's share nested beneath.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Returns a freshly coded packet for the active generation, or `None`
    /// if the CBR application has not yet produced it (the source then
    /// stays silent, as the paper's CBR model dictates).
    pub fn next_packet(&mut self, now: f64, rng: &mut impl Rng) -> Option<Msg> {
        let active = self.ledger.active_generation();
        if self.current.as_ref().map(Generation::id) != Some(active) {
            if now + 1e-12 < self.cfg.generation_available_at(active) {
                return None; // CBR has not produced this generation yet
            }
            self.current = Some(build_generation(&self.cfg, self.session_seed, active));
        }
        let generation = self.current.as_ref().expect("just ensured");
        let packet = Encoder::new(generation)
            .with_profiler(self.profiler.clone())
            .emit(rng);
        self.packets_emitted += 1;
        Some(Msg::Coded(packet))
    }

    /// Like [`CodedSource::next_packet`], additionally minting the packet's
    /// causal identity: `origin` is the coding node, the sequence number is
    /// the per-source emission counter, and the session id is the session
    /// seed (unique per run).
    pub fn next_tagged_packet(
        &mut self,
        now: f64,
        rng: &mut impl Rng,
        origin: NodeId,
    ) -> Option<(Msg, PacketTag)> {
        let msg = self.next_packet(now, rng)?;
        let tag = PacketTag {
            session: self.session_seed,
            generation: msg.generation().expect("coded packets carry one"),
            seq: self.packets_emitted - 1,
            origin,
        };
        Some((msg, tag))
    }

    /// Time at which the active generation becomes available, for timer
    /// scheduling when the source is ahead of the application.
    pub fn active_available_at(&self) -> f64 {
        self.cfg
            .generation_available_at(self.ledger.active_generation())
    }
}

/// Destination-side state shared by all coded protocols: a progressive
/// decoder per active generation, completion signalling through the ledger
/// and optional payload verification.
#[derive(Debug)]
pub struct CodedDestination {
    cfg: SessionConfig,
    ledger: SessionShared,
    session_seed: u64,
    decoder: Decoder,
    verify_payload: bool,
    profiler: Profiler,
    timeline: TimeSeries,
    timeline_scope: String,
    /// Innovative packets received per upstream node (for Fig. 4 metrics).
    pub innovative_from: BTreeMap<NodeId, u64>,
    /// All coded packets received per upstream node.
    pub received_from: BTreeMap<NodeId, u64>,
    /// Number of generations whose recovered payload failed verification
    /// (must stay 0; tested).
    pub verification_failures: u64,
    /// Per-packet absorption outcomes, in arrival order (the decoder-side
    /// half of the causal trace; drained by traced runners).
    pub absorptions: Vec<Absorbed>,
}

impl CodedDestination {
    /// Rank of the in-progress generation (partial credit at session end).
    pub fn partial_rank(&self) -> usize {
        self.decoder.rank()
    }

    /// Creates the destination state. `verify_payload` additionally checks
    /// every recovered generation against the deterministic source data
    /// (used when `payload_block_size` carries real payload).
    pub fn new(
        cfg: SessionConfig,
        ledger: SessionShared,
        session_seed: u64,
        verify_payload: bool,
    ) -> Self {
        let decoder = Decoder::new(GenerationId::new(0), cfg.generation_config());
        CodedDestination {
            cfg,
            ledger,
            session_seed,
            decoder,
            verify_payload,
            profiler: Profiler::disabled(),
            timeline: TimeSeries::disabled(),
            timeline_scope: String::new(),
            innovative_from: BTreeMap::new(),
            received_from: BTreeMap::new(),
            verification_failures: 0,
            absorptions: Vec::new(),
        }
    }

    /// Attaches a profiler: absorptions record `decode` spans (elimination,
    /// rank updates, kernel shares) for this and every later generation's
    /// decoder.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.decoder.set_profiler(profiler.clone());
        self.profiler = profiler;
    }

    /// Attaches a timeline recorder: every absorbed packet samples the
    /// decoder's rank into a per-generation series
    /// `<scope>/rank/g<N>`, giving `omnc-report timeline` its
    /// time-to-rank convergence axis. A disabled recorder keeps the
    /// destination on the zero-cost path.
    pub fn set_timeline(&mut self, timeline: TimeSeries, scope: &str) {
        self.timeline = timeline;
        self.timeline_scope = scope.to_owned();
        let series = self.rank_series(self.decoder.generation());
        self.decoder.set_rank_series(series);
    }

    /// The rank-progress series for `generation` (no-op when disabled).
    fn rank_series(&self, generation: GenerationId) -> Series {
        if !self.timeline.is_enabled() {
            return Series::disabled();
        }
        let tail = format!("rank/g{}", generation.as_u64());
        let name = if self.timeline_scope.is_empty() {
            tail
        } else {
            format!("{}/{tail}", self.timeline_scope)
        };
        self.timeline.series(&name)
    }

    /// A decoder for `generation` inheriting the attached profiler and
    /// timeline recorder.
    fn fresh_decoder(&self, generation: GenerationId) -> Decoder {
        let mut decoder = Decoder::new(generation, self.cfg.generation_config());
        decoder.set_profiler(self.profiler.clone());
        decoder.set_rank_series(self.rank_series(generation));
        decoder
    }

    /// Feeds a received coded packet; returns `true` if it completed the
    /// active generation. `node` is the receiving node's own id and `tag`
    /// the incoming packet's causal identity (both feed the [`Absorbed`]
    /// record; untraced callers can pass `None`).
    pub fn receive(
        &mut self,
        now: f64,
        node: NodeId,
        from: NodeId,
        msg: &Msg,
        tag: Option<PacketTag>,
    ) -> bool {
        let Msg::Coded(packet) = msg else {
            return false;
        };
        *self.received_from.entry(from).or_insert(0) += 1;
        let active = self.ledger.active_generation();
        if packet.generation() != active {
            return false; // stale (or impossibly future) generation
        }
        if self.decoder.generation() != active {
            self.decoder = self.fresh_decoder(active);
        }
        let Ok(result) = self.decoder.absorb(packet) else {
            return false;
        };
        let innovative = result.is_innovative();
        let rank_after = self.decoder.rank();
        self.decoder.record_rank(now);
        self.ledger.record_packet(innovative);
        if innovative {
            *self.innovative_from.entry(from).or_insert(0) += 1;
        }
        let completed = self.decoder.is_complete();
        self.absorptions.push(Absorbed {
            at: now,
            node,
            from,
            tag,
            generation: active,
            innovative,
            rank_after,
            completed,
        });
        if completed {
            if self.verify_payload {
                let recovered = self.decoder.recover().expect("complete");
                let expected = source_data(&self.cfg, self.session_seed, active);
                if recovered != expected {
                    self.verification_failures += 1;
                }
            }
            self.ledger.complete_generation(active, now);
            let next = self.ledger.active_generation();
            self.decoder = self.fresh_decoder(next);
            return true;
        }
        false
    }
}

/// Enqueues a coded broadcast packet, charging the configured wire size and
/// attaching the packet's causal identity when the protocol minted one.
pub fn enqueue_coded(
    ctx: &mut Ctx<'_, Msg>,
    cfg: &SessionConfig,
    msg: Msg,
    tag: Option<PacketTag>,
) {
    debug_assert!(msg.is_coded());
    ctx.enqueue(Outgoing {
        msg,
        wire_len: cfg.coded_wire_len(),
        dest: Dest::Broadcast,
        tag,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionLedger;

    fn cfg() -> SessionConfig {
        SessionConfig::tiny()
    }

    #[test]
    fn source_data_is_deterministic_and_generation_dependent() {
        let c = cfg();
        assert_eq!(
            source_data(&c, 1, GenerationId::new(0)),
            source_data(&c, 1, GenerationId::new(0))
        );
        assert_ne!(
            source_data(&c, 1, GenerationId::new(0)),
            source_data(&c, 1, GenerationId::new(1))
        );
        assert_ne!(
            source_data(&c, 1, GenerationId::new(0)),
            source_data(&c, 2, GenerationId::new(0))
        );
    }

    #[test]
    fn coded_source_respects_cbr_availability() {
        let c = cfg();
        let ledger = SessionLedger::shared();
        let mut src = CodedSource::new(c, ledger.clone(), 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        // Generation 0 is available at t=0.
        assert!(src.next_packet(0.0, &mut rng).is_some());
        // Jump to generation 1 before the app produced it: silent.
        ledger.complete_generation(GenerationId::new(0), 0.0);
        assert!(src.next_packet(0.0, &mut rng).is_none());
        let t1 = src.active_available_at();
        assert!(src.next_packet(t1, &mut rng).is_some());
    }

    #[test]
    fn destination_decodes_and_advances_generations() {
        let c = cfg();
        let ledger = SessionLedger::shared();
        let mut src = CodedSource::new(c, ledger.clone(), 9);
        let mut dst = CodedDestination::new(c, ledger.clone(), 9, true);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut completions = 0;
        let mut t = 0.0;
        while completions < 3 {
            t += 0.1;
            if let Some(msg) = src.next_packet(t, &mut rng) {
                if dst.receive(t, NodeId::new(1), NodeId::new(0), &msg, None) {
                    completions += 1;
                }
            }
        }
        assert_eq!(ledger.generations_decoded(), 3);
        assert_eq!(dst.verification_failures, 0);
        let (innov, _) = ledger.packet_counts();
        assert_eq!(innov, 3 * c.generation_blocks as u64);
        assert_eq!(dst.innovative_from[&NodeId::new(0)], innov);
    }

    #[test]
    fn stale_generation_packets_are_ignored() {
        let c = cfg();
        let ledger = SessionLedger::shared();
        let mut src = CodedSource::new(c, ledger.clone(), 9);
        let mut dst = CodedDestination::new(c, ledger.clone(), 9, false);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let stale = src.next_packet(0.0, &mut rng).unwrap();
        ledger.complete_generation(GenerationId::new(0), 0.0); // gen 0 expires
        assert!(!dst.receive(1.0, NodeId::new(1), NodeId::new(0), &stale, None));
        assert_eq!(ledger.packet_counts(), (0, 0));
        assert!(dst.absorptions.is_empty(), "stale packets are not absorbed");
    }

    #[test]
    fn tagged_sources_mint_unique_sequential_identities() {
        let c = cfg();
        let ledger = SessionLedger::shared();
        let mut src = CodedSource::new(c, ledger, 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let origin = NodeId::new(4);
        let (_, t0) = src.next_tagged_packet(0.0, &mut rng, origin).unwrap();
        let (_, t1) = src.next_tagged_packet(0.0, &mut rng, origin).unwrap();
        assert_eq!(t0.session, 9);
        assert_eq!(t0.origin, origin);
        assert_eq!((t0.seq, t1.seq), (0, 1));
        assert_eq!(t0.generation, GenerationId::new(0));
    }

    #[test]
    fn destination_timeline_tracks_rank_progress_per_generation() {
        let c = cfg();
        let ledger = SessionLedger::shared();
        let mut src = CodedSource::new(c, ledger.clone(), 9);
        let mut dst = CodedDestination::new(c, ledger.clone(), 9, false);
        let timeline = TimeSeries::enabled(0.25, 64);
        dst.set_timeline(timeline.clone(), "s0");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut completions = 0;
        let mut t = 0.0;
        let mut absorbed = 0u64;
        while completions < 2 {
            t += 0.05;
            if let Some(msg) = src.next_packet(t, &mut rng) {
                let before = ledger.packet_counts();
                if dst.receive(t, NodeId::new(1), NodeId::new(0), &msg, None) {
                    completions += 1;
                }
                if ledger.packet_counts() != before {
                    absorbed += 1;
                }
            }
        }
        let report = timeline.snapshot();
        let g0 = report.series("s0/rank/g0").expect("generation-0 series");
        let g1 = report.series("s0/rank/g1").expect("generation-1 series");
        assert_eq!(g0.total_count() + g1.total_count(), absorbed);
        let peak = |s: &telemetry::TimelineSeries| {
            s.buckets.iter().map(|b| b.max).fold(f64::MIN, f64::max)
        };
        assert_eq!(peak(g0), c.generation_blocks as f64);
        assert_eq!(peak(g1), c.generation_blocks as f64);
    }

    #[test]
    fn destination_accumulates_absorption_records() {
        let c = cfg();
        let ledger = SessionLedger::shared();
        let mut src = CodedSource::new(c, ledger.clone(), 9);
        let mut dst = CodedDestination::new(c, ledger, 9, false);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let me = NodeId::new(2);
        let upstream = NodeId::new(1);
        let mut completed_seen = false;
        for i in 0..(4 * c.generation_blocks) {
            let (msg, tag) = src
                .next_tagged_packet(i as f64 * 0.01, &mut rng, NodeId::new(0))
                .unwrap();
            if dst.receive(i as f64 * 0.01, me, upstream, &msg, Some(tag)) {
                completed_seen = true;
                break;
            }
        }
        assert!(completed_seen, "one generation should complete");
        let innovative: usize = dst.absorptions.iter().filter(|a| a.innovative).count();
        assert_eq!(innovative, c.generation_blocks);
        let last = dst.absorptions.last().unwrap();
        assert!(last.completed && last.innovative);
        assert_eq!(last.rank_after, c.generation_blocks);
        assert_eq!(last.node, me);
        assert_eq!(last.from, upstream);
        assert_eq!(last.tag.unwrap().origin, NodeId::new(0));
        // Ranks are non-decreasing within the generation.
        for w in dst.absorptions.windows(2) {
            assert!(w[1].rank_after >= w[0].rank_after);
        }
    }
}
