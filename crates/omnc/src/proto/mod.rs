//! Protocol implementations: OMNC and the paper's three baselines.
//!
//! | Protocol | Routing | Rate control | Coding |
//! |---|---|---|---|
//! | [`omnc`] | all useful forwarders (broadcast DAG) | distributed optimization (Sec. 3) | RLNC + re-encoding |
//! | [`more`] | all useful forwarders | none — credit heuristic (SIGCOMM'07) | RLNC + re-encoding |
//! | [`oldmore`] | min-cost (prunes lossy paths) | none | RLNC + re-encoding |
//! | [`etx_routing`] | single ETX-best path | none — MAC retransmissions | store-and-forward |

pub mod common;
pub mod credits;
pub mod etx_routing;
pub mod more;
pub mod oldmore;
pub mod omnc;
