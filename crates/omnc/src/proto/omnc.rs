//! The OMNC protocol proper (Secs. 3–4 of the paper).
//!
//! Every participating node broadcasts coded packets at the rate assigned by
//! the distributed rate-control algorithm: the source encodes fresh packets
//! from the active generation, relays re-encode their buffered innovative
//! packets, and the destination decodes progressively. Reliability comes
//! entirely from the rateless code — there are no link-level
//! retransmissions.

use std::collections::BTreeMap;

use drift::{Behavior, Ctx, PacketTag};
use net_topo::graph::NodeId;
use rlnc::{GenerationId, Recoder};

use crate::msg::Msg;
use crate::proto::common::{enqueue_coded, CodedDestination, CodedSource};
use crate::session::{SessionConfig, SessionShared};

/// Timer token used by the packet-generation pacers.
const TICK: u64 = 0;

/// Upper bound on locally queued packets: generation is paced to the MAC
/// service rate, so the queue only ever holds the packet being assembled
/// plus at most one in waiting. (OMNC "matches the encoding and broadcast
/// rate of each node with its channel status" — Fig. 3 confirms queues
/// near zero.)
const QUEUE_CAP: usize = 2;

/// OMNC source behavior: paced encoding of the active generation.
#[derive(Debug)]
pub struct OmncSource {
    state: CodedSource,
    /// Assigned broadcast rate in bytes/second.
    rate: f64,
}

impl OmncSource {
    /// Creates the source with its optimized broadcast rate (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(cfg: SessionConfig, ledger: SessionShared, session_seed: u64, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be non-negative");
        OmncSource {
            state: CodedSource::new(cfg, ledger, session_seed),
            rate,
        }
    }

    /// Coded packets emitted so far.
    pub fn packets_emitted(&self) -> u64 {
        self.state.packets_emitted
    }

    /// Attaches a profiler to the encoding path.
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.state.set_profiler(profiler);
    }

    fn interval(&self) -> Option<f64> {
        (self.rate > 0.0).then(|| self.state.config().coded_wire_len() as f64 / self.rate)
    }
}

impl Behavior<Msg> for OmncSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.interval().is_some() {
            ctx.set_timer(0.0, TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
        let Some(interval) = self.interval() else {
            return;
        };
        let now = ctx.now().as_secs();
        if ctx.queue_len() < QUEUE_CAP {
            let cfg = *self.state.config();
            let origin = ctx.node();
            if let Some((msg, tag)) = self.state.next_tagged_packet(now, ctx.rng(), origin) {
                enqueue_coded(ctx, &cfg, msg, Some(tag));
            } else {
                // CBR has not produced the next generation: wake up then.
                let wake = (self.state.active_available_at() - now).max(interval);
                ctx.set_timer(wake, TICK);
                return;
            }
        }
        ctx.set_timer(interval, TICK);
    }
}

/// OMNC relay behavior: buffers innovative packets and re-broadcasts fresh
/// combinations at its assigned rate.
#[derive(Debug)]
pub struct OmncRelay {
    cfg: SessionConfig,
    rate: f64,
    buffer: Recoder,
    profiler: telemetry::Profiler,
    /// Session id, learned from the first tagged packet heard on the air
    /// (re-encoded emissions carry it forward).
    session: Option<u64>,
    /// Innovative packets received per upstream node (Fig. 4 metrics).
    pub innovative_from: BTreeMap<NodeId, u64>,
    /// All coded packets received per upstream node.
    pub received_from: BTreeMap<NodeId, u64>,
    /// Re-encoded packets emitted.
    pub packets_emitted: u64,
}

impl OmncRelay {
    /// Creates a relay with its assigned broadcast rate (bytes/s). A rate
    /// of zero makes the relay a pure listener.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn new(cfg: SessionConfig, rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be non-negative");
        let buffer = Recoder::new(GenerationId::new(0), cfg.generation_config());
        OmncRelay {
            cfg,
            rate,
            buffer,
            profiler: telemetry::Profiler::disabled(),
            session: None,
            innovative_from: BTreeMap::new(),
            received_from: BTreeMap::new(),
            packets_emitted: 0,
        }
    }

    /// The relay's current decoding rank.
    pub fn rank(&self) -> usize {
        self.buffer.rank()
    }

    /// Attaches a profiler to the recode/innovation-filter path (survives
    /// generation advances).
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.buffer.set_profiler(profiler.clone());
        self.profiler = profiler;
    }

    /// Advances to a newer generation when evidence arrives on the air:
    /// "either an ACK or a coded packet with a higher generation ID will
    /// dictate the intermediate nodes to discard packets belonging to the
    /// expired generation" (Sec. 4). Until then, already-queued packets of
    /// the old generation still consume channel time — the cost of large
    /// queues that the paper's Fig. 3 discussion highlights.
    fn advance_generation(&mut self, ctx: &mut Ctx<'_, Msg>, newer: GenerationId) {
        if newer > self.buffer.generation() {
            self.buffer = Recoder::new(newer, self.cfg.generation_config());
            self.buffer.set_profiler(self.profiler.clone());
            ctx.retain_queue(|m| m.generation() == Some(newer));
        }
    }
}

impl Behavior<Msg> for OmncRelay {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.rate > 0.0 {
            ctx.set_timer(0.0, TICK);
        }
    }

    fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        if let Some(tag) = ctx.incoming_tag() {
            self.session.get_or_insert(tag.session);
        }
        if let Some(generation) = msg.generation() {
            self.advance_generation(ctx, generation);
        }
        let Msg::Coded(packet) = msg else { return };
        *self.received_from.entry(from).or_insert(0) += 1;
        if packet.generation() != self.buffer.generation() {
            return;
        }
        // A relay accepts an incoming packet only if it is innovative
        // (Sec. 3.1); a full relay rejects everything.
        if let Ok(result) = self.buffer.absorb(packet) {
            if result.is_innovative() {
                *self.innovative_from.entry(from).or_insert(0) += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
        let interval = self.cfg.coded_wire_len() as f64 / self.rate;
        if self.buffer.rank() > 0 && ctx.queue_len() < QUEUE_CAP {
            let packet = {
                let rng = ctx.rng();
                self.buffer.emit(rng).expect("rank > 0")
            };
            let cfg = self.cfg;
            // Re-encoded packets get a *fresh* identity: the relay is their
            // coding origin (the tag traces coding causality, not routing).
            let tag = PacketTag {
                session: self.session.unwrap_or(0),
                generation: packet.generation(),
                seq: self.packets_emitted,
                origin: ctx.node(),
            };
            self.packets_emitted += 1;
            enqueue_coded(ctx, &cfg, Msg::Coded(packet), Some(tag));
        }
        ctx.set_timer(interval, TICK);
    }
}

/// OMNC destination behavior: progressive decoding + instant-ACK ledger.
#[derive(Debug)]
pub struct OmncDestination {
    state: CodedDestination,
}

impl OmncDestination {
    /// Creates the destination. `verify_payload` cross-checks recovered
    /// generations against the deterministic source data.
    pub fn new(
        cfg: SessionConfig,
        ledger: SessionShared,
        session_seed: u64,
        verify_payload: bool,
    ) -> Self {
        OmncDestination {
            state: CodedDestination::new(cfg, ledger, session_seed, verify_payload),
        }
    }

    /// Access to the shared destination state (metrics).
    pub fn state(&self) -> &CodedDestination {
        &self.state
    }

    /// Attaches a profiler to the decoding path.
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.state.set_profiler(profiler);
    }

    /// Attaches a timeline recorder to the decoding path (per-generation
    /// rank-progress series under `scope`).
    pub fn set_timeline(&mut self, timeline: telemetry::TimeSeries, scope: &str) {
        self.state.set_timeline(timeline, scope);
    }
}

impl Behavior<Msg> for OmncDestination {
    fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        let now = ctx.now().as_secs();
        let node = ctx.node();
        let tag = ctx.incoming_tag();
        self.state.receive(now, node, from, msg, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionLedger;
    use drift::{MacModel, Simulator};
    use net_topo::graph::{Link, Topology};

    /// Two-hop line: source → relay → destination, each link p = 0.7.
    #[test]
    fn omnc_delivers_over_a_relay() {
        let cfg = SessionConfig::tiny();
        let p = 0.7;
        let topo = Topology::from_links(
            3,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(2),
                    p,
                },
            ],
        )
        .unwrap();
        let ledger = SessionLedger::shared();
        // Hand-assigned feasible rates: source and relay each get ~C/2.
        let rates = vec![cfg.capacity / 2.0, cfg.capacity / 2.0, 0.0];
        let mac = MacModel::rate_limited(rates, cfg.capacity);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> = Simulator::new(&topo, mac, 5);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(OmncSource::new(cfg, ledger.clone(), 77, cfg.capacity / 2.0)),
        );
        sim.set_behavior(
            NodeId::new(1),
            Box::new(OmncRelay::new(cfg, cfg.capacity / 2.0)),
        );
        sim.set_behavior(
            NodeId::new(2),
            Box::new(OmncDestination::new(cfg, ledger.clone(), 77, true)),
        );
        sim.run_until(cfg.duration);

        let decoded = ledger.generations_decoded();
        assert!(decoded >= 2, "only {decoded} generations decoded");
        // Verified payloads: the data that arrives is the data that was sent.
        // (Destination boxed as dyn; verification failures counted inside.)
        let throughput = ledger.throughput(cfg.generation_app_bytes(), cfg.duration);
        assert!(throughput > 0.0);
        // Queues stay small under rate control (the Fig. 3 property).
        assert!(sim.queue_average(NodeId::new(0)) < 3.0);
        assert!(sim.queue_average(NodeId::new(1)) < 3.0);
    }

    #[test]
    fn relay_with_zero_rate_stays_silent() {
        let cfg = SessionConfig::tiny();
        let topo = Topology::from_links(
            3,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p: 1.0,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(2),
                    p: 1.0,
                },
            ],
        )
        .unwrap();
        let ledger = SessionLedger::shared();
        let mac = MacModel::rate_limited(vec![cfg.capacity, 0.0, 0.0], cfg.capacity);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> = Simulator::new(&topo, mac, 6);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(OmncSource::new(cfg, ledger.clone(), 1, cfg.capacity)),
        );
        sim.set_behavior(NodeId::new(1), Box::new(OmncRelay::new(cfg, 0.0)));
        sim.set_behavior(
            NodeId::new(2),
            Box::new(OmncDestination::new(cfg, ledger.clone(), 1, true)),
        );
        sim.run_until(20.0);
        assert_eq!(sim.stats(NodeId::new(1)).packets_sent, 0);
        assert_eq!(
            ledger.generations_decoded(),
            0,
            "dst is unreachable without the relay"
        );
    }

    #[test]
    fn generation_expiry_clears_relay_state() {
        let cfg = SessionConfig::tiny();
        let ledger = SessionLedger::shared();
        #[allow(unused_mut)]
        let mut relay = OmncRelay::new(cfg, 100.0);
        // Feed it a packet of generation 0 through a fake context.
        let topo = Topology::from_links(
            2,
            vec![Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: 1.0,
            }],
        )
        .unwrap();
        let mac = MacModel::fair_share(cfg.capacity);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> = Simulator::new(&topo, mac, 6);
        // Use the source machinery to craft a valid packet.
        let mut src = CodedSource::new(cfg, ledger.clone(), 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        let msg = src.next_packet(0.0, &mut rng).unwrap();
        // Deliver manually via the behavior API inside a simulator context:
        sim.set_behavior(
            NodeId::new(1),
            Box::new(OmncDestination::new(cfg, ledger.clone(), 3, false)),
        );
        // Directly exercise the relay's sync logic.
        assert_eq!(relay.rank(), 0);
        if let Msg::Coded(ref p) = msg {
            relay.buffer.absorb(p).unwrap();
        }
        assert_eq!(relay.rank(), 1);
        ledger.complete_generation(GenerationId::new(0), 1.0);
        // After expiry the next sync (on any event) resets the buffer; we
        // call the internal path through a minimal simulation instead:
        assert_eq!(ledger.active_generation(), GenerationId::new(1));
    }
}
