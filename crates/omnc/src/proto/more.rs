//! The MORE baseline (Chachulski et al., SIGCOMM'07) and its oldMORE
//! precursor — credit-driven coded forwarding *without* rate control.
//!
//! The source stays backlogged (it "continuously send\[s\] random linearly
//! coded packets ... until the destination collects a sufficient number");
//! each relay increments a credit counter on every reception from a farther
//! node and enqueues one re-encoded packet per whole credit. Transmission
//! rates are whatever the fair-share MAC yields — the protocol is oblivious
//! to channel congestion, which is exactly the behaviour the OMNC paper's
//! Fig. 3 exposes (mean queue 22 vs OMNC's 0.63).
//!
//! oldMORE differs only in where its credits come from (min-cost flow,
//! pruning lossy paths; see [`crate::proto::credits`]), so both share the
//! behaviours below.

use std::collections::BTreeMap;

use drift::{Behavior, Ctx, PacketTag};
use net_topo::graph::NodeId;
use rlnc::{GenerationId, Recoder};

use crate::msg::Msg;
use crate::proto::common::{enqueue_coded, CodedDestination, CodedSource};
use crate::session::{SessionConfig, SessionShared};

const TICK: u64 = 0;

/// MORE source: keeps its transmit queue non-empty whenever the active
/// generation is available, deferring entirely to the MAC for pacing.
#[derive(Debug)]
pub struct MoreSource {
    state: CodedSource,
}

impl MoreSource {
    /// Creates the source.
    pub fn new(cfg: SessionConfig, ledger: SessionShared, session_seed: u64) -> Self {
        MoreSource {
            state: CodedSource::new(cfg, ledger, session_seed),
        }
    }

    /// Coded packets emitted so far.
    pub fn packets_emitted(&self) -> u64 {
        self.state.packets_emitted
    }

    /// Attaches a profiler to the encoding path.
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.state.set_profiler(profiler);
    }

    /// Top-up interval: one minimum-size transmission time; fast enough to
    /// keep the queue backlogged without flooding the calendar.
    fn interval(&self) -> f64 {
        self.state.config().coded_wire_len() as f64 / self.state.config().capacity
    }
}

impl Behavior<Msg> for MoreSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(0.0, TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
        let now = ctx.now().as_secs();
        // Keep two packets queued: one in flight, one ready.
        while ctx.queue_len() < 2 {
            let cfg = *self.state.config();
            let origin = ctx.node();
            match self.state.next_tagged_packet(now, ctx.rng(), origin) {
                Some((msg, tag)) => enqueue_coded(ctx, &cfg, msg, Some(tag)),
                None => break, // waiting for the CBR application
            }
        }
        ctx.set_timer(self.interval(), TICK);
    }
}

/// MORE/oldMORE relay: credit counter plus re-encoding buffer.
#[derive(Debug)]
pub struct MoreRelay {
    cfg: SessionConfig,
    /// Credit added per reception from upstream.
    tx_credit: f64,
    /// ETX distance of this node (receptions from farther nodes earn
    /// credit).
    my_dist: f64,
    /// ETX distance per potential upstream, by topology node id.
    dist: Vec<f64>,
    credit: f64,
    buffer: Recoder,
    profiler: telemetry::Profiler,
    /// Session id, learned from the first tagged packet heard on the air.
    session: Option<u64>,
    /// Innovative packets received per upstream node.
    pub innovative_from: BTreeMap<NodeId, u64>,
    /// All coded packets received per upstream node.
    pub received_from: BTreeMap<NodeId, u64>,
    /// Re-encoded packets emitted.
    pub packets_emitted: u64,
}

impl MoreRelay {
    /// Creates a relay with its precomputed credit increment and the ETX
    /// distance table used to recognize upstream transmitters.
    ///
    /// # Panics
    ///
    /// Panics if `tx_credit` is negative or not finite.
    pub fn new(cfg: SessionConfig, tx_credit: f64, my_dist: f64, dist: Vec<f64>) -> Self {
        assert!(
            tx_credit.is_finite() && tx_credit >= 0.0,
            "tx_credit must be non-negative"
        );
        let buffer = Recoder::new(GenerationId::new(0), cfg.generation_config());
        MoreRelay {
            cfg,
            tx_credit,
            my_dist,
            dist,
            credit: 0.0,
            buffer,
            profiler: telemetry::Profiler::disabled(),
            session: None,
            innovative_from: BTreeMap::new(),
            received_from: BTreeMap::new(),
            packets_emitted: 0,
        }
    }

    /// The relay's current credit balance.
    pub fn credit(&self) -> f64 {
        self.credit
    }

    /// The relay's decoding rank.
    pub fn rank(&self) -> usize {
        self.buffer.rank()
    }

    /// Attaches a profiler to the recode/innovation-filter path (survives
    /// generation advances).
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.buffer.set_profiler(profiler.clone());
        self.profiler = profiler;
    }

    /// Packet-driven expiry, as in [`crate::proto::omnc::OmncRelay`]: a
    /// higher-generation packet flushes the buffer, the credit balance and
    /// any still-queued packets of newer generations survive. Stale packets
    /// already queued keep draining over the air — with MORE's large queues
    /// this is a substantial waste, the very congestion cost of Fig. 3.
    fn advance_generation(&mut self, ctx: &mut Ctx<'_, Msg>, newer: GenerationId) {
        if newer > self.buffer.generation() {
            self.buffer = Recoder::new(newer, self.cfg.generation_config());
            self.buffer.set_profiler(self.profiler.clone());
            self.credit = 0.0;
            ctx.retain_queue(|m| m.generation() == Some(newer));
        }
    }
}

impl Behavior<Msg> for MoreRelay {
    fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        if let Some(tag) = ctx.incoming_tag() {
            self.session.get_or_insert(tag.session);
        }
        if let Some(generation) = msg.generation() {
            self.advance_generation(ctx, generation);
        }
        let Msg::Coded(packet) = msg else { return };
        *self.received_from.entry(from).or_insert(0) += 1;
        if packet.generation() != self.buffer.generation() {
            return;
        }
        let from_upstream = self
            .dist
            .get(from.index())
            .copied()
            .unwrap_or(f64::INFINITY)
            > self.my_dist;
        if let Ok(result) = self.buffer.absorb(packet) {
            if result.is_innovative() {
                *self.innovative_from.entry(from).or_insert(0) += 1;
            }
        }
        // MORE: every reception from a farther node earns TX credit,
        // innovative or not (the sender cannot know).
        if from_upstream && self.tx_credit > 0.0 {
            self.credit += self.tx_credit;
            while self.credit >= 1.0 && self.buffer.rank() > 0 {
                self.credit -= 1.0;
                let packet = {
                    let rng = ctx.rng();
                    self.buffer.emit(rng).expect("rank > 0")
                };
                // Fresh identity: the relay is the packet's coding origin.
                let tag = PacketTag {
                    session: self.session.unwrap_or(0),
                    generation: packet.generation(),
                    seq: self.packets_emitted,
                    origin: ctx.node(),
                };
                self.packets_emitted += 1;
                let cfg = self.cfg;
                enqueue_coded(ctx, &cfg, Msg::Coded(packet), Some(tag));
            }
        }
    }
}

/// MORE destination — identical decoding logic to OMNC's.
#[derive(Debug)]
pub struct MoreDestination {
    state: CodedDestination,
}

impl MoreDestination {
    /// Creates the destination.
    pub fn new(
        cfg: SessionConfig,
        ledger: SessionShared,
        session_seed: u64,
        verify_payload: bool,
    ) -> Self {
        MoreDestination {
            state: CodedDestination::new(cfg, ledger, session_seed, verify_payload),
        }
    }

    /// Access to destination metrics.
    pub fn state(&self) -> &CodedDestination {
        &self.state
    }

    /// Attaches a profiler to the decoding path.
    pub fn set_profiler(&mut self, profiler: telemetry::Profiler) {
        self.state.set_profiler(profiler);
    }

    /// Attaches a timeline recorder to the decoding path (per-generation
    /// rank-progress series under `scope`).
    pub fn set_timeline(&mut self, timeline: telemetry::TimeSeries, scope: &str) {
        self.state.set_timeline(timeline, scope);
    }
}

impl Behavior<Msg> for MoreDestination {
    fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        let now = ctx.now().as_secs();
        let node = ctx.node();
        let tag = ctx.incoming_tag();
        self.state.receive(now, node, from, msg, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::credits::more_credits;
    use crate::session::SessionLedger;
    use drift::{MacModel, Simulator};
    use net_topo::graph::{Link, Topology};
    use net_topo::select::select_forwarders;

    #[test]
    fn more_delivers_over_a_lossy_line() {
        let cfg = SessionConfig::tiny();
        let p = 0.6;
        let topo = Topology::from_links(
            3,
            vec![
                Link {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                    p,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(2),
                    p,
                },
                Link {
                    from: NodeId::new(1),
                    to: NodeId::new(0),
                    p,
                },
                Link {
                    from: NodeId::new(2),
                    to: NodeId::new(1),
                    p,
                },
            ],
        )
        .unwrap();
        let sel = select_forwarders(&topo, NodeId::new(0), NodeId::new(2));
        let plan = more_credits(&sel);
        let dist: Vec<f64> = topo
            .nodes()
            .map(|v| sel.dist_to_dst(v).unwrap_or(f64::INFINITY))
            .collect();
        let ledger = SessionLedger::shared();
        let mac = MacModel::fair_share(cfg.capacity);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> = Simulator::new(&topo, mac, 8);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(MoreSource::new(cfg, ledger.clone(), 21)),
        );
        sim.set_behavior(
            NodeId::new(1),
            Box::new(MoreRelay::new(
                cfg,
                plan.tx_credit[1],
                dist[1],
                dist.clone(),
            )),
        );
        sim.set_behavior(
            NodeId::new(2),
            Box::new(MoreDestination::new(cfg, ledger.clone(), 21, true)),
        );
        sim.run_until(cfg.duration);
        assert!(
            ledger.generations_decoded() >= 1,
            "MORE failed to deliver any generation"
        );
    }

    #[test]
    fn credits_accumulate_only_from_upstream() {
        let cfg = SessionConfig::tiny();
        let _ledger = SessionLedger::shared();
        // my_dist = 1; node 0 is farther (2.0), node 2 is closer (0.0).
        let relay = MoreRelay::new(cfg, 0.5, 1.0, vec![2.0, 1.0, 0.0]);
        assert_eq!(relay.credit(), 0.0);
        // (Credit arithmetic is driven through on_receive in integration
        // tests; here we check construction invariants.)
        assert_eq!(relay.rank(), 0);
    }

    #[test]
    #[should_panic(expected = "tx_credit must be non-negative")]
    fn negative_credit_panics() {
        let cfg = SessionConfig::tiny();
        let _ledger = SessionLedger::shared();
        let _ = MoreRelay::new(cfg, -1.0, 0.0, vec![]);
    }
}
