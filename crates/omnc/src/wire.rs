//! Byte-level wire codec for protocol messages.
//!
//! The simulator passes [`Msg`] values by clone, but a deployable protocol
//! serializes them. This module defines the framing — one tag byte followed
//! by the variant body — so that the wire sizes charged by the session
//! configuration correspond to real encodable packets, and so downstream
//! users can move messages across actual sockets.

use net_topo::graph::NodeId;
use rlnc::{CodedPacket, GenerationId};

use crate::msg::Msg;

/// Errors from decoding a wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The frame was empty.
    Empty,
    /// The tag byte does not name a known message type.
    UnknownTag(u8),
    /// The body was truncated or inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty frame"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_CODED: u8 = 1;
const TAG_BLOCK: u8 = 2;
const TAG_ACK: u8 = 3;

/// Serializes a message to its wire frame.
///
/// ```
/// use omnc::msg::Msg;
/// use omnc::wire;
/// use omnc::rlnc::GenerationId;
///
/// let msg = Msg::Ack { generation: GenerationId::new(9) };
/// let frame = wire::encode(&msg);
/// assert_eq!(wire::decode(&frame).unwrap(), msg);
/// ```
pub fn encode(msg: &Msg) -> Vec<u8> {
    match msg {
        Msg::Coded(packet) => {
            let body = packet.to_bytes();
            let mut out = Vec::with_capacity(1 + body.len());
            out.push(TAG_CODED);
            out.extend_from_slice(&body);
            out
        }
        Msg::Block { seq, dst } => {
            let mut out = Vec::with_capacity(1 + 8 + 8);
            out.push(TAG_BLOCK);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(dst.index() as u64).to_le_bytes());
            out
        }
        Msg::Ack { generation } => {
            let mut out = Vec::with_capacity(1 + 8);
            out.push(TAG_ACK);
            out.extend_from_slice(&generation.as_u64().to_le_bytes());
            out
        }
    }
}

/// Parses a wire frame produced by [`encode`].
///
/// # Errors
///
/// Returns a [`WireError`] on empty, unknown-tag or truncated input.
pub fn decode(frame: &[u8]) -> Result<Msg, WireError> {
    let (&tag, body) = frame.split_first().ok_or(WireError::Empty)?;
    match tag {
        TAG_CODED => CodedPacket::from_bytes(body)
            .map(Msg::Coded)
            .map_err(|_| WireError::Malformed("coded packet body")),
        TAG_BLOCK => {
            if body.len() != 16 {
                return Err(WireError::Malformed("block body must be 16 bytes"));
            }
            let seq = read_u64(&body[0..8]).ok_or(WireError::Malformed("block seq"))?;
            let dst = read_u64(&body[8..16]).ok_or(WireError::Malformed("block dst"))? as usize;
            Ok(Msg::Block {
                seq,
                dst: NodeId::new(dst),
            })
        }
        TAG_ACK => {
            if body.len() != 8 {
                return Err(WireError::Malformed("ack body must be 8 bytes"));
            }
            let g = read_u64(body).ok_or(WireError::Malformed("ack generation"))?;
            Ok(Msg::Ack {
                generation: GenerationId::new(g),
            })
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

/// Little-endian `u64` from an exactly-8-byte slice, `None` otherwise.
fn read_u64(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_variants_roundtrip() {
        let msgs = [
            Msg::Coded(CodedPacket::new(GenerationId::new(7), vec![1, 2, 3], vec![9; 10]).unwrap()),
            Msg::Block {
                seq: 42,
                dst: NodeId::new(13),
            },
            Msg::Ack {
                generation: GenerationId::new(1000),
            },
        ];
        for m in msgs {
            assert_eq!(decode(&encode(&m)).unwrap(), m);
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert_eq!(decode(&[]), Err(WireError::Empty));
        assert_eq!(decode(&[99, 1, 2]), Err(WireError::UnknownTag(99)));
        assert!(matches!(
            decode(&[TAG_ACK, 1, 2]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(decode(&[TAG_BLOCK]), Err(WireError::Malformed(_))));
        assert!(matches!(
            decode(&[TAG_CODED, 0, 0]),
            Err(WireError::Malformed(_))
        ));
    }

    proptest! {
        #[test]
        fn coded_roundtrip_any_shape(
            generation in any::<u64>(),
            coeffs in proptest::collection::vec(any::<u8>(), 1..64),
            payload in proptest::collection::vec(any::<u8>(), 1..256),
        ) {
            let m = Msg::Coded(
                CodedPacket::new(GenerationId::new(generation), coeffs, payload).unwrap(),
            );
            prop_assert_eq!(decode(&encode(&m)).unwrap(), m);
        }

        #[test]
        fn decode_never_panics_on_fuzz(frame in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = decode(&frame); // must not panic
        }
    }
}
