//! End-to-end session execution: wire a protocol to a topology, run it on
//! Drift, and collect the paper's evaluation metrics.

use std::collections::BTreeMap;

use drift::{Behavior, Ctx, MacModel, PacketTag, Simulator, TraceEvent};
use net_topo::etx;
use net_topo::graph::{Link, NodeId, Topology};
use net_topo::select::{disjoint_path_count, select_forwarders, Selection};
use omnc_opt::{default_portfolio, run_best, run_best_traced, SUnicast};
use serde::{Deserialize, Serialize};
use telemetry::{FlightRecorder, Profiler, Registry, TimeSeries};

use crate::msg::Msg;
use crate::proto::credits::{more_credits, oldmore_credits, CreditPlan};
use crate::proto::etx_routing::{EtxDestination, EtxForwarder};
use crate::proto::more::{MoreDestination, MoreRelay, MoreSource};
use crate::proto::omnc::{OmncDestination, OmncRelay, OmncSource};
use crate::scenario::Scenario;
use crate::session::{SessionConfig, SessionLedger};
use crate::trace::{Absorbed, SessionTrace, TraceRecord};

/// The protocols under evaluation (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Optimized Multipath Network Coding — the paper's contribution.
    Omnc,
    /// MORE (SIGCOMM'07): coded opportunistic routing, credit heuristic.
    More,
    /// The min-cost precursor of MORE: prunes lossy paths, no rate control.
    OldMore,
    /// Traditional best-path routing under the ETX metric.
    EtxRouting,
}

impl Protocol {
    /// All four protocols, in the paper's presentation order.
    pub const ALL: [Protocol; 4] = [
        Protocol::Omnc,
        Protocol::More,
        Protocol::OldMore,
        Protocol::EtxRouting,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Omnc => "OMNC",
            Protocol::More => "MORE",
            Protocol::OldMore => "oldMORE",
            Protocol::EtxRouting => "ETX",
        }
    }
}

/// Everything measured from one session run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// The protocol that produced this outcome.
    pub protocol: Protocol,
    /// End-to-end application throughput in bytes/second.
    pub throughput: f64,
    /// Time-averaged queue size per *involved* node (nodes that sent at
    /// least one packet), the Fig. 3 metric.
    pub queue_averages: Vec<f64>,
    /// Node utility ratio: transmitting nodes / selected candidate nodes
    /// (Fig. 4 left).
    pub node_utility: f64,
    /// Path utility ratio: DAG paths with every link exercised / all DAG
    /// paths after node selection (Fig. 4 right).
    pub path_utility: f64,
    /// Iterations the rate-control algorithm needed (OMNC only).
    pub rc_iterations: Option<usize>,
    /// Throughput predicted by the sUnicast framework (OMNC only).
    pub predicted_throughput: Option<f64>,
    /// Generations fully decoded (coded protocols).
    pub generations_decoded: u64,
    /// Innovative/redundant packet counts at the destination.
    pub packet_counts: (u64, u64),
    /// Payload verification failures (must be zero when payloads are real).
    pub verification_failures: u64,
}

impl SessionOutcome {
    /// Mean of the per-node time-averaged queue sizes.
    pub fn mean_queue(&self) -> f64 {
        if self.queue_averages.is_empty() {
            0.0
        } else {
            self.queue_averages.iter().sum::<f64>() / self.queue_averages.len() as f64
        }
    }
}

/// One behavior enum so the simulator stays fully typed and final protocol
/// state can be read back without downcasting. Shared with the
/// multi-session runner ([`crate::multi`]), which wires one `Role` per
/// (session, node) pair.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Role {
    OmncSrc(OmncSource),
    OmncRelay(OmncRelay),
    OmncDst(OmncDestination),
    MoreSrc(MoreSource),
    MoreRelay(MoreRelay),
    MoreDst(MoreDestination),
    EtxFwd(EtxForwarder),
    EtxDst(EtxDestination),
}

impl Behavior<Msg> for Role {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Role::OmncSrc(b) => b.on_start(ctx),
            Role::OmncRelay(b) => b.on_start(ctx),
            Role::OmncDst(b) => b.on_start(ctx),
            Role::MoreSrc(b) => b.on_start(ctx),
            Role::MoreRelay(b) => b.on_start(ctx),
            Role::MoreDst(b) => b.on_start(ctx),
            Role::EtxFwd(b) => b.on_start(ctx),
            Role::EtxDst(b) => b.on_start(ctx),
        }
    }
    fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
        match self {
            Role::OmncSrc(b) => b.on_receive(ctx, from, msg),
            Role::OmncRelay(b) => b.on_receive(ctx, from, msg),
            Role::OmncDst(b) => b.on_receive(ctx, from, msg),
            Role::MoreSrc(b) => b.on_receive(ctx, from, msg),
            Role::MoreRelay(b) => b.on_receive(ctx, from, msg),
            Role::MoreDst(b) => b.on_receive(ctx, from, msg),
            Role::EtxFwd(b) => b.on_receive(ctx, from, msg),
            Role::EtxDst(b) => b.on_receive(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match self {
            Role::OmncSrc(b) => b.on_timer(ctx, token),
            Role::OmncRelay(b) => b.on_timer(ctx, token),
            Role::OmncDst(b) => b.on_timer(ctx, token),
            Role::MoreSrc(b) => b.on_timer(ctx, token),
            Role::MoreRelay(b) => b.on_timer(ctx, token),
            Role::MoreDst(b) => b.on_timer(ctx, token),
            Role::EtxFwd(b) => b.on_timer(ctx, token),
            Role::EtxDst(b) => b.on_timer(ctx, token),
        }
    }
    fn on_unicast_result(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, msg: &Msg, ok: bool) {
        match self {
            Role::OmncSrc(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::OmncRelay(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::OmncDst(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::MoreSrc(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::MoreRelay(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::MoreDst(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::EtxFwd(b) => b.on_unicast_result(ctx, to, msg, ok),
            Role::EtxDst(b) => b.on_unicast_result(ctx, to, msg, ok),
        }
    }
}

impl Role {
    /// Attaches the session profiler to whatever coder this role carries
    /// (ETX forwards raw blocks, so those roles have nothing to profile).
    pub(crate) fn set_profiler(&mut self, profiler: &Profiler) {
        match self {
            Role::OmncSrc(b) => b.set_profiler(profiler.clone()),
            Role::OmncRelay(b) => b.set_profiler(profiler.clone()),
            Role::OmncDst(b) => b.set_profiler(profiler.clone()),
            Role::MoreSrc(b) => b.set_profiler(profiler.clone()),
            Role::MoreRelay(b) => b.set_profiler(profiler.clone()),
            Role::MoreDst(b) => b.set_profiler(profiler.clone()),
            Role::EtxFwd(_) | Role::EtxDst(_) => {}
        }
    }

    /// Attaches the timeline recorder to the role's decoder, if it has one
    /// (only destinations sample rank progress).
    pub(crate) fn set_timeline(&mut self, timeline: &TimeSeries, scope: &str) {
        match self {
            Role::OmncDst(b) => b.set_timeline(timeline.clone(), scope),
            Role::MoreDst(b) => b.set_timeline(timeline.clone(), scope),
            _ => {}
        }
    }
}

/// The session sub-topology: selected nodes re-indexed densely, keeping
/// *every* original link between them (interference needs sideways links,
/// not only the flow DAG).
struct SubTopology {
    topo: Topology,
    /// local → original id.
    to_orig: Vec<NodeId>,
    /// original → local id.
    to_local: BTreeMap<NodeId, usize>,
}

fn sub_topology(full: &Topology, nodes: &[NodeId]) -> SubTopology {
    let to_orig: Vec<NodeId> = nodes.to_vec();
    let to_local: BTreeMap<NodeId, usize> =
        to_orig.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let links: Vec<Link> = full
        .links()
        .filter_map(|l| {
            let from = *to_local.get(&l.from)?;
            let to = *to_local.get(&l.to)?;
            Some(Link {
                from: NodeId::new(from),
                to: NodeId::new(to),
                p: l.p,
            })
        })
        .collect();
    let topo = Topology::from_links(to_orig.len().max(2), links)
        .expect("selected nodes always include linked src and dst");
    SubTopology {
        topo,
        to_orig,
        to_local,
    }
}

/// Optional knobs for a session run (see [`run_session_traced`]).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Crash-stop fault `(node, at)`: kills `node` (topology id) at
    /// simulated time `at`.
    pub fault: Option<(NodeId, f64)>,
    /// When `Some`, MAC-level tracing is enabled with this event capacity
    /// and the run returns a full [`SessionTrace`].
    pub trace_capacity: Option<usize>,
    /// Hierarchical span profiler shared by the simulator event loop and
    /// every coder the session wires up (encoder, relay recoders, the
    /// destination decoder). Defaults to disabled (zero overhead); attach
    /// an enabled handle and read [`Profiler::report`] after the run.
    pub profiler: Profiler,
    /// Metrics registry the simulator records its MAC counters and queue
    /// histogram into. Defaults to disabled (no-op handles); attach an
    /// enabled [`Registry`] and read [`Registry::snapshot`] after the run.
    pub registry: Registry,
    /// Windowed dynamics recorder: per-node queue depth and per-link
    /// delivery/loss over time (from the simulator), decoder rank progress
    /// per generation, optimizer convergence (OMNC), and destination
    /// goodput. Defaults to disabled (every sample is one branch); attach
    /// an enabled [`TimeSeries`] and read [`TimeSeries::snapshot`] after
    /// the run. Tracing, profiling and metrics are unaffected either way.
    pub timeline: TimeSeries,
    /// Prefix for every series name this run records (e.g. `omnc/s0` or a
    /// campaign cell key), so one recorder can serve many runs.
    pub timeline_scope: String,
    /// Flight recorder the run drops coarse breadcrumbs into (session
    /// build, optimizer, simulation start/end, metric collection), each
    /// stamped with virtual-clock time. Defaults to disabled (one branch
    /// per breadcrumb); arm an enabled [`FlightRecorder`] to get a
    /// post-mortem dump when the run panics. Never affects results.
    pub flight: FlightRecorder,
}

/// Runs one unicast session of `protocol` from `src` to `dst` on
/// `topology` and returns the measured outcome. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `dst` is unreachable from `src` (draw sessions from connected
/// topologies) or if the session configuration is degenerate.
pub fn run_session(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    protocol: Protocol,
    cfg: &SessionConfig,
    seed: u64,
) -> SessionOutcome {
    run_session_with_fault(topology, src, dst, protocol, cfg, seed, None)
}

/// Like [`run_session`], with an optional crash-stop fault: `(node, at)`
/// kills `node` (topology id) at simulated time `at`. Sessions whose killed
/// node is the source or destination are legal but deliver nothing after
/// the fault.
pub fn run_session_with_fault(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    protocol: Protocol,
    cfg: &SessionConfig,
    seed: u64,
    fault: Option<(NodeId, f64)>,
) -> SessionOutcome {
    let options = RunOptions {
        fault,
        ..RunOptions::default()
    };
    run_session_traced(topology, src, dst, protocol, cfg, seed, &options).0
}

/// Like [`run_session`], driven by [`RunOptions`]. With
/// `options.trace_capacity` set, the second return value is the session's
/// causal trace — `SessionStart`, time-ordered MAC/decoder events with node
/// ids mapped back to the *original* topology, `SessionEnd` — ready for
/// [`SessionTrace::write_jsonl`] and `omnc-report`.
#[allow(clippy::too_many_arguments)]
pub fn run_session_traced(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    protocol: Protocol,
    cfg: &SessionConfig,
    seed: u64,
    options: &RunOptions,
) -> (SessionOutcome, Option<SessionTrace>) {
    match protocol {
        Protocol::EtxRouting => run_etx(topology, src, dst, cfg, seed, options),
        Protocol::Omnc | Protocol::More | Protocol::OldMore => {
            run_coded_inner(topology, src, dst, protocol, cfg, seed, None, options)
        }
    }
}

/// Runs one *cell* of a sweep or campaign: session `session` of `scenario`
/// under `protocol`, with the session's endpoints and seed drawn
/// deterministically from the scenario. This is the single shared code
/// path behind the figure bins (`omnc-bench`) and the campaign executor
/// (`omnc-campaign`): both reduce to a loop of `run_cell` calls.
///
/// Builds the scenario topology internally; loops that run many cells of
/// the same scenario should build it once and use [`run_cell_on`].
///
/// # Panics
///
/// Panics if the scenario cannot produce session `session` (disconnected
/// deployment or unsatisfiable hop bounds) — campaign callers isolate
/// this with `catch_unwind`.
pub fn run_cell(
    scenario: &Scenario,
    protocol: Protocol,
    session: u64,
    options: &RunOptions,
) -> (SessionOutcome, Option<SessionTrace>) {
    // The breadcrumb lands before the panic-prone session build, so a
    // flight dump from a doomed cell still names what was being built.
    options.flight.record(
        0.0,
        "cell/start",
        &format!("protocol={} session={session}", protocol.name()),
    );
    let (topology, src, dst) = scenario.build_session(session);
    options.flight.record(
        0.0,
        "cell/session",
        &format!(
            "nodes={} src={} dst={}",
            topology.len(),
            src.index(),
            dst.index()
        ),
    );
    run_session_traced(
        &topology,
        src,
        dst,
        protocol,
        &scenario.session,
        scenario.session_seed(session),
        options,
    )
}

/// Like [`run_cell`], reusing a pre-built scenario `topology` (the result
/// of [`Scenario::build_topology`]) so sweep loops pay the deployment cost
/// once instead of once per session.
///
/// # Panics
///
/// Same conditions as [`run_cell`].
pub fn run_cell_on(
    topology: &Topology,
    scenario: &Scenario,
    protocol: Protocol,
    session: u64,
    options: &RunOptions,
) -> (SessionOutcome, Option<SessionTrace>) {
    options.flight.record(
        0.0,
        "cell/start",
        &format!("protocol={} session={session}", protocol.name()),
    );
    let (_, src, dst) = scenario.build_session(session);
    run_session_traced(
        topology,
        src,
        dst,
        protocol,
        &scenario.session,
        scenario.session_seed(session),
        options,
    )
}

/// Wires the run's timeline recorder into the simulator. Queue and link
/// series are labelled with *original*-topology node ids, so names stay
/// meaningful after the sub-topology re-indexing.
fn attach_sim_timeline(sim: &mut Simulator<Msg, Role>, sub: &SubTopology, options: &RunOptions) {
    if !options.timeline.is_enabled() {
        return;
    }
    let labels: Vec<u64> = sub.to_orig.iter().map(|v| v.index() as u64).collect();
    sim.attach_timeline(&options.timeline, &options.timeline_scope, &labels);
}

fn run_etx(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    cfg: &SessionConfig,
    seed: u64,
    options: &RunOptions,
) -> (SessionOutcome, Option<SessionTrace>) {
    let path = etx::best_path(topology, src, dst).expect("session endpoints must be connected");
    let sub = sub_topology(topology, &path);
    let local = |v: NodeId| NodeId::new(sub.to_local[&v]);
    let session_seed = seed ^ 0xC0DE;

    // The paper's unicast MAC model: link-clique interference (the
    // "sufficient condition" of Sec. 3.2), strictly tighter than the
    // broadcast model the coded protocols enjoy.
    let mut next_hop = vec![usize::MAX; sub.to_orig.len()];
    for w in path.windows(2) {
        next_hop[sub.to_local[&w[0]]] = sub.to_local[&w[1]];
    }
    let mut sim: Simulator<Msg, Role> = Simulator::new(
        &sub.topo,
        MacModel::unicast_clique(cfg.capacity, next_hop),
        seed,
    );
    if let Some(capacity) = options.trace_capacity {
        sim.enable_trace(capacity);
    }
    sim.attach_profiler(options.profiler.clone());
    sim.attach_telemetry(&options.registry);
    attach_sim_timeline(&mut sim, &sub, options);
    for w in path.windows(2) {
        let fwd = if w[0] == src {
            EtxForwarder::source(*cfg, local(w[1]), local(dst))
        } else {
            EtxForwarder::relay(*cfg, local(w[1]))
        };
        // Blocks are never re-encoded, so the end-to-end origin (the
        // session source) is every hop's tag origin.
        sim.set_behavior(
            local(w[0]),
            Role::EtxFwd(fwd.with_session(session_seed, local(src))),
        );
    }
    sim.set_behavior(local(dst), Role::EtxDst(EtxDestination::new()));
    if let Some((victim, at)) = options.fault {
        if let Some(&l) = sub.to_local.get(&victim) {
            sim.schedule_kill(NodeId::new(l), at);
        }
    }
    options.flight.record(
        0.0,
        "sim/start",
        &format!("protocol=ETX hops={}", path.len().saturating_sub(1)),
    );
    sim.run_until(cfg.duration);
    options
        .flight
        .record(cfg.duration, "sim/done", "protocol=ETX");

    let delivered = match sim.behavior(local(dst)) {
        Some(Role::EtxDst(d)) => d.blocks_delivered,
        _ => 0,
    };
    let queue_averages: Vec<f64> = sub
        .topo
        .nodes()
        .filter(|&v| sim.stats(v).packets_sent > 0)
        .map(|v| sim.queue_average(v))
        .collect();
    let throughput = delivered as f64 * cfg.wire_block_size as f64 / cfg.duration;
    let trace = options.trace_capacity.map(|_| {
        assemble_trace(
            &sim,
            &sub,
            TraceRecord::SessionStart {
                session: session_seed,
                protocol: Protocol::EtxRouting,
                src,
                dst,
                seed,
                duration: cfg.duration,
            },
            Vec::new(),
            TraceRecord::SessionEnd {
                session: session_seed,
                throughput,
                generations_decoded: 0,
                innovative: 0,
                redundant: 0,
                final_rank: 0,
                dropped_mac_events: sim.trace().dropped(),
            },
        )
    });
    let outcome = SessionOutcome {
        protocol: Protocol::EtxRouting,
        throughput,
        queue_averages,
        node_utility: 1.0, // the single path uses every node it selected
        path_utility: 1.0,
        rc_iterations: None,
        predicted_throughput: None,
        generations_decoded: 0,
        packet_counts: (0, 0),
        verification_failures: 0,
    };
    (outcome, trace)
}

/// Runs an OMNC session with a caller-supplied broadcast-rate vector
/// (indexed like the sUnicast instance). Used by ablation benches to
/// compare rate sources (distributed algorithm vs exact LP vs uniform).
pub fn run_omnc_with_rates<F>(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    cfg: &SessionConfig,
    seed: u64,
    rate_source: F,
) -> SessionOutcome
where
    F: FnOnce(&SUnicast) -> Vec<f64>,
{
    let selection = select_forwarders(topology, src, dst);
    let problem = SUnicast::from_selection(topology, &selection, cfg.capacity);
    let b = rate_source(&problem);
    assert_eq!(
        b.len(),
        problem.node_count(),
        "rate vector must cover the instance"
    );
    let options = RunOptions::default();
    run_coded_inner(
        topology,
        src,
        dst,
        Protocol::Omnc,
        cfg,
        seed,
        Some(b),
        &options,
    )
    .0
}

#[allow(clippy::too_many_arguments)]
fn run_coded_inner(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    protocol: Protocol,
    cfg: &SessionConfig,
    seed: u64,
    rates_override: Option<Vec<f64>>,
    options: &RunOptions,
) -> (SessionOutcome, Option<SessionTrace>) {
    let selection = select_forwarders(topology, src, dst);
    options.flight.record(
        0.0,
        "select/done",
        &format!(
            "protocol={} forwarders={}",
            protocol.name(),
            selection.nodes().len()
        ),
    );
    let sub = sub_topology(topology, selection.nodes());
    let local = |v: NodeId| NodeId::new(sub.to_local[&v]);
    let ledger = SessionLedger::shared();
    let session_seed = seed ^ 0xC0DE;
    let verify = cfg.payload_block_size == cfg.wire_block_size;

    // Protocol-specific setup.
    let mut rc_iterations = None;
    let mut predicted = None;
    let mac;
    let mut roles: BTreeMap<NodeId, Role> = BTreeMap::new(); // by original id

    match protocol {
        Protocol::Omnc => {
            let problem = SUnicast::from_selection(topology, &selection, cfg.capacity);
            let inst_rates = match rates_override {
                Some(b) => {
                    let (supported, _) = omnc_opt::flow::supported_rate(
                        &problem,
                        &b.iter().map(|v| v / cfg.capacity).collect::<Vec<_>>(),
                    );
                    predicted = Some(supported * cfg.capacity);
                    b
                }
                None => {
                    // Tracing only records — `run_best_traced` deploys the
                    // exact rates `run_best` would — so the plain path stays
                    // untouched when the timeline is disabled.
                    let allocation = if options.timeline.is_enabled() {
                        let (allocation, trace) = run_best_traced(&problem, &default_portfolio());
                        trace.record_timeline(&options.timeline, &options.timeline_scope);
                        allocation
                    } else {
                        run_best(&problem, &default_portfolio())
                    };
                    rc_iterations = Some(allocation.iterations());
                    predicted = Some(allocation.throughput());
                    allocation.broadcast_rates().to_vec()
                }
            };
            // Map optimizer rates (instance-local) to sub-topology nodes.
            let mut rates = vec![0.0; sub.to_orig.len()];
            for (sub_local, &orig) in sub.to_orig.iter().enumerate() {
                if let Some(inst_idx) = problem.local_index(orig) {
                    // Simplex solutions may carry -1e-12 style noise.
                    rates[sub_local] = inst_rates[inst_idx].max(0.0);
                }
            }
            rates[local(dst).index()] = 0.0; // the destination only listens
            for &orig in selection.nodes() {
                let role = if orig == src {
                    Role::OmncSrc(OmncSource::new(
                        *cfg,
                        ledger.clone(),
                        session_seed,
                        rates[local(orig).index()],
                    ))
                } else if orig == dst {
                    Role::OmncDst(OmncDestination::new(
                        *cfg,
                        ledger.clone(),
                        session_seed,
                        verify,
                    ))
                } else {
                    Role::OmncRelay(OmncRelay::new(*cfg, rates[local(orig).index()]))
                };
                roles.insert(orig, role);
            }
            mac = MacModel::rate_limited(rates, cfg.capacity);
        }
        Protocol::More | Protocol::OldMore => {
            let plan: CreditPlan = if protocol == Protocol::More {
                more_credits(&selection)
            } else {
                oldmore_credits(&selection)
            };
            let dist: Vec<f64> = sub
                .to_orig
                .iter()
                .map(|&v| selection.dist_to_dst(v).unwrap_or(f64::INFINITY))
                .collect();
            for &orig in selection.nodes() {
                let role = if orig == src {
                    Role::MoreSrc(MoreSource::new(*cfg, ledger.clone(), session_seed))
                } else if orig == dst {
                    Role::MoreDst(MoreDestination::new(
                        *cfg,
                        ledger.clone(),
                        session_seed,
                        verify,
                    ))
                } else {
                    Role::MoreRelay(MoreRelay::new(
                        *cfg,
                        plan.tx_credit[orig.index()],
                        dist[local(orig).index()],
                        dist.clone(),
                    ))
                };
                roles.insert(orig, role);
            }
            mac = MacModel::fair_share(cfg.capacity);
        }
        Protocol::EtxRouting => unreachable!("handled by run_etx"),
    }

    let mut sim: Simulator<Msg, Role> = Simulator::new(&sub.topo, mac, seed);
    if let Some(capacity) = options.trace_capacity {
        sim.enable_trace(capacity);
    }
    sim.attach_profiler(options.profiler.clone());
    sim.attach_telemetry(&options.registry);
    attach_sim_timeline(&mut sim, &sub, options);
    for (orig, mut role) in roles {
        role.set_profiler(&options.profiler);
        role.set_timeline(&options.timeline, &options.timeline_scope);
        sim.set_behavior(local(orig), role);
    }
    if let Some((victim, at)) = options.fault {
        if let Some(&l) = sub.to_local.get(&victim) {
            sim.schedule_kill(NodeId::new(l), at);
        }
    }
    options.flight.record(
        0.0,
        "sim/start",
        &format!(
            "protocol={} rc_iterations={:?}",
            protocol.name(),
            rc_iterations
        ),
    );
    sim.run_until(cfg.duration);
    options
        .flight
        .record(cfg.duration, "sim/done", protocol.name());

    // ---- Collect metrics.
    // Credit the partially-decoded final generation: at reduced session
    // lengths the whole-generation quantization would otherwise bias the
    // throughput down by up to one generation (the paper's 800-second
    // sessions amortize this).
    let partial_rank = match sim.behavior(local(dst)) {
        Some(Role::OmncDst(d)) => d.state().partial_rank(),
        Some(Role::MoreDst(d)) => d.state().partial_rank(),
        _ => 0,
    };
    // Goodput dynamics: one sample per innovative absorption, at its
    // simulated arrival time, so windows show delivery rate over time.
    if options.timeline.is_enabled() {
        let dest_state = match sim.behavior(local(dst)) {
            Some(Role::OmncDst(d)) => Some(d.state()),
            Some(Role::MoreDst(d)) => Some(d.state()),
            _ => None,
        };
        if let Some(state) = dest_state {
            let name = if options.timeline_scope.is_empty() {
                "goodput".to_owned()
            } else {
                format!("{}/goodput", options.timeline_scope)
            };
            let goodput = options.timeline.series(&name);
            for a in state.absorptions.iter().filter(|a| a.innovative) {
                goodput.record(a.at, 1.0);
            }
        }
    }
    let partial_bytes = partial_rank as f64 * cfg.wire_block_size as f64;
    let throughput =
        ledger.throughput(cfg.generation_app_bytes(), cfg.duration) + partial_bytes / cfg.duration;
    let queue_averages: Vec<f64> = sub
        .topo
        .nodes()
        .filter(|&v| sim.stats(v).packets_sent > 0)
        .map(|v| sim.queue_average(v))
        .collect();

    // Node utility: transmitting nodes over selected candidates (the
    // destination, a pure listener, is excluded from both).
    let candidates = selection.nodes().iter().filter(|&&v| v != dst).count();
    let transmitting = selection
        .nodes()
        .iter()
        .filter(|&&v| v != dst && sim.stats(local(v)).packets_sent > 0)
        .count();
    let node_utility = if candidates > 0 {
        transmitting as f64 / candidates as f64
    } else {
        0.0
    };

    // Path utility: paths of the selection DAG all of whose links were
    // exercised (the transmitter sent and the receiver heard at least one
    // of its packets), over all DAG paths.
    let mut received_from: BTreeMap<NodeId, BTreeMap<NodeId, u64>> = BTreeMap::new();
    let mut verification_failures = 0;
    for &orig in selection.nodes() {
        match sim.behavior(local(orig)) {
            Some(Role::OmncRelay(r)) => {
                received_from.insert(orig, remap_keys(&r.received_from, &sub.to_orig));
            }
            Some(Role::MoreRelay(r)) => {
                received_from.insert(orig, remap_keys(&r.received_from, &sub.to_orig));
            }
            Some(Role::OmncDst(d)) => {
                received_from.insert(orig, remap_keys(&d.state().received_from, &sub.to_orig));
                verification_failures = d.state().verification_failures;
            }
            Some(Role::MoreDst(d)) => {
                received_from.insert(orig, remap_keys(&d.state().received_from, &sub.to_orig));
                verification_failures = d.state().verification_failures;
            }
            _ => {}
        }
    }
    let used_links: Vec<Link> = selection
        .subgraph()
        .links()
        .filter(|l| {
            received_from
                .get(&l.to)
                .and_then(|m| m.get(&l.from))
                .copied()
                .unwrap_or(0)
                > 0
        })
        .collect();
    let total_paths = selection.disjoint_paths();
    let used_paths = if used_links.is_empty() {
        0
    } else {
        let used_dag =
            Topology::from_links(topology.len(), used_links).expect("used links are valid");
        disjoint_path_count(&used_dag, src, dst)
    };
    let path_utility = if total_paths > 0 {
        used_paths as f64 / total_paths as f64
    } else {
        0.0
    };

    let (innovative, redundant) = ledger.packet_counts();
    let generations_decoded = ledger.generations_decoded();
    let trace = options.trace_capacity.map(|_| {
        let absorptions: Vec<Absorbed> = match sim.behavior(local(dst)) {
            Some(Role::OmncDst(d)) => d.state().absorptions.clone(),
            Some(Role::MoreDst(d)) => d.state().absorptions.clone(),
            _ => Vec::new(),
        };
        assemble_trace(
            &sim,
            &sub,
            TraceRecord::SessionStart {
                session: session_seed,
                protocol,
                src,
                dst,
                seed,
                duration: cfg.duration,
            },
            absorptions,
            TraceRecord::SessionEnd {
                session: session_seed,
                throughput,
                generations_decoded,
                innovative,
                redundant,
                final_rank: generations_decoded * cfg.generation_blocks as u64
                    + partial_rank as u64,
                dropped_mac_events: sim.trace().dropped(),
            },
        )
    });
    options.flight.record(
        cfg.duration,
        "collect/done",
        &format!("throughput={throughput:.1} decoded={generations_decoded}"),
    );
    let outcome = SessionOutcome {
        protocol,
        throughput,
        queue_averages,
        node_utility,
        path_utility,
        rc_iterations,
        predicted_throughput: predicted,
        generations_decoded,
        packet_counts: (innovative, redundant),
        verification_failures,
    };
    (outcome, trace)
}

/// Builds the session's [`SessionTrace`] from the simulator's MAC trace and
/// the destination's absorption log, remapping every node id (including tag
/// origins) from sub-topology coordinates back to the original topology and
/// merging the two time-ordered streams.
fn assemble_trace(
    sim: &Simulator<Msg, Role>,
    sub: &SubTopology,
    start: TraceRecord,
    absorptions: Vec<Absorbed>,
    end: TraceRecord,
) -> SessionTrace {
    let mac: Vec<TraceRecord> = sim
        .trace()
        .events()
        .iter()
        .map(|e| TraceRecord::Mac(remap_event(e, &sub.to_orig)))
        .collect();
    let dec: Vec<TraceRecord> = absorptions
        .into_iter()
        .map(|a| {
            TraceRecord::Absorbed(Absorbed {
                node: sub.to_orig[a.node.index()],
                from: sub.to_orig[a.from.index()],
                tag: remap_tag(a.tag, &sub.to_orig),
                ..a
            })
        })
        .collect();
    // Both streams are time-ordered; merge them, MAC first on ties (the
    // absorption of a delivery happens causally after the MAC event).
    let mut records = Vec::with_capacity(mac.len() + dec.len() + 2);
    records.push(start);
    let (mut i, mut j) = (0, 0);
    while i < mac.len() && j < dec.len() {
        let tm = mac[i].at().unwrap_or(0.0);
        let td = dec[j].at().unwrap_or(0.0);
        if tm <= td {
            records.push(mac[i].clone());
            i += 1;
        } else {
            records.push(dec[j].clone());
            j += 1;
        }
    }
    records.extend_from_slice(&mac[i..]);
    records.extend_from_slice(&dec[j..]);
    records.push(end);
    SessionTrace {
        records,
        dropped_mac_events: sim.trace().dropped(),
    }
}

/// Remaps a MAC event's node ids from sub-topology to original coordinates.
fn remap_event(e: &TraceEvent, to_orig: &[NodeId]) -> TraceEvent {
    let m = |v: NodeId| to_orig[v.index()];
    match *e {
        TraceEvent::TxStart {
            at,
            node,
            wire_len,
            rate,
            tag,
        } => TraceEvent::TxStart {
            at,
            node: m(node),
            wire_len,
            rate,
            tag: remap_tag(tag, to_orig),
        },
        TraceEvent::TxComplete { at, node } => TraceEvent::TxComplete { at, node: m(node) },
        TraceEvent::Delivered { at, from, to, tag } => TraceEvent::Delivered {
            at,
            from: m(from),
            to: m(to),
            tag: remap_tag(tag, to_orig),
        },
        TraceEvent::Lost { at, from, to, tag } => TraceEvent::Lost {
            at,
            from: m(from),
            to: m(to),
            tag: remap_tag(tag, to_orig),
        },
        TraceEvent::Queue { at, node, len } => TraceEvent::Queue {
            at,
            node: m(node),
            len,
        },
    }
}

/// Remaps a tag's coding origin from sub-topology to original coordinates.
fn remap_tag(tag: Option<PacketTag>, to_orig: &[NodeId]) -> Option<PacketTag> {
    tag.map(|t| PacketTag {
        origin: to_orig[t.origin.index()],
        ..t
    })
}

/// Translates an innovative-reception map keyed by sub-topology ids back to
/// original topology ids.
fn remap_keys(map: &BTreeMap<NodeId, u64>, to_orig: &[NodeId]) -> BTreeMap<NodeId, u64> {
    map.iter().map(|(&k, &v)| (to_orig[k.index()], v)).collect()
}

/// Re-exported selection entry point for binaries that need the raw
/// selection (e.g. utility-ratio baselines).
pub fn selection_for(topology: &Topology, src: NodeId, dst: NodeId) -> Selection {
    select_forwarders(topology, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::deploy::Deployment;
    use net_topo::phy::Phy;

    fn small_world() -> (Topology, NodeId, NodeId) {
        let phy = Phy::paper_lossy();
        let topo = Deployment::random(40, 6.0, &phy, 77).into_topology();
        let (s, d) = topo.farthest_pair();
        (topo, s, d)
    }

    #[test]
    fn all_protocols_deliver_positive_throughput() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        for protocol in Protocol::ALL {
            let out = run_session(&topo, s, d, protocol, &cfg, 3);
            assert!(
                out.throughput > 0.0,
                "{} produced zero throughput",
                protocol.name()
            );
            assert_eq!(out.verification_failures, 0, "{}", protocol.name());
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let a = run_session(&topo, s, d, Protocol::Omnc, &cfg, 5);
        let b = run_session(&topo, s, d, Protocol::Omnc, &cfg, 5);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.generations_decoded, b.generations_decoded);
    }

    #[test]
    fn omnc_reports_rate_control_metadata() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let out = run_session(&topo, s, d, Protocol::Omnc, &cfg, 5);
        assert!(out.rc_iterations.unwrap() > 0);
        assert!(out.predicted_throughput.unwrap() > 0.0);
        // The paper observes emulated throughput below the framework's
        // optimistic estimate.
        assert!(out.throughput <= out.predicted_throughput.unwrap() * 1.5);
    }

    #[test]
    fn utility_ratios_are_in_range() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        for protocol in [Protocol::Omnc, Protocol::More, Protocol::OldMore] {
            let out = run_session(&topo, s, d, protocol, &cfg, 9);
            assert!(
                (0.0..=1.0).contains(&out.node_utility),
                "{}",
                protocol.name()
            );
            assert!(
                (0.0..=1.0).contains(&out.path_utility),
                "{}",
                protocol.name()
            );
        }
    }

    #[test]
    fn outcomes_export_as_json_records() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let out = run_session(&topo, s, d, Protocol::Omnc, &cfg, 5);
        let json = serde_json::to_string(&out).unwrap();
        assert!(json.contains("\"protocol\":\"Omnc\""), "{json}");
        let back: SessionOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.protocol, out.protocol);
        assert_eq!(back.throughput, out.throughput);
        assert_eq!(back.rc_iterations, out.rc_iterations);
        assert_eq!(back.packet_counts, out.packet_counts);
    }

    #[test]
    fn traced_runs_tell_a_consistent_causal_story() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let options = RunOptions {
            fault: None,
            trace_capacity: Some(500_000),
            ..RunOptions::default()
        };
        let (out, trace) = run_session_traced(&topo, s, d, Protocol::Omnc, &cfg, 3, &options);
        let trace = trace.expect("tracing was enabled");
        assert_eq!(trace.dropped_mac_events, 0, "capacity too small");
        // Stream shape: SessionStart, time-ordered events, SessionEnd.
        assert!(matches!(
            trace.records.first(),
            Some(TraceRecord::SessionStart { src, dst, .. }) if *src == s && *dst == d
        ));
        assert!(matches!(
            trace.records.last(),
            Some(TraceRecord::SessionEnd { .. })
        ));
        let times: Vec<f64> = trace.records.iter().filter_map(|r| r.at()).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "events must be time-ordered"
        );
        // Decoder-side accounting joins up with the summary counters.
        let innovative = trace.absorptions().filter(|a| a.innovative).count() as u64;
        assert_eq!(innovative, out.packet_counts.0);
        let final_rank = match trace.records.last() {
            Some(TraceRecord::SessionEnd { final_rank, .. }) => *final_rank,
            _ => unreachable!(),
        };
        assert_eq!(innovative, final_rank);
        // Every absorption is tagged and every tag carries the session id.
        let session = match trace.records.first() {
            Some(TraceRecord::SessionStart { session, .. }) => *session,
            _ => unreachable!(),
        };
        assert!(trace.absorptions().count() > 0);
        assert!(trace
            .absorptions()
            .all(|a| a.tag.is_some_and(|t| t.session == session)));
        // Node ids are in original-topology coordinates.
        assert!(trace.absorptions().all(|a| a.node == d));
        // The untraced path returns the identical outcome.
        let plain = run_session(&topo, s, d, Protocol::Omnc, &cfg, 3);
        assert_eq!(plain.throughput, out.throughput);
    }

    #[test]
    fn etx_traces_tag_blocks_with_the_session_source() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let options = RunOptions {
            fault: None,
            trace_capacity: Some(500_000),
            ..RunOptions::default()
        };
        let (_, trace) = run_session_traced(&topo, s, d, Protocol::EtxRouting, &cfg, 3, &options);
        let trace = trace.expect("tracing was enabled");
        let tags: Vec<_> = trace.mac_events().filter_map(|e| e.tag()).collect();
        assert!(!tags.is_empty(), "ETX transmissions must carry tags");
        assert!(tags.iter().all(|t| t.origin == s));
    }

    #[test]
    fn profiled_sessions_match_plain_and_record_coder_spans() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let plain = run_session(&topo, s, d, Protocol::Omnc, &cfg, 5);
        let profiler = Profiler::virtual_clock();
        let options = RunOptions {
            profiler: profiler.clone(),
            ..RunOptions::default()
        };
        let (out, _) = run_session_traced(&topo, s, d, Protocol::Omnc, &cfg, 5, &options);
        assert_eq!(
            plain.throughput, out.throughput,
            "profiling changed the run"
        );
        assert_eq!(plain.generations_decoded, out.generations_decoded);
        assert_eq!(plain.packet_counts, out.packet_counts);

        let report = profiler.report();
        let any = |needle: &str| report.spans.iter().any(|sp| sp.path.contains(needle));
        assert!(any("drift.run"), "event loop span missing");
        assert!(any("mac.arbitrate"), "MAC arbitration span missing");
        assert!(any("encode"), "source encode span missing");
        assert!(any("recode"), "relay recode span missing");
        assert!(any("decode;eliminate"), "decoder elimination span missing");
        assert!(any("gf256."), "kernel spans missing");
        // Every span hangs off the simulator event loop.
        assert!(report
            .spans
            .iter()
            .all(|sp| sp.path.starts_with("drift.run")));
        // Self times decompose the root total without double counting.
        let self_sum: u64 = report.spans.iter().map(|sp| sp.self_ticks).sum();
        assert!(self_sum <= report.total_root_ticks());
    }

    #[test]
    fn timeline_runs_match_plain_and_record_all_dynamics_series() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let options = RunOptions {
            trace_capacity: Some(500_000),
            ..RunOptions::default()
        };
        let (plain, plain_trace) =
            run_session_traced(&topo, s, d, Protocol::Omnc, &cfg, 5, &options);
        let timeline = TimeSeries::enabled(0.25, 64);
        let timed_options = RunOptions {
            trace_capacity: Some(500_000),
            timeline: timeline.clone(),
            timeline_scope: "omnc/s0".to_owned(),
            ..RunOptions::default()
        };
        let (timed, timed_trace) =
            run_session_traced(&topo, s, d, Protocol::Omnc, &cfg, 5, &timed_options);

        // Recording must not perturb the run: outcome and causal trace are
        // identical with the timeline on.
        assert_eq!(plain.throughput, timed.throughput);
        assert_eq!(plain.packet_counts, timed.packet_counts);
        assert_eq!(plain.rc_iterations, timed.rc_iterations);
        assert_eq!(
            serde_json::to_string(&plain_trace.unwrap().records).unwrap(),
            serde_json::to_string(&timed_trace.unwrap().records).unwrap(),
            "timeline recording perturbed the causal trace"
        );

        let report = timeline.snapshot();
        assert!(report.series("omnc/s0/opt/dual_value").is_some());
        assert!(report.series("omnc/s0/opt/max_violation").is_some());
        assert!(report.series("omnc/s0/rank/g0").is_some());
        let src_queue = format!("omnc/s0/queue/n{}", s.index());
        assert!(
            report.series(&src_queue).is_some(),
            "missing {src_queue} among {:?}",
            report.series.iter().map(|x| &x.name).collect::<Vec<_>>()
        );
        assert!(report
            .series
            .iter()
            .any(|x| x.name.starts_with("omnc/s0/link/") && x.name.ends_with("/delivered")));
        let goodput = report.series("omnc/s0/goodput").expect("goodput series");
        assert_eq!(goodput.total_count(), timed.packet_counts.0);
    }

    #[test]
    fn run_cell_matches_the_manual_session_path() {
        let scenario = crate::scenario::Scenario::small_test();
        let options = RunOptions::default();
        let (cell, _) = run_cell(&scenario, Protocol::Omnc, 1, &options);
        let (topo, src, dst) = scenario.build_session(1);
        let (manual, _) = run_session_traced(
            &topo,
            src,
            dst,
            Protocol::Omnc,
            &scenario.session,
            scenario.session_seed(1),
            &options,
        );
        assert_eq!(cell.throughput, manual.throughput);
        assert_eq!(cell.packet_counts, manual.packet_counts);
        assert_eq!(cell.generations_decoded, manual.generations_decoded);
        // The topology-reusing variant is the same cell.
        let (reused, _) = run_cell_on(&topo, &scenario, Protocol::Omnc, 1, &options);
        assert_eq!(reused.throughput, cell.throughput);
        assert_eq!(reused.packet_counts, cell.packet_counts);
    }

    #[test]
    fn oldmore_uses_fewer_nodes_than_omnc() {
        let (topo, s, d) = small_world();
        let cfg = SessionConfig::tiny();
        let omnc = run_session(&topo, s, d, Protocol::Omnc, &cfg, 11);
        let old = run_session(&topo, s, d, Protocol::OldMore, &cfg, 11);
        assert!(
            old.node_utility <= omnc.node_utility + 1e-9,
            "oldMORE {} vs OMNC {}",
            old.node_utility,
            omnc.node_utility
        );
    }
}
