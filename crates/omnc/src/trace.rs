//! Session-level causal trace: the JSONL records that give every coded
//! packet a birth-to-death story.
//!
//! The MAC layer ([`drift::TraceEvent`]) records *where a transmission
//! went*; the decoder side records *what it achieved*. Joining the two on
//! the [`drift::PacketTag`] answers the evaluation questions of the paper
//! that raw counters cannot: which forwarders contribute innovative
//! packets (effective multipath spread, Fig. 4), where redundancy is
//! injected, and how queues evolve (Fig. 3).
//!
//! A traced run serializes as a stream of [`TraceRecord`] lines:
//! `SessionStart`, then time-ordered `Mac`/`Absorbed` events, then
//! `SessionEnd`. `omnc-report` consumes this stream.

use std::io::{self, Write};

use drift::{PacketTag, TraceEvent};
use net_topo::graph::NodeId;
use rlnc::GenerationId;
use serde::{Deserialize, Serialize};

use crate::runner::Protocol;

/// One decoder-side packet outcome: a coded packet reached a destination
/// and was absorbed (innovatively or redundantly) by its decoder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Absorbed {
    /// Simulation time of the absorption (seconds).
    pub at: f64,
    /// The decoding node.
    pub node: NodeId,
    /// The transmitter whose packet was absorbed (last hop).
    pub from: NodeId,
    /// Causal identity carried from the coder, when tagged.
    pub tag: Option<PacketTag>,
    /// Generation the packet belonged to.
    pub generation: GenerationId,
    /// Whether the packet increased the decoder's rank.
    pub innovative: bool,
    /// Decoder rank immediately after the absorption.
    pub rank_after: usize,
    /// Whether this absorption completed (fully decoded) the generation.
    pub completed: bool,
}

/// One line of a session trace stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// Opens a session's stream.
    SessionStart {
        /// Session identifier; every [`PacketTag::session`] in the stream
        /// matches it.
        session: u64,
        /// Protocol under test.
        protocol: Protocol,
        /// Source node (original topology id).
        src: NodeId,
        /// Destination node (original topology id).
        dst: NodeId,
        /// Simulator seed.
        seed: u64,
        /// Configured session duration (seconds).
        duration: f64,
    },
    /// A MAC-level event (node ids in *original* topology coordinates).
    Mac(TraceEvent),
    /// A decoder-side absorption outcome.
    Absorbed(Absorbed),
    /// Closes a session's stream with its summary observables.
    SessionEnd {
        /// Session identifier (matches the opening record).
        session: u64,
        /// End-to-end application throughput (bytes/second).
        throughput: f64,
        /// Fully decoded generations.
        generations_decoded: u64,
        /// Innovative packets absorbed by the destination.
        innovative: u64,
        /// Redundant packets discarded by the destination.
        redundant: u64,
        /// Total decoder rank accumulated across generations (complete
        /// generations at full rank plus the in-progress one). Equals the
        /// number of innovative absorptions.
        final_rank: u64,
        /// MAC events the bounded in-simulator trace had to drop (counted,
        /// not recorded). Nonzero means the stream above is incomplete and
        /// per-link/per-forwarder numbers undercount.
        dropped_mac_events: u64,
    },
}

impl TraceRecord {
    /// The record's timestamp, when it has one (`SessionStart`/`SessionEnd`
    /// are stream delimiters, not events).
    pub fn at(&self) -> Option<f64> {
        match self {
            TraceRecord::Mac(e) => Some(e.at().as_secs()),
            TraceRecord::Absorbed(a) => Some(a.at),
            TraceRecord::SessionStart { .. } | TraceRecord::SessionEnd { .. } => None,
        }
    }
}

/// The full trace of one session run, with node ids mapped back to the
/// original topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    /// `SessionStart`, time-ordered events, `SessionEnd`.
    pub records: Vec<TraceRecord>,
    /// MAC events that overflowed the bounded in-simulator trace (counted,
    /// not recorded; a nonzero value means the stream is incomplete).
    pub dropped_mac_events: u64,
}

impl SessionTrace {
    /// Serializes every record as one JSON object per line.
    pub fn write_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        for record in &self.records {
            let line = serde_json::to_string(record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }

    /// The session's absorption records.
    pub fn absorptions(&self) -> impl Iterator<Item = &Absorbed> + '_ {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Absorbed(a) => Some(a),
            _ => None,
        })
    }

    /// The session's MAC events.
    pub fn mac_events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Mac(e) => Some(e),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift::SimTime;

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            TraceRecord::SessionStart {
                session: 7,
                protocol: Protocol::Omnc,
                src: NodeId::new(0),
                dst: NodeId::new(3),
                seed: 11,
                duration: 60.0,
            },
            TraceRecord::Mac(TraceEvent::Delivered {
                at: SimTime::new(0.5),
                from: NodeId::new(0),
                to: NodeId::new(1),
                tag: Some(PacketTag {
                    session: 7,
                    generation: GenerationId::new(0),
                    seq: 0,
                    origin: NodeId::new(0),
                }),
            }),
            TraceRecord::Absorbed(Absorbed {
                at: 0.5,
                node: NodeId::new(3),
                from: NodeId::new(1),
                tag: None,
                generation: GenerationId::new(0),
                innovative: true,
                rank_after: 1,
                completed: false,
            }),
            TraceRecord::SessionEnd {
                session: 7,
                throughput: 123.4,
                generations_decoded: 2,
                innovative: 16,
                redundant: 3,
                final_rank: 16,
                dropped_mac_events: 0,
            },
        ];
        for r in &records {
            let line = serde_json::to_string(r).unwrap();
            let back: TraceRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, r, "line {line}");
        }
        let trace = SessionTrace {
            records,
            dropped_mac_events: 0,
        };
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert_eq!(trace.absorptions().count(), 1);
        assert_eq!(trace.mac_events().count(), 1);
    }

    #[test]
    fn timestamps_cover_event_records_only() {
        assert_eq!(
            TraceRecord::Mac(TraceEvent::TxComplete {
                at: SimTime::new(2.0),
                node: NodeId::new(0),
            })
            .at(),
            Some(2.0)
        );
        assert_eq!(
            TraceRecord::SessionEnd {
                session: 0,
                throughput: 0.0,
                generations_decoded: 0,
                innovative: 0,
                redundant: 0,
                final_rank: 0,
                dropped_mac_events: 0,
            }
            .at(),
            None
        );
    }
}
