//! Re-initiation under link-quality change (Sec. 4).
//!
//! OMNC "is based on the presumption that the link qualities in the target
//! network are relatively stable over time. ... In cases where link
//! qualities change significantly, the node selection and rate allocation
//! have to be re-initiated, which brings a certain amount of overhead."
//!
//! This module implements that adaptation loop: a change detector over
//! probed link qualities, and a session driver that re-runs node selection
//! and rate control when the detector fires, compared against a
//! non-adaptive run that keeps the stale allocation.

use net_topo::graph::{NodeId, Topology};
use net_topo::probe;
use rand::Rng;

use crate::runner::{run_omnc_with_rates, run_session, Protocol, SessionOutcome};
use crate::session::SessionConfig;

/// Decides whether the measured link qualities differ enough from the
/// baseline to warrant re-initiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeDetector {
    /// Mean absolute per-link probability change that triggers
    /// re-initiation.
    pub mean_delta_threshold: f64,
    /// Single-link change that triggers re-initiation on its own.
    pub max_delta_threshold: f64,
}

impl Default for ChangeDetector {
    fn default() -> Self {
        // Real measurements see noticeable variation "only on a daily
        // basis" (Sec. 4 citing Reis et al.); these thresholds ignore
        // probe noise but catch genuine shifts.
        ChangeDetector {
            mean_delta_threshold: 0.08,
            max_delta_threshold: 0.3,
        }
    }
}

impl ChangeDetector {
    /// Compares two topologies link by link (union of their link sets; a
    /// vanished or new link counts with the full probability difference).
    /// Returns `(mean delta, max delta)`.
    pub fn deltas(&self, baseline: &Topology, current: &Topology) -> (f64, f64) {
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let mut count = 0usize;
        let mut visit = |a: &Topology, b: &Topology, dedup: bool| {
            for l in a.links() {
                if dedup && b.link_prob(l.from, l.to).is_some() {
                    continue; // counted from the other side already
                }
                let other = b.link_prob(l.from, l.to).unwrap_or(0.0);
                let d = (l.p - other).abs();
                sum += d;
                max = max.max(d);
                count += 1;
            }
        };
        visit(baseline, current, false);
        visit(current, baseline, true);
        if count == 0 {
            (0.0, 0.0)
        } else {
            (sum / count as f64, max)
        }
    }

    /// `true` if the change is significant enough to re-initiate.
    pub fn should_reinitiate(&self, baseline: &Topology, current: &Topology) -> bool {
        let (mean, max) = self.deltas(baseline, current);
        mean > self.mean_delta_threshold || max > self.max_delta_threshold
    }
}

/// Outcome of an adaptation experiment: throughput in the epoch after the
/// link-quality shift, with and without re-initiation.
#[derive(Debug, Clone)]
pub struct AdaptationOutcome {
    /// Whether the detector fired on the (probed) change.
    pub detected: bool,
    /// Post-change outcome with re-initiated selection + rates.
    pub adaptive: SessionOutcome,
    /// Post-change outcome keeping the pre-change rate allocation.
    pub stale: SessionOutcome,
}

/// Runs the paper's re-initiation story on an explicit quality shift:
/// the session ran on `before`; the environment becomes `after`. Link
/// qualities are re-measured by probing (`probes` broadcasts per node, with
/// real sampling noise); if the [`ChangeDetector`] fires, node selection
/// and rate control are re-run on the measured topology.
///
/// Returns the post-change epoch under both policies so callers can
/// quantify the value of re-initiation.
///
/// # Panics
///
/// Panics if `src`/`dst` are disconnected in either topology.
#[allow(clippy::too_many_arguments)] // an experiment driver: every knob is load-bearing
pub fn run_quality_shift<R: Rng + ?Sized>(
    before: &Topology,
    after: &Topology,
    src: NodeId,
    dst: NodeId,
    cfg: &SessionConfig,
    detector: &ChangeDetector,
    probes: u32,
    rng: &mut R,
    seed: u64,
) -> AdaptationOutcome {
    // The pre-change allocation, exactly as a running session would hold it.
    let pre = run_session(before, src, dst, Protocol::Omnc, cfg, seed);
    debug_assert!(pre.throughput >= 0.0);

    // Probe the new environment (this is what nodes can actually observe).
    let measured = probe::measured_topology(after, probes, rng);
    let detected = detector.should_reinitiate(before, &measured);

    let adaptive = if detected {
        // Full re-initiation: selection + rate control on the new truth.
        run_session(after, src, dst, Protocol::Omnc, cfg, seed + 1)
    } else {
        // Detector missed it: behave exactly like the stale branch.
        stale_run(before, after, src, dst, cfg, seed + 1)
    };
    let stale = stale_run(before, after, src, dst, cfg, seed + 1);

    AdaptationOutcome {
        detected,
        adaptive,
        stale,
    }
}

/// Runs a session on `after` using the rate allocation optimized for
/// `before` — the cost of *not* re-initiating.
fn stale_run(
    before: &Topology,
    after: &Topology,
    src: NodeId,
    dst: NodeId,
    cfg: &SessionConfig,
    seed: u64,
) -> SessionOutcome {
    use net_topo::select::select_forwarders;
    use omnc_opt::{default_portfolio, run_best, SUnicast};

    // Rates computed on the stale topology...
    let stale_sel = select_forwarders(before, src, dst);
    let stale_problem = SUnicast::from_selection(before, &stale_sel, cfg.capacity);
    let stale_alloc = run_best(&stale_problem, &default_portfolio());

    // ...applied to the new environment's instance (nodes keep their old
    // rates; nodes that join the new selection but had no stale rate stay
    // silent — exactly what a non-re-initiated deployment does).
    run_omnc_with_rates(after, src, dst, cfg, seed, |new_problem| {
        (0..new_problem.node_count())
            .map(|i| {
                stale_problem
                    .local_index(new_problem.node_id(i))
                    .map(|old| stale_alloc.broadcast_rate(old))
                    .unwrap_or(0.0)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::deploy::Deployment;
    use net_topo::phy::Phy;
    use rand::SeedableRng;

    fn shifted_pair(seed: u64) -> (Topology, Topology, NodeId, NodeId) {
        let lossy = Phy::paper_lossy();
        let dep = Deployment::random(40, 6.0, &lossy, seed);
        let before = dep.topology_with_phy(&lossy);
        // A severe environment change: power drop (gain < 1 worsens links).
        let after = dep.topology_with_phy(&lossy.with_power_gain(0.75));
        let (s, d) = before.farthest_pair();
        (before, after, s, d)
    }

    #[test]
    fn detector_fires_on_real_shifts_and_not_on_identity() {
        let (before, after, _, _) = shifted_pair(3);
        let det = ChangeDetector::default();
        assert!(det.should_reinitiate(&before, &after));
        assert!(!det.should_reinitiate(&before, &before));
        let (mean, max) = det.deltas(&before, &before);
        assert_eq!((mean, max), (0.0, 0.0));
    }

    #[test]
    fn detector_tolerates_probe_noise() {
        let (before, _, _, _) = shifted_pair(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // Probing the *same* environment must not trigger re-initiation.
        let measured = probe::measured_topology(&before, 400, &mut rng);
        assert!(!ChangeDetector::default().should_reinitiate(&before, &measured));
    }

    #[test]
    fn reinitiation_beats_stale_rates_after_a_shift() {
        // Single sessions are quantized to whole generations, so compare
        // averages over several deployments rather than one noisy run.
        let cfg = SessionConfig {
            payload_block_size: 1,
            ..SessionConfig::tiny()
        };
        let mut adaptive_total = 0.0;
        let mut stale_total = 0.0;
        for seed in [3u64, 5, 7, 8, 9, 10, 12, 13] {
            let (before, after, s, d) = shifted_pair(seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(11 + seed);
            let out = run_quality_shift(
                &before,
                &after,
                s,
                d,
                &cfg,
                &ChangeDetector::default(),
                300,
                &mut rng,
                41 + seed,
            );
            assert!(
                out.detected,
                "the power drop must be detected (seed {seed})"
            );
            assert!(out.adaptive.throughput > 0.0, "seed {seed}");
            adaptive_total += out.adaptive.throughput;
            stale_total += out.stale.throughput;
        }
        assert!(
            adaptive_total >= 0.95 * stale_total,
            "re-initiation should not lose: adaptive {adaptive_total} vs stale {stale_total}"
        );
    }
}
