//! The protocol message type shared by all four protocols.

use net_topo::graph::NodeId;
use rlnc::{CodedPacket, GenerationId};

/// Messages on the air in any of the reproduced protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A random-linear-coded packet (OMNC, MORE, oldMORE).
    Coded(CodedPacket),
    /// An uncoded data block travelling hop-by-hop (ETX routing).
    Block {
        /// Sequence number of the block within the session.
        seq: u64,
        /// The unicast session's final destination.
        dst: NodeId,
    },
    /// Destination acknowledgement for a decoded generation. The paper
    /// sends ACKs back "preferably using traditional best path routing";
    /// see [`crate::session::SessionShared`] for how the reproduction
    /// models them.
    Ack {
        /// The generation being acknowledged.
        generation: GenerationId,
    },
}

impl Msg {
    /// The generation a coded message belongs to, if any.
    pub fn generation(&self) -> Option<GenerationId> {
        match self {
            Msg::Coded(p) => Some(p.generation()),
            Msg::Ack { generation } => Some(*generation),
            Msg::Block { .. } => None,
        }
    }

    /// `true` for coded packets.
    pub fn is_coded(&self) -> bool {
        matches!(self, Msg::Coded(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_extraction() {
        let g = GenerationId::new(3);
        let coded = Msg::Coded(CodedPacket::new(g, vec![1, 2], vec![3, 4]).unwrap());
        assert_eq!(coded.generation(), Some(g));
        assert!(coded.is_coded());
        assert_eq!(Msg::Ack { generation: g }.generation(), Some(g));
        assert_eq!(
            Msg::Block {
                seq: 0,
                dst: NodeId::new(1)
            }
            .generation(),
            None
        );
    }
}
