//! Memory observability: a counting [`GlobalAlloc`] wrapper, scoped
//! allocation accounting, and peak-RSS sampling.
//!
//! ROADMAP items 1, 2, and 5 all promise allocation-free hot loops; this
//! module is the instrument that makes those claims checkable. Three
//! pieces:
//!
//! * [`CountingAlloc`] — a zero-dependency `#[global_allocator]` wrapper
//!   around [`System`] that, when counting is switched on with
//!   [`set_alloc_counting`], tallies allocation / reallocation / free
//!   events, bytes, and the live-bytes high-water mark into thread-local
//!   counters. Binaries install it; the library never does.
//! * [`AllocScope`] / [`thread_alloc_stats`] — scoped and absolute reads
//!   of the calling thread's counters, which is also how the span
//!   [`Profiler`](crate::Profiler) attributes allocations to spans.
//! * [`sample_rss`] — `VmRSS` / `VmHWM` from `/proc/self/status`
//!   (Linux; `None` elsewhere), for session- and campaign-cell-boundary
//!   peak-RSS records.
//!
//! Costs: with counting **off** (the default) every allocator call pays
//! one relaxed atomic load on top of `System` — below measurement noise
//! in `perf_smoke` (<5% on every throughput figure). With counting on,
//! each call additionally bumps a handful of thread-local `Cell`s.
//!
//! Determinism: the counters are plain event counts, so a seeded
//! single-threaded workload produces identical numbers on every run and
//! host — they gate like span call counts. RSS is host-dependent and
//! must never flow into byte-compared artifacts (see `omnc-campaign`'s
//! separate `memory.json`).
//!
//! The thread-local counters are `const`-initialized `Cell`s with no
//! destructor, so the allocator hooks are free of lazy TLS
//! initialization and safe to run during thread teardown (reads fall
//! back to no-ops via `try_with`). Counters are per-thread: a buffer
//! allocated on one thread and freed on another shows up as an
//! allocation here and a free there, which is why `live_bytes` is
//! signed.

// SAFETY: this module is the workspace's single sanctioned unsafe
// surface — forwarding the `GlobalAlloc` contract to `std::alloc::System`
// unchanged. Each unsafe item below carries its own SAFETY comment
// (enforced by the omnc-lint `unsafe-audit` rule).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};

/// Global switch for allocation counting. Off by default so the
/// allocator costs one relaxed load until a binary opts in.
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Turns allocation counting on or off process-wide. Counters are not
/// reset; they simply stop (or resume) advancing.
pub fn set_alloc_counting(enabled: bool) {
    // ordering: a standalone flag with no dependent data; readers only
    // need to eventually observe the flip, not synchronize with it.
    COUNTING.store(enabled, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
#[must_use]
pub fn alloc_counting_enabled() -> bool {
    // ordering: see set_alloc_counting — flag-only, no acquire needed.
    COUNTING.load(Ordering::Relaxed)
}

struct Counters {
    allocs: Cell<u64>,
    reallocs: Cell<u64>,
    frees: Cell<u64>,
    bytes_allocated: Cell<u64>,
    bytes_freed: Cell<u64>,
    live_bytes: Cell<i64>,
    live_peak_bytes: Cell<i64>,
}

impl Counters {
    const fn new() -> Counters {
        Counters {
            allocs: Cell::new(0),
            reallocs: Cell::new(0),
            frees: Cell::new(0),
            bytes_allocated: Cell::new(0),
            bytes_freed: Cell::new(0),
            live_bytes: Cell::new(0),
            live_peak_bytes: Cell::new(0),
        }
    }

    fn bump_live(&self, delta: i64) {
        let live = self.live_bytes.get().wrapping_add(delta);
        self.live_bytes.set(live);
        if live > self.live_peak_bytes.get() {
            self.live_peak_bytes.set(live);
        }
    }
}

thread_local! {
    // `const` initialization + no destructor: accessing these from inside
    // the allocator can neither allocate nor recurse.
    static COUNTERS: Counters = const { Counters::new() };
}

fn record_alloc(size: usize) {
    let _ = COUNTERS.try_with(|c| {
        c.allocs.set(c.allocs.get().wrapping_add(1));
        c.bytes_allocated
            .set(c.bytes_allocated.get().wrapping_add(size as u64));
        c.bump_live(size as i64);
    });
}

fn record_free(size: usize) {
    let _ = COUNTERS.try_with(|c| {
        c.frees.set(c.frees.get().wrapping_add(1));
        c.bytes_freed
            .set(c.bytes_freed.get().wrapping_add(size as u64));
        c.bump_live(-(size as i64));
    });
}

fn record_realloc(old_size: usize, new_size: usize) {
    let _ = COUNTERS.try_with(|c| {
        c.reallocs.set(c.reallocs.get().wrapping_add(1));
        if new_size >= old_size {
            c.bytes_allocated.set(
                c.bytes_allocated
                    .get()
                    .wrapping_add((new_size - old_size) as u64),
            );
        } else {
            c.bytes_freed.set(
                c.bytes_freed
                    .get()
                    .wrapping_add((old_size - new_size) as u64),
            );
        }
        c.bump_live(new_size as i64 - old_size as i64);
    });
}

/// A counting wrapper around [`System`], meant to be installed by
/// binaries:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;
/// ```
///
/// Until [`set_alloc_counting`]`(true)` is called it only forwards to
/// `System` behind one relaxed atomic load.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: every call is forwarded to `System` with the caller's layout
// unchanged, so `System`'s `GlobalAlloc` guarantees carry over; the
// counter updates touch only thread-local `Cell`s and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract; it is
    // forwarded verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same layout, same contract, delegated to `System`.
        let ptr = unsafe { System.alloc(layout) };
        // ordering: counters tolerate a stale flag read; relaxed keeps the
        // allocator fast path fence-free.
        if !ptr.is_null() && COUNTING.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: the caller upholds `GlobalAlloc::alloc_zeroed`'s contract;
    // it is forwarded verbatim to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same layout, same contract, delegated to `System`.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        // ordering: same as alloc — stale flag reads are harmless.
        if !ptr.is_null() && COUNTING.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: the caller guarantees `ptr` was allocated by this allocator
    // with `layout`; both are forwarded verbatim to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // ordering: same as alloc — stale flag reads are harmless.
        if COUNTING.load(Ordering::Relaxed) {
            record_free(layout.size());
        }
        // SAFETY: same pointer and layout, same contract, delegated to
        // `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: the caller guarantees `ptr` was allocated by this allocator
    // with `layout` and `new_size` is valid; forwarded verbatim to
    // `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: same pointer, layout, and size, delegated to `System`.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        // ordering: same as alloc — stale flag reads are harmless.
        if !new_ptr.is_null() && COUNTING.load(Ordering::Relaxed) {
            record_realloc(layout.size(), new_size);
        }
        new_ptr
    }
}

/// A snapshot of the calling thread's allocation counters.
///
/// All counters are monotone except `live_bytes` (allocated minus freed
/// on this thread, signed because cross-thread frees can push it
/// negative) and `live_peak_bytes` (the high-water mark of
/// `live_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation events (`alloc` + `alloc_zeroed`).
    pub allocs: u64,
    /// Reallocation events.
    pub reallocs: u64,
    /// Deallocation events.
    pub frees: u64,
    /// Bytes requested by allocations, plus realloc growth.
    pub bytes_allocated: u64,
    /// Bytes released by frees, plus realloc shrinkage.
    pub bytes_freed: u64,
    /// Allocated-minus-freed bytes on this thread.
    pub live_bytes: i64,
    /// High-water mark of `live_bytes`.
    pub live_peak_bytes: i64,
}

impl AllocStats {
    /// Allocation events of every kind (`allocs + reallocs`) — the
    /// "allocs" number the profiler and the bench gates use.
    #[must_use]
    pub fn alloc_events(&self) -> u64 {
        self.allocs.wrapping_add(self.reallocs)
    }
}

/// Reads the calling thread's allocation counters. All zeros when
/// counting has never been enabled (or during thread teardown).
#[must_use]
pub fn thread_alloc_stats() -> AllocStats {
    COUNTERS
        .try_with(|c| AllocStats {
            allocs: c.allocs.get(),
            reallocs: c.reallocs.get(),
            frees: c.frees.get(),
            bytes_allocated: c.bytes_allocated.get(),
            bytes_freed: c.bytes_freed.get(),
            live_bytes: c.live_bytes.get(),
            live_peak_bytes: c.live_peak_bytes.get(),
        })
        .unwrap_or_default()
}

/// The cheap monotone pair the span profiler snapshots at span entry and
/// exit: (allocation events including reallocs, bytes allocated).
#[must_use]
pub(crate) fn profile_alloc_snapshot() -> (u64, u64) {
    COUNTERS
        .try_with(|c| {
            (
                c.allocs.get().wrapping_add(c.reallocs.get()),
                c.bytes_allocated.get(),
            )
        })
        .unwrap_or((0, 0))
}

/// Scoped allocation accounting: snapshot the thread counters at
/// [`AllocScope::start`], read the difference with [`AllocScope::delta`].
///
/// ```ignore
/// let scope = AllocScope::start();
/// run_workload();
/// let d = scope.delta();
/// println!("{} allocation events, {} bytes", d.alloc_events(), d.bytes_allocated);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start: AllocStats,
}

impl AllocScope {
    /// Opens a scope at the thread's current counter values.
    #[must_use]
    pub fn start() -> AllocScope {
        AllocScope {
            start: thread_alloc_stats(),
        }
    }

    /// Counter movement since [`AllocScope::start`]. Monotone fields are
    /// differences; `live_bytes` is the net change over the scope, and
    /// `live_peak_bytes` is the thread's absolute high-water mark at read
    /// time (peaks do not subtract meaningfully).
    #[must_use]
    pub fn delta(&self) -> AllocStats {
        let now = thread_alloc_stats();
        AllocStats {
            allocs: now.allocs.wrapping_sub(self.start.allocs),
            reallocs: now.reallocs.wrapping_sub(self.start.reallocs),
            frees: now.frees.wrapping_sub(self.start.frees),
            bytes_allocated: now.bytes_allocated.wrapping_sub(self.start.bytes_allocated),
            bytes_freed: now.bytes_freed.wrapping_sub(self.start.bytes_freed),
            live_bytes: now.live_bytes.wrapping_sub(self.start.live_bytes),
            live_peak_bytes: now.live_peak_bytes,
        }
    }
}

// ------------------------------------------------------------------ RSS

/// Resident-set figures from `/proc/self/status`, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RssSample {
    /// Current resident set (`VmRSS`).
    pub vm_rss_bytes: u64,
    /// Peak resident set over the process lifetime (`VmHWM`).
    pub vm_hwm_bytes: u64,
}

/// Samples the process's resident-set size. `None` off Linux or when
/// `/proc/self/status` is unreadable. Host-dependent by nature: record
/// it in trajectories and logs, never in byte-compared artifacts.
#[must_use]
pub fn sample_rss() -> Option<RssSample> {
    if cfg!(target_os = "linux") {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_proc_status(&status)
    } else {
        None
    }
}

fn parse_proc_status(text: &str) -> Option<RssSample> {
    let mut rss = None;
    let mut hwm = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = parse_kb_field(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            hwm = parse_kb_field(rest);
        }
    }
    Some(RssSample {
        vm_rss_bytes: rss?,
        vm_hwm_bytes: hwm?,
    })
}

/// Parses the `"  123456 kB"` tail of a `/proc/self/status` line.
fn parse_kb_field(rest: &str) -> Option<u64> {
    rest.trim()
        .strip_suffix("kB")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

/// Serializes tests that toggle the process-wide counting switch (or
/// assert full-report equality that the switch could perturb).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_disabled_records_nothing() {
        let _guard = test_lock();
        set_alloc_counting(false);
        let scope = AllocScope::start();
        let v = std::hint::black_box(vec![0u8; 4096]);
        drop(v);
        let d = scope.delta();
        assert_eq!(d.alloc_events(), 0);
        assert_eq!(d.bytes_allocated, 0);
        assert_eq!(d.frees, 0);
    }

    #[test]
    fn counting_tracks_allocs_frees_and_live_bytes() {
        let _guard = test_lock();
        set_alloc_counting(true);
        let scope = AllocScope::start();
        let v = std::hint::black_box(vec![7u8; 8192]);
        let mid = scope.delta();
        drop(v);
        let end = scope.delta();
        set_alloc_counting(false);
        assert!(mid.allocs >= 1, "{mid:?}");
        assert!(mid.bytes_allocated >= 8192, "{mid:?}");
        assert!(mid.live_bytes >= 8192, "{mid:?}");
        assert!(end.frees >= 1, "{end:?}");
        assert!(end.bytes_freed >= 8192, "{end:?}");
        assert_eq!(end.live_bytes, 0, "{end:?}");
        // The high-water mark saw the buffer while it was live.
        assert!(end.live_peak_bytes >= mid.live_bytes, "{end:?}");
    }

    #[test]
    fn realloc_counts_as_a_realloc_event() {
        let _guard = test_lock();
        set_alloc_counting(true);
        let scope = AllocScope::start();
        let mut v: Vec<u64> = Vec::with_capacity(4);
        for i in 0..4096u64 {
            v.push(i);
        }
        std::hint::black_box(&v);
        let d = scope.delta();
        set_alloc_counting(false);
        assert!(d.reallocs >= 1, "vec growth should realloc: {d:?}");
        assert!(d.bytes_allocated >= 4096 * 8, "{d:?}");
    }

    #[test]
    fn stats_stay_consistent_while_counting() {
        let _guard = test_lock();
        set_alloc_counting(true);
        let _v = std::hint::black_box(vec![1u8; 1024]);
        let s = thread_alloc_stats();
        set_alloc_counting(false);
        assert!(s.live_peak_bytes >= s.live_bytes, "{s:?}");
        assert!(s.alloc_events() >= s.allocs, "{s:?}");
    }

    #[test]
    fn rss_sampler_reports_plausible_figures_on_linux() {
        match sample_rss() {
            Some(rss) => {
                assert!(rss.vm_rss_bytes > 0, "{rss:?}");
                assert!(rss.vm_hwm_bytes >= rss.vm_rss_bytes, "{rss:?}");
            }
            None => assert!(
                !std::path::Path::new("/proc/self/status").exists(),
                "sampler returned None even though /proc/self/status exists"
            ),
        }
    }

    #[test]
    fn proc_status_parser_reads_rss_and_hwm() {
        let text =
            "Name:\tperf_smoke\nVmPeak:\t  999999 kB\nVmHWM:\t   51200 kB\nVmRSS:\t   40960 kB\n";
        let rss = parse_proc_status(text).expect("both fields present");
        assert_eq!(rss.vm_rss_bytes, 40960 * 1024);
        assert_eq!(rss.vm_hwm_bytes, 51200 * 1024);
        // Either field missing -> None.
        assert!(parse_proc_status("VmRSS:\t 1 kB\n").is_none());
        assert!(parse_proc_status("VmHWM:\t 1 kB\n").is_none());
        assert!(parse_proc_status("").is_none());
    }
}
