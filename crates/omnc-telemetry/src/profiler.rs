//! Hierarchical span profiler: nested scoped spans with an explicit
//! parent stack (no thread-local magic), recording call count, total
//! time, and self time per unique span *path* — plus, when the binary
//! installed the counting allocator and enabled counting, allocation
//! events and bytes attributed to each span with the same total/self
//! discipline as ticks.
//!
//! Time comes from a [`Clock`] so the simulation crates never touch
//! `std::time` themselves (the `omnc-lint` `wall-clock` rule): the
//! wall-clock implementation lives here in telemetry, and a
//! deterministic [`VirtualClock`] (one tick per clock read, i.e. an
//! event count) keeps seeded runs byte-identical while still producing
//! meaningful call counts and nesting-weighted totals.
//!
//! A [`Profiler`] built with [`Profiler::disabled`] (also `Default`)
//! hands out no-op guards: instrumented code pays one branch per span
//! when profiling is off. Guards are drop-ordered tolerant — dropping a
//! parent guard closes any still-open children, and a late child drop
//! becomes a no-op.
//!
//! Reports export as (a) a serializable [`ProfileReport`] (JSON via
//! `serde_json`) and (b) Brendan Gregg folded-stacks text
//! (`path;sub;leaf <self>` per line) consumable by `flamegraph.pl` and
//! speedscope.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
// lint: allow(wall-clock) — telemetry is the single crate where wall
// clocks are permitted; sim crates reach clocks only through these types.
use std::time::Instant;

/// A monotone tick source for the profiler.
///
/// `now` takes `&mut self` so deterministic clocks can count their own
/// reads; implementations must be monotone (never decreasing).
pub trait Clock: Send + std::fmt::Debug {
    /// Current tick. Units are implementation-defined (see [`Clock::unit`]).
    fn now(&mut self) -> u64;
    /// Short identifier for reports: `"wall"`, `"virtual"`, ...
    fn name(&self) -> &'static str;
    /// Tick unit for display: `"ns"`, `"events"`, ...
    fn unit(&self) -> &'static str;
}

/// Wall-clock ticks in nanoseconds since the profiler was created.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock with its epoch at construction time.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&mut self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn name(&self) -> &'static str {
        "wall"
    }

    fn unit(&self) -> &'static str {
        "ns"
    }
}

/// A deterministic clock: every read advances one tick, so span totals
/// count clock events (span entries/exits) instead of elapsed time.
/// Two identical seeded runs produce identical profiles.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: u64,
}

impl Clock for VirtualClock {
    fn now(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }

    fn name(&self) -> &'static str {
        "virtual"
    }

    fn unit(&self) -> &'static str {
        "events"
    }
}

/// One node of the span tree, keyed by (parent, name).
#[derive(Debug)]
struct Node {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total: u64,
    allocs: u64,
    alloc_bytes: u64,
}

#[derive(Debug)]
struct Frame {
    node: usize,
    start: u64,
    start_allocs: u64,
    start_alloc_bytes: u64,
}

#[derive(Debug)]
struct State {
    clock: Box<dyn Clock>,
    /// Node 0 is a synthetic root holding the top-level spans.
    nodes: Vec<Node>,
    /// The explicit parent stack; `span()` pushes, guard drops pop.
    stack: Vec<Frame>,
}

impl State {
    fn child_named(&mut self, parent: usize, name: &str) -> usize {
        let found = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        match found {
            Some(id) => id,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    name: name.to_string(),
                    children: Vec::new(),
                    calls: 0,
                    total: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                });
                self.nodes[parent].children.push(id);
                id
            }
        }
    }
}

/// The profiler handle. Cheap to clone (shares the span tree);
/// [`Profiler::disabled`] / `Default` makes every operation a no-op.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    core: Option<Arc<Mutex<State>>>,
}

impl Profiler {
    /// An enabled profiler reading the given clock.
    #[must_use]
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Profiler {
            core: Some(Arc::new(Mutex::new(State {
                clock,
                nodes: vec![Node {
                    name: String::new(),
                    children: Vec::new(),
                    calls: 0,
                    total: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                }],
                stack: Vec::new(),
            }))),
        }
    }

    /// An enabled profiler on wall-clock nanoseconds.
    #[must_use]
    pub fn wall() -> Self {
        Profiler::with_clock(Box::new(WallClock::new()))
    }

    /// An enabled profiler on the deterministic [`VirtualClock`].
    #[must_use]
    pub fn virtual_clock() -> Self {
        Profiler::with_clock(Box::<VirtualClock>::default())
    }

    /// A profiler whose spans cost one branch and record nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Profiler { core: None }
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a span named `name` under the innermost open span (or at
    /// the top level). The span closes when the returned guard drops;
    /// dropping a parent guard first closes any children it still has
    /// open. `name` must not contain `;` or whitespace (it becomes a
    /// folded-stack path component).
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str) -> ProfileGuard {
        let Some(core) = &self.core else {
            return ProfileGuard {
                core: None,
                depth: 0,
            };
        };
        let mut st = core.lock();
        let t = st.clock.now();
        let parent = st.stack.last().map_or(0, |f| f.node);
        let node = st.child_named(parent, name);
        // Snapshot the alloc counters *after* any node bookkeeping above,
        // so the tree's own allocations land in the enclosing span, not
        // in the one being opened.
        let (start_allocs, start_alloc_bytes) = crate::alloc::profile_alloc_snapshot();
        st.stack.push(Frame {
            node,
            start: t,
            start_allocs,
            start_alloc_bytes,
        });
        let depth = st.stack.len();
        ProfileGuard {
            core: Some(Arc::clone(core)),
            depth,
        }
    }

    /// Snapshots the span tree as a flat, depth-first report (children
    /// ordered by name, so the output is deterministic regardless of
    /// execution interleaving). Spans still open contribute their calls
    /// so far; take the report after the roots have closed for exact
    /// totals.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let Some(core) = &self.core else {
            return ProfileReport {
                clock: "disabled".to_string(),
                unit: "ticks".to_string(),
                spans: Vec::new(),
            };
        };
        let st = core.lock();
        let mut spans = Vec::new();
        let mut path = String::new();
        let mut roots = st.nodes[0].children.clone();
        roots.sort_by(|a, b| st.nodes[*a].name.cmp(&st.nodes[*b].name));
        for id in roots {
            visit(&st.nodes, id, &mut path, 0, &mut spans);
        }
        ProfileReport {
            clock: st.clock.name().to_string(),
            unit: st.clock.unit().to_string(),
            spans,
        }
    }
}

fn visit(nodes: &[Node], id: usize, path: &mut String, depth: u64, out: &mut Vec<ProfileSpan>) {
    let node = &nodes[id];
    let base_len = path.len();
    if !path.is_empty() {
        path.push(';');
    }
    path.push_str(&node.name);
    let child_total: u64 = node.children.iter().map(|&c| nodes[c].total).sum();
    let child_allocs: u64 = node.children.iter().map(|&c| nodes[c].allocs).sum();
    let child_alloc_bytes: u64 = node.children.iter().map(|&c| nodes[c].alloc_bytes).sum();
    out.push(ProfileSpan {
        path: path.clone(),
        name: node.name.clone(),
        depth,
        calls: node.calls,
        total_ticks: node.total,
        self_ticks: node.total.saturating_sub(child_total),
        allocs: node.allocs,
        alloc_bytes: node.alloc_bytes,
        self_allocs: node.allocs.saturating_sub(child_allocs),
        self_alloc_bytes: node.alloc_bytes.saturating_sub(child_alloc_bytes),
    });
    let mut kids = node.children.clone();
    kids.sort_by(|a, b| nodes[*a].name.cmp(&nodes[*b].name));
    for c in kids {
        visit(nodes, c, path, depth + 1, out);
    }
    path.truncate(base_len);
}

/// RAII guard returned by [`Profiler::span`].
#[derive(Debug)]
pub struct ProfileGuard {
    core: Option<Arc<Mutex<State>>>,
    /// Stack length right after this span's frame was pushed; the drop
    /// pops back down to `depth - 1`, closing leaked children too.
    depth: usize,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        let Some(core) = self.core.take() else {
            return;
        };
        let mut st = core.lock();
        if st.stack.len() < self.depth {
            // An enclosing guard already closed this frame.
            return;
        }
        let t = st.clock.now();
        let (allocs, alloc_bytes) = crate::alloc::profile_alloc_snapshot();
        while st.stack.len() >= self.depth {
            let Some(frame) = st.stack.pop() else { break };
            let node = &mut st.nodes[frame.node];
            node.calls += 1;
            node.total += t.saturating_sub(frame.start);
            node.allocs += allocs.saturating_sub(frame.start_allocs);
            node.alloc_bytes += alloc_bytes.saturating_sub(frame.start_alloc_bytes);
        }
    }
}

/// One span path in a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSpan {
    /// Full `;`-joined path from the top level, e.g. `"decode;eliminate"`.
    pub path: String,
    /// Leaf name (last path component).
    pub name: String,
    /// Nesting depth (0 for top-level spans).
    pub depth: u64,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total ticks between entry and exit, summed over calls.
    pub total_ticks: u64,
    /// Total ticks minus the total of direct children (never negative).
    pub self_ticks: u64,
    /// Allocation events (allocs + reallocs) on the span's thread
    /// between entry and exit, children included. All zeros unless the
    /// binary installed [`CountingAlloc`](crate::CountingAlloc) and
    /// enabled [`set_alloc_counting`](crate::set_alloc_counting).
    pub allocs: u64,
    /// Bytes allocated (including realloc growth) between entry and
    /// exit, children included.
    pub alloc_bytes: u64,
    /// Allocation events minus those of direct children.
    pub self_allocs: u64,
    /// Allocated bytes minus those of direct children.
    pub self_alloc_bytes: u64,
}

/// A serializable profiler snapshot, ordered depth-first with children
/// sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Clock that produced the ticks (`"wall"` / `"virtual"`).
    pub clock: String,
    /// Tick unit (`"ns"` / `"events"`).
    pub unit: String,
    /// Flattened span tree.
    pub spans: Vec<ProfileSpan>,
}

impl ProfileReport {
    /// Sum of top-level span totals — an upper bound on every span's
    /// contribution, and the denominator for percentage displays.
    #[must_use]
    pub fn total_root_ticks(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.total_ticks)
            .sum()
    }

    /// Looks up a span by its full `;`-joined path.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&ProfileSpan> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Brendan Gregg folded-stacks text: one `path;to;leaf <self>` line
    /// per span with nonzero self time, ready for `flamegraph.pl` or
    /// speedscope.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            if s.self_ticks > 0 {
                out.push_str(&s.path);
                out.push(' ');
                out.push_str(&s.self_ticks.to_string());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_noop() {
        let p = Profiler::disabled();
        {
            let _a = p.span("outer");
            let _b = p.span("inner");
        }
        assert!(!p.is_enabled());
        let report = p.report();
        assert!(report.spans.is_empty());
        assert_eq!(report.folded(), "");
    }

    #[test]
    fn nested_spans_record_counts_and_paths() {
        let p = Profiler::virtual_clock();
        for _ in 0..3 {
            let _outer = p.span("decode");
            {
                let _inner = p.span("eliminate");
            }
            {
                let _inner = p.span("rank_update");
            }
        }
        let report = p.report();
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["decode", "decode;eliminate", "decode;rank_update"]);
        assert_eq!(report.span("decode").map(|s| s.calls), Some(3));
        assert_eq!(report.span("decode;eliminate").map(|s| s.calls), Some(3));
        assert_eq!(report.clock, "virtual");
        assert_eq!(report.unit, "events");
    }

    /// Satellite: profiler self-time arithmetic — parent self time equals
    /// parent total minus the totals of its direct children.
    #[test]
    fn self_time_is_total_minus_children() {
        let p = Profiler::virtual_clock();
        {
            let _outer = p.span("parent");
            let _a = p.span("a");
            drop(_a);
            let _b = p.span("b");
        }
        let report = p.report();
        let parent = report.span("parent").expect("parent span");
        let a = report.span("parent;a").expect("a span");
        let b = report.span("parent;b").expect("b span");
        assert_eq!(
            parent.self_ticks,
            parent.total_ticks - a.total_ticks - b.total_ticks
        );
        // Self times over the whole report sum to at most the root total.
        let self_sum: u64 = report.spans.iter().map(|s| s.self_ticks).sum();
        assert!(self_sum <= report.total_root_ticks());
        assert!(parent.self_ticks > 0);
    }

    #[test]
    fn same_name_under_different_parents_are_distinct_paths() {
        let p = Profiler::virtual_clock();
        {
            let _x = p.span("x");
            let _k = p.span("kernel");
        }
        {
            let _y = p.span("y");
            let _k = p.span("kernel");
        }
        let report = p.report();
        assert!(report.span("x;kernel").is_some());
        assert!(report.span("y;kernel").is_some());
        assert_eq!(report.spans.len(), 4);
    }

    #[test]
    fn parent_drop_closes_leaked_children() {
        let p = Profiler::virtual_clock();
        let outer = p.span("outer");
        let inner = p.span("inner");
        drop(outer); // closes inner too
        drop(inner); // late drop is a no-op
        let report = p.report();
        assert_eq!(report.span("outer").map(|s| s.calls), Some(1));
        assert_eq!(report.span("outer;inner").map(|s| s.calls), Some(1));
        // A fresh span after the leak lands back at the top level.
        drop(p.span("next"));
        let report = p.report();
        assert_eq!(report.span("next").map(|s| s.depth), Some(0));
    }

    /// Tentpole: allocations made inside a span are attributed to it —
    /// totals include children, self excludes direct children — exactly
    /// like ticks.
    #[test]
    fn spans_attribute_allocations_to_self_and_total() {
        let _guard = crate::alloc::test_lock();
        crate::alloc::set_alloc_counting(true);
        let p = Profiler::virtual_clock();
        {
            let _outer = p.span("outer");
            let v = std::hint::black_box(vec![0u8; 8192]);
            {
                let _inner = p.span("inner");
                let w = std::hint::black_box(vec![0u8; 4096]);
                drop(w);
            }
            drop(v);
        }
        crate::alloc::set_alloc_counting(false);
        let report = p.report();
        let outer = report.span("outer").expect("outer span");
        let inner = report.span("outer;inner").expect("inner span");
        assert!(inner.allocs >= 1, "{inner:?}");
        assert!(inner.alloc_bytes >= 4096, "{inner:?}");
        // Outer totals include the inner span plus its own 8 KiB buffer.
        assert!(outer.alloc_bytes >= inner.alloc_bytes + 8192, "{outer:?}");
        assert_eq!(outer.self_allocs, outer.allocs - inner.allocs);
        assert_eq!(
            outer.self_alloc_bytes,
            outer.alloc_bytes - inner.alloc_bytes
        );
        // Inner has no children: self == total.
        assert_eq!(inner.self_allocs, inner.allocs);
        assert_eq!(inner.self_alloc_bytes, inner.alloc_bytes);
    }

    /// Without counting enabled the alloc columns stay at zero — spans
    /// cost no extra work and reports stay byte-stable.
    #[test]
    fn alloc_columns_are_zero_when_counting_is_off() {
        let _guard = crate::alloc::test_lock();
        crate::alloc::set_alloc_counting(false);
        let p = Profiler::virtual_clock();
        {
            let _s = p.span("work");
            std::hint::black_box(vec![0u8; 4096]);
        }
        let report = p.report();
        let s = report.span("work").expect("work span");
        assert_eq!(
            (s.allocs, s.alloc_bytes, s.self_allocs, s.self_alloc_bytes),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn virtual_clock_profiles_are_deterministic() {
        // Hold the alloc-test lock: a counting toggle between the two
        // runs would make their alloc columns differ.
        let _guard = crate::alloc::test_lock();
        let run = || {
            let p = Profiler::virtual_clock();
            for _ in 0..5 {
                let _a = p.span("a");
                let _b = p.span("b");
            }
            p.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn folded_output_lists_self_times() {
        let p = Profiler::virtual_clock();
        {
            let _outer = p.span("root");
            let _inner = p.span("leaf");
        }
        let report = p.report();
        let folded = report.folded();
        let root_self = report.span("root").map(|s| s.self_ticks).unwrap_or(0);
        let leaf_self = report.span("root;leaf").map(|s| s.self_ticks).unwrap_or(0);
        assert_eq!(folded, format!("root {root_self}\nroot;leaf {leaf_self}\n"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let p = Profiler::virtual_clock();
        {
            let _a = p.span("a");
            let _b = p.span("b");
        }
        let report = p.report();
        let text = serde_json::to_string(&report).expect("serialize");
        let back: ProfileReport = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, report);
    }

    #[test]
    fn wall_clock_records_positive_totals() {
        let p = Profiler::wall();
        {
            let _s = p.span("work");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let report = p.report();
        assert_eq!(report.clock, "wall");
        assert_eq!(report.unit, "ns");
        assert_eq!(report.span("work").map(|s| s.calls), Some(1));
    }
}
