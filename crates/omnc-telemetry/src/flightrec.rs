//! The flight recorder: a fixed-capacity ring buffer of recent events
//! plus a panic hook that dumps the ring to `flight-<cell>.jsonl`
//! before unwinding — a black box for campaign cells and long sims.
//!
//! Recording follows the crate's enabled/disabled handle pattern: a
//! [`FlightRecorder::disabled`] handle (the `Default`) drops events
//! after one branch, so instrumented code never checks itself. Events
//! carry a caller-supplied epoch (virtual-clock seconds wherever the
//! caller has them), a monotone sequence number, a short `kind`, and a
//! free-form `detail`; once the ring is full the oldest events fall off
//! and a `dropped` counter keeps the total honest.
//!
//! Dumps happen through a process-global panic hook (installed once,
//! chained in front of whatever hook was already set) reading a
//! thread-local arming slot: [`FlightRecorder::arm`] binds *this
//! thread's* next panic to a recorder and a dump path, and the returned
//! guard disarms on drop — including the unwind path, so a worker that
//! panics dumps exactly its own cell's ring, and retried cells re-arm
//! cleanly. Nothing is ever written unless a panic actually happens,
//! which keeps campaign artifact bytes independent of whether the
//! recorder is on.
//!
//! The dump is JSONL: a header line (`{"flight":…,"panic":…,
//! "dropped":…,"events":…}`) followed by one line per event, oldest
//! first — readable with `omnc-report flight <path>`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Once};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotone sequence number (never resets, survives ring eviction).
    pub seq: u64,
    /// Caller-supplied epoch — virtual-clock seconds where available.
    pub t: f64,
    /// Short event class, e.g. `cell/start`, `sim/done`.
    pub kind: String,
    /// Free-form context.
    pub detail: String,
}

/// The header line of a flight dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightHeader {
    /// The armed label, usually a campaign cell key.
    pub flight: String,
    /// The panic message, when the dump came from the panic hook.
    pub panic: Option<String>,
    /// Events evicted from the ring before the dump.
    pub dropped: u64,
    /// Number of event lines following the header.
    pub events: u64,
}

#[derive(Debug)]
struct FlightCore {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<FlightEvent>,
}

/// The ring-buffer recorder. `Clone` shares the ring; the `Default` is
/// disabled.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    core: Option<Arc<Mutex<FlightCore>>>,
}

impl FlightRecorder {
    /// A recorder that drops every event after one branch.
    #[must_use]
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { core: None }
    }

    /// A live recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            core: Some(Arc::new(Mutex::new(FlightCore {
                capacity,
                next_seq: 0,
                dropped: 0,
                events: VecDeque::with_capacity(capacity),
            }))),
        }
    }

    /// Whether events are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Appends one event, evicting the oldest when the ring is full.
    pub fn record(&self, t: f64, kind: &str, detail: &str) {
        let Some(core) = &self.core else { return };
        let mut core = core.lock();
        let seq = core.next_seq;
        core.next_seq += 1;
        if core.events.len() == core.capacity {
            core.events.pop_front();
            core.dropped += 1;
        }
        core.events.push_back(FlightEvent {
            seq,
            t,
            kind: kind.to_owned(),
            detail: detail.to_owned(),
        });
    }

    /// The ring contents (oldest first) and the evicted-event count.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<FlightEvent>, u64) {
        let Some(core) = &self.core else {
            return (Vec::new(), 0);
        };
        let core = core.lock();
        (core.events.iter().cloned().collect(), core.dropped)
    }

    /// Serializes the ring as a JSONL dump (header line + events).
    #[must_use]
    pub fn render_dump(&self, label: &str, panic_msg: Option<&str>) -> String {
        let (events, dropped) = self.snapshot();
        let header = FlightHeader {
            flight: label.to_owned(),
            panic: panic_msg.map(str::to_owned),
            dropped,
            events: events.len() as u64,
        };
        let mut out = serde_json::to_string(&header).unwrap_or_else(|_| "{}".to_owned());
        out.push('\n');
        for event in &events {
            if let Ok(line) = serde_json::to_string(event) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Writes [`FlightRecorder::render_dump`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_dump(
        &self,
        label: &str,
        panic_msg: Option<&str>,
        path: &Path,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.render_dump(label, panic_msg))
    }

    /// Arms this thread's panic hook: until the returned guard drops,
    /// a panic on this thread dumps this recorder's ring to `path`
    /// (labelled `label`) before unwinding. Re-arming replaces the
    /// previous binding; the hook itself is installed once per process
    /// and chains the hook that was already set.
    #[must_use]
    pub fn arm(&self, label: &str, path: &Path) -> FlightGuard {
        install_panic_hook();
        ARMED.with(|slot| {
            *slot.borrow_mut() = Some(ArmedFlight {
                recorder: self.clone(),
                label: label.to_owned(),
                path: path.to_owned(),
            });
        });
        FlightGuard { _private: () }
    }
}

#[derive(Debug)]
struct ArmedFlight {
    recorder: FlightRecorder,
    label: String,
    path: PathBuf,
}

/// Disarms the thread's flight-recorder binding on drop (including the
/// unwind path after the hook already dumped).
#[derive(Debug)]
pub struct FlightGuard {
    _private: (),
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        ARMED.with(|slot| {
            if let Ok(mut armed) = slot.try_borrow_mut() {
                *armed = None;
            }
        });
    }
}

thread_local! {
    static ARMED: RefCell<Option<ArmedFlight>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

fn install_panic_hook() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Dump before the previous hook prints, so the black box is
            // on disk even if the process aborts right after. The hook
            // must never panic itself: every step is best-effort.
            ARMED.with(|slot| {
                if let Ok(armed) = slot.try_borrow() {
                    if let Some(armed) = armed.as_ref() {
                        let message = payload_message(info.payload());
                        let _ =
                            armed
                                .recorder
                                .write_dump(&armed.label, Some(&message), &armed.path);
                    }
                }
            });
            previous(info);
        }));
    });
}

fn payload_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("omnc-flight-{}-{name}", std::process::id()))
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_evictions() {
        let rec = FlightRecorder::enabled(3);
        for i in 0..5 {
            rec.record(i as f64, "step", &format!("event {i}"));
        }
        let (events, dropped) = rec.snapshot();
        assert_eq!(dropped, 2);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, order kept");
        assert_eq!(events[2].detail, "event 4");
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(0.0, "step", "x");
        assert_eq!(rec.snapshot(), (Vec::new(), 0));
    }

    #[test]
    fn dump_round_trips_header_and_events() {
        let rec = FlightRecorder::enabled(8);
        rec.record(0.0, "cell/start", "protocol=OMNC session=0");
        rec.record(2.0, "sim/done", "throughput=123");
        let dump = rec.render_dump("bad/OMNC/0000000000", Some("boom"));
        let mut lines = dump.lines();
        let header: FlightHeader =
            serde_json::from_str(lines.next().expect("header line")).expect("header parses");
        assert_eq!(header.flight, "bad/OMNC/0000000000");
        assert_eq!(header.panic.as_deref(), Some("boom"));
        assert_eq!((header.dropped, header.events), (0, 2));
        let first: FlightEvent =
            serde_json::from_str(lines.next().expect("event line")).expect("event parses");
        assert_eq!(first.kind, "cell/start");
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn armed_panic_dumps_the_ring_before_unwinding() {
        let path = temp_path("panic-dump.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = FlightRecorder::enabled(4);
        rec.record(0.0, "cell/start", "the last breadcrumb before death");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = rec.arm("doomed/OMNC/0000000001", &path);
            panic!("deliberate test panic");
        }));
        assert!(result.is_err(), "the panic propagates");
        let dump = std::fs::read_to_string(&path).expect("hook wrote the dump");
        let header: FlightHeader =
            serde_json::from_str(dump.lines().next().expect("header")).expect("header parses");
        assert_eq!(header.flight, "doomed/OMNC/0000000001");
        assert_eq!(header.panic.as_deref(), Some("deliberate test panic"));
        assert!(dump.contains("the last breadcrumb before death"));

        // The guard disarmed on unwind: a later panic writes nothing.
        std::fs::remove_file(&path).expect("cleanup");
        let late = std::panic::catch_unwind(|| panic!("unarmed panic"));
        assert!(late.is_err());
        assert!(!path.exists(), "no dump without an armed recorder");
    }
}
