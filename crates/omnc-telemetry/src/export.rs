//! The live observability plane: Prometheus-style text exposition over
//! [`Registry`] snapshots, a shared [`ProgressBoard`] for cells-done /
//! per-worker state / ETA, and a tiny [`Observer`] thread serving both
//! (plus the current [`TimeSeries`] windows) over plain HTTP.
//!
//! Everything here is *strictly read-only* over the handles it is given:
//! the observer thread only ever calls `snapshot()` on the registry and
//! the timeline recorder, so serving has no effect on what a run records
//! and merged campaign artifacts stay byte-identical with serving on.
//!
//! This module is the workspace's one sanctioned network-listener
//! surface (the omnc-lint `concurrency` rule denies `TcpListener` and
//! thread creation everywhere else in the telemetry and sim crates,
//! exactly like the campaign executor sanctions thread pools).
//!
//! The exposition format is the Prometheus text format, producible with
//! zero dependencies: `# TYPE` comments, `name{label="value"} 1234`
//! sample lines, and `_bucket`/`_sum`/`_count` expansions for
//! histograms. Snapshots arrive name-sorted from
//! [`Registry::snapshot`], so the output is deterministic for a given
//! registry state.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::registry::{MetricKind, MetricSnapshot, Registry};
use crate::timeseries::TimeSeries;

// ---------------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------------

/// Renders a registry snapshot in the Prometheus text exposition format.
///
/// Metric names are sanitized to `[a-zA-Z0-9_:]` (everything else maps
/// to `_`), label values are escaped per the format (`\\`, `\"`, `\n`),
/// and histograms expand into cumulative `_bucket{le="…"}` lines plus
/// `_sum` and `_count`. The input order is preserved, so the name-sorted
/// order of [`Registry::snapshot`] carries through to the output.
#[must_use]
pub fn render_exposition(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_typed: Option<&str> = None;
    for snap in snapshot {
        let name = sanitize_metric_name(&snap.name);
        if last_typed != Some(snap.name.as_str()) {
            let kind = match snap.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            out.push_str("# TYPE ");
            out.push_str(&name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_typed = Some(snap.name.as_str());
        }
        match snap.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                out.push_str(&name);
                push_labels(&mut out, &snap.labels, None);
                out.push(' ');
                out.push_str(&format_sample(snap.value));
                out.push('\n');
            }
            MetricKind::Histogram => {
                for bucket in &snap.buckets {
                    let le = bucket
                        .upper_bound
                        .map_or_else(|| "+Inf".to_owned(), format_sample);
                    out.push_str(&name);
                    out.push_str("_bucket");
                    push_labels(&mut out, &snap.labels, Some(("le", &le)));
                    out.push(' ');
                    out.push_str(&bucket.count.to_string());
                    out.push('\n');
                }
                out.push_str(&name);
                out.push_str("_sum");
                push_labels(&mut out, &snap.labels, None);
                out.push(' ');
                out.push_str(&format_sample(snap.sum));
                out.push('\n');
                out.push_str(&name);
                out.push_str("_count");
                push_labels(&mut out, &snap.labels, None);
                out.push(' ');
                out.push_str(&snap.count.to_string());
                out.push('\n');
            }
        }
    }
    out
}

/// Maps a workspace metric path (`mac.tx.delivered`, `omnc/0/queue`) to
/// a valid exposition identifier.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Appends `{k="v",…}` (plus an optional extra pair, used for `le`),
/// omitting the braces entirely when there is nothing to write.
fn push_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&sanitize_metric_name(k));
        out.push_str("=\"");
        push_escaped(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        push_escaped(out, v);
        out.push('"');
    }
    out.push('}');
}

fn push_escaped(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// `f64` sample formatting: `{}` gives the shortest round-trip repr
/// (`5` for `5.0`), with Prometheus's spellings for the specials.
fn format_sample(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_owned()
    } else if value == f64::INFINITY {
        "+Inf".to_owned()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{value}")
    }
}

// ---------------------------------------------------------------------------
// Progress board + ETA estimator
// ---------------------------------------------------------------------------

/// Completion-rate estimate shared by every progress surface: given
/// `completed` units finished over `elapsed_s` seconds and `remaining`
/// still to go, returns `(units_per_s, eta_s)`. `None` until at least
/// one unit has completed over a positive span — no estimate beats a
/// wild one.
///
/// Both `omnc-campaign status` (journal wall timestamps) and the live
/// `/progress` endpoint (board elapsed time) go through this one
/// function, so the two surfaces can never disagree on the math.
#[must_use]
pub fn throughput_eta(completed: usize, remaining: usize, elapsed_s: f64) -> Option<(f64, f64)> {
    if completed == 0 || elapsed_s.is_nan() || elapsed_s <= 0.0 {
        return None;
    }
    let rate = completed as f64 / elapsed_s;
    Some((rate, remaining as f64 / rate))
}

/// One worker's live state in a [`ProgressSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProgress {
    /// Worker index (0-based).
    pub worker: usize,
    /// Whether the worker currently holds a cell.
    pub busy: bool,
    /// Key of the cell in flight, if any.
    pub cell: Option<String>,
    /// Cells this worker has finished so far.
    pub cells_done: u64,
    /// Total seconds this worker has spent busy.
    pub busy_s: f64,
}

/// A point-in-time JSON-serializable view of a run's progress, served
/// at `/progress`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Campaign or run name.
    pub name: String,
    /// Total units of work (campaign cells, sim sessions).
    pub total: usize,
    /// Units finished successfully.
    pub completed: usize,
    /// Units that exhausted their retries.
    pub failed: usize,
    /// Wall seconds since the board was created.
    pub elapsed_s: f64,
    /// Completion rate, once at least one unit finished.
    pub cells_per_s: Option<f64>,
    /// Estimated seconds to finish the remaining units.
    pub eta_s: Option<f64>,
    /// Per-worker state.
    pub workers: Vec<WorkerProgress>,
}

#[derive(Debug)]
struct WorkerSlot {
    current: Option<String>,
    busy_since: Option<Instant>,
    cells_done: u64,
    busy_s: f64,
}

#[derive(Debug)]
struct BoardCore {
    name: String,
    total: usize,
    completed: usize,
    failed: usize,
    started: Instant,
    workers: Vec<WorkerSlot>,
}

/// Shared live-progress state: workers report cell start/finish, the
/// observer thread snapshots. Follows the crate's enabled/disabled
/// handle pattern — a disabled board (the `Default`) drops updates
/// after one branch and snapshots to `None`.
#[derive(Debug, Clone, Default)]
pub struct ProgressBoard {
    core: Option<Arc<Mutex<BoardCore>>>,
}

impl ProgressBoard {
    /// A board that ignores every update.
    #[must_use]
    pub fn disabled() -> ProgressBoard {
        ProgressBoard { core: None }
    }

    /// A live board for `total` units spread over `workers` workers.
    #[must_use]
    pub fn enabled(name: &str, total: usize, workers: usize) -> ProgressBoard {
        let slots = (0..workers)
            .map(|_| WorkerSlot {
                current: None,
                busy_since: None,
                cells_done: 0,
                busy_s: 0.0,
            })
            .collect();
        ProgressBoard {
            core: Some(Arc::new(Mutex::new(BoardCore {
                name: name.to_owned(),
                total,
                completed: 0,
                failed: 0,
                started: Instant::now(),
                workers: slots,
            }))),
        }
    }

    /// Whether updates land anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Worker `worker` began running the cell `key`.
    pub fn cell_started(&self, worker: usize, key: &str) {
        let Some(core) = &self.core else { return };
        let mut core = core.lock();
        if let Some(slot) = core.workers.get_mut(worker) {
            slot.current = Some(key.to_owned());
            slot.busy_since = Some(Instant::now());
        }
    }

    /// Worker `worker` finished its current cell (`ok = false` means the
    /// cell exhausted its retries).
    pub fn cell_finished(&self, worker: usize, ok: bool) {
        let Some(core) = &self.core else { return };
        let mut core = core.lock();
        if ok {
            core.completed += 1;
        } else {
            core.failed += 1;
        }
        if let Some(slot) = core.workers.get_mut(worker) {
            if let Some(since) = slot.busy_since.take() {
                slot.busy_s += since.elapsed().as_secs_f64();
            }
            slot.current = None;
            slot.cells_done += 1;
        }
    }

    /// The current progress view (`None` when disabled).
    #[must_use]
    pub fn snapshot(&self) -> Option<ProgressSnapshot> {
        let core = self.core.as_ref()?;
        let core = core.lock();
        let elapsed_s = core.started.elapsed().as_secs_f64();
        let done = core.completed + core.failed;
        let remaining = core.total.saturating_sub(done);
        let estimate = throughput_eta(done, remaining, elapsed_s);
        Some(ProgressSnapshot {
            name: core.name.clone(),
            total: core.total,
            completed: core.completed,
            failed: core.failed,
            elapsed_s,
            cells_per_s: estimate.map(|(rate, _)| rate),
            eta_s: estimate.map(|(_, eta)| eta),
            workers: core
                .workers
                .iter()
                .enumerate()
                .map(|(i, slot)| WorkerProgress {
                    worker: i,
                    busy: slot.current.is_some(),
                    cell: slot.current.clone(),
                    cells_done: slot.cells_done,
                    busy_s: slot.busy_s
                        + slot
                            .busy_since
                            .map_or(0.0, |since| since.elapsed().as_secs_f64()),
                })
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// The observer thread
// ---------------------------------------------------------------------------

/// The read-only handles an [`Observer`] serves from.
#[derive(Debug, Clone, Default)]
pub struct ObserverHandles {
    /// Metrics for `/metrics` (exposition text).
    pub registry: Registry,
    /// Timeline recorder for `/series` (JSON [`crate::TimelineReport`]).
    pub timeline: TimeSeries,
    /// Progress board for `/progress` (JSON [`ProgressSnapshot`]).
    pub progress: ProgressBoard,
}

/// A background thread serving `/metrics`, `/progress`, and `/series`
/// over HTTP/1.0 from snapshot-only reads of its [`ObserverHandles`].
///
/// Dropping the observer shuts the thread down (a self-connection
/// unblocks the accept loop) and joins it.
#[derive(Debug)]
pub struct Observer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Observer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for an ephemeral
    /// port) and starts the serving thread.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the thread cannot spawn.
    pub fn serve(addr: &str, handles: ObserverHandles) -> std::io::Result<Observer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("omnc-observer".to_owned())
            .spawn(move || serve_loop(&listener, &handles, &flag))?;
        Ok(Observer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Observer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so the thread sees the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn serve_loop(listener: &TcpListener, handles: &ObserverHandles, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = respond(&mut stream, handles);
    }
}

/// Reads one request line and writes one response; any malformed or
/// unknown request gets a 404. Serving is best-effort by design — a
/// dropped scrape must never affect the run being observed.
fn respond(stream: &mut TcpStream, handles: &ObserverHandles) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(2).any(|w| w == b"\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            render_exposition(&handles.registry.snapshot()),
        ),
        "/progress" => (
            "200 OK",
            "application/json",
            match handles.progress.snapshot() {
                Some(snap) => serde_json::to_string(&snap).unwrap_or_else(|_| "{}".to_owned()),
                None => "{}".to_owned(),
            },
        ),
        "/series" => (
            "200 OK",
            "application/json",
            serde_json::to_string(&handles.timeline.snapshot()).unwrap_or_else(|_| "{}".to_owned()),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to observer");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn body_of(response: &str) -> &str {
        response
            .split_once("\r\n\r\n")
            .map(|(_, body)| body)
            .expect("response has a header/body split")
    }

    #[test]
    fn exposition_renders_counters_gauges_and_histograms() {
        let registry = Registry::new();
        registry.counter("mac.tx.started").add(7);
        registry.gauge("queue.len").set(2.5);
        let h = registry.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let text = render_exposition(&registry.snapshot());
        let expected = "# TYPE lat histogram\n\
                        lat_bucket{le=\"1\"} 1\n\
                        lat_bucket{le=\"10\"} 2\n\
                        lat_bucket{le=\"+Inf\"} 3\n\
                        lat_sum 105.5\n\
                        lat_count 3\n\
                        # TYPE mac_tx_started counter\n\
                        mac_tx_started 7\n\
                        # TYPE queue_len gauge\n\
                        queue_len 2.5\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_is_name_sorted_with_one_type_line_per_name() {
        let registry = Registry::new();
        registry
            .counter_with_labels("tx", &[("proto", "omnc")])
            .inc();
        registry
            .counter_with_labels("tx", &[("proto", "more")])
            .inc();
        registry.counter("aa").inc();
        let text = render_exposition(&registry.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# TYPE aa counter");
        assert_eq!(lines[2], "# TYPE tx counter");
        assert_eq!(text.matches("# TYPE tx counter").count(), 1);
        assert_eq!(lines[3], "tx{proto=\"omnc\"} 1");
        assert_eq!(lines[4], "tx{proto=\"more\"} 1");
    }

    #[test]
    fn exposition_escapes_label_values_and_sanitizes_names() {
        let registry = Registry::new();
        registry
            .counter_with_labels("omnc/0/tx.total", &[("path", "a\"b\\c\nd")])
            .add(1);
        let text = render_exposition(&registry.snapshot());
        assert_eq!(
            text,
            "# TYPE omnc_0_tx_total counter\n\
             omnc_0_tx_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"
        );
    }

    #[test]
    fn sample_formatting_covers_the_specials() {
        assert_eq!(format_sample(5.0), "5");
        assert_eq!(format_sample(2.5), "2.5");
        assert_eq!(format_sample(f64::INFINITY), "+Inf");
        assert_eq!(format_sample(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_sample(f64::NAN), "NaN");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a:b_c.d/e"), "a:b_c_d_e");
    }

    #[test]
    fn throughput_eta_needs_signal_before_estimating() {
        assert_eq!(throughput_eta(0, 10, 5.0), None);
        assert_eq!(throughput_eta(5, 10, 0.0), None);
        let (rate, eta) = throughput_eta(5, 10, 2.5).expect("estimate");
        assert!((rate - 2.0).abs() < 1e-12);
        assert!((eta - 5.0).abs() < 1e-12);
        // Nothing remaining: the ETA is simply zero.
        assert_eq!(throughput_eta(4, 0, 2.0), Some((2.0, 0.0)));
    }

    #[test]
    fn progress_board_tracks_workers_and_completion() {
        let board = ProgressBoard::enabled("smoke", 4, 2);
        board.cell_started(0, "a/OMNC/0000000000");
        board.cell_started(1, "a/MORE/0000000000");
        let snap = board.snapshot().expect("enabled board snapshots");
        assert_eq!((snap.total, snap.completed, snap.failed), (4, 0, 0));
        assert!(snap.workers[0].busy && snap.workers[1].busy);
        assert_eq!(snap.workers[0].cell.as_deref(), Some("a/OMNC/0000000000"));
        assert_eq!(snap.cells_per_s, None, "no completions yet");

        board.cell_finished(0, true);
        board.cell_finished(1, false);
        let snap = board.snapshot().expect("snapshot");
        assert_eq!((snap.completed, snap.failed), (1, 1));
        assert!(!snap.workers[0].busy);
        assert_eq!(snap.workers[0].cells_done, 1);
        assert!(snap.cells_per_s.is_some() && snap.eta_s.is_some());

        // Out-of-range worker indices are ignored, not a panic.
        board.cell_started(99, "x");
        board.cell_finished(99, true);
        assert_eq!(board.snapshot().expect("snapshot").completed, 2);
    }

    #[test]
    fn disabled_board_is_a_noop() {
        let board = ProgressBoard::disabled();
        assert!(!board.is_enabled());
        board.cell_started(0, "k");
        board.cell_finished(0, true);
        assert!(board.snapshot().is_none());
    }

    #[test]
    fn observer_serves_metrics_progress_series_and_404() {
        let registry = Registry::new();
        registry.counter("campaign.cells.completed").add(3);
        let timeline = TimeSeries::enabled(1.0, 8);
        timeline.record("w0/busy_s", 0.5, 1.25);
        let board = ProgressBoard::enabled("smoke", 8, 2);
        board.cell_started(0, "a/OMNC/0000000000");
        let observer = Observer::serve(
            "127.0.0.1:0",
            ObserverHandles {
                registry: registry.clone(),
                timeline: timeline.clone(),
                progress: board.clone(),
            },
        )
        .expect("bind an ephemeral port");
        let addr = observer.local_addr();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"), "{metrics}");
        assert!(
            body_of(&metrics).contains("campaign_cells_completed 3"),
            "{metrics}"
        );

        // Serving is read-only: scraping twice yields the same body.
        assert_eq!(body_of(&http_get(addr, "/metrics")), body_of(&metrics));

        let progress = http_get(addr, "/progress");
        let snap: ProgressSnapshot =
            serde_json::from_str(body_of(&progress)).expect("progress parses");
        assert_eq!((snap.total, snap.completed), (8, 0));
        assert_eq!(snap.workers.len(), 2);

        let series = http_get(addr, "/series");
        let report: crate::TimelineReport =
            serde_json::from_str(body_of(&series)).expect("series parses");
        assert!(report.series("w0/busy_s").is_some());

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        drop(observer); // joins the thread; must not hang
    }
}
