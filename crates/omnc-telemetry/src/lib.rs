//! Unified telemetry for the OMNC workspace.
//!
//! Three pieces, all optional at runtime and free when disabled:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s — handles are `Arc`-backed atomics, so the hot path is
//!   a single relaxed atomic op and never allocates;
//! * [`ScopedTimer`] / [`Stopwatch`] for wall-clock profiling of hot
//!   sections (GF(256) kernels, Gaussian elimination, the drift event
//!   loop), recording elapsed microseconds into a histogram;
//! * an [`EventSink`] that serializes typed events ([`serde::Serialize`])
//!   as one JSON object per line (JSONL), either to a file or an
//!   in-memory buffer.
//!
//! A registry created with [`Registry::disabled`] hands out no-op handles:
//! instruments still exist and can be passed around, but updates are
//! dropped without synchronization beyond one relaxed atomic store.
//!
//! On top of those sit two observability layers added later:
//!
//! * a hierarchical span [`Profiler`] — nested RAII spans over an
//!   explicit parent stack, attributing call counts / total / self time
//!   per span path, with wall and deterministic virtual clocks behind
//!   the [`Clock`] trait and JSON + folded-stacks export;
//! * a structured stderr [`Logger`] (`level=… msg="…"` lines) behind
//!   the `--log-level {quiet,info,debug}` knob of the binaries;
//! * memory observability ([`CountingAlloc`], [`AllocScope`],
//!   [`sample_rss`]) — a counting global-allocator wrapper binaries can
//!   install, thread-local allocation counters the [`Profiler`]
//!   attributes to spans, and peak-RSS sampling from
//!   `/proc/self/status`;
//! * deterministic windowed [`TimeSeries`] — bounded-memory dynamics
//!   metrics (queue depth, decoder rank, optimizer convergence, goodput)
//!   with 2:1 downsampling, exported as a [`TimelineReport`] and merged
//!   across campaign cells with [`merge_timelines`];
//! * the live observability plane — Prometheus-style text exposition
//!   ([`render_exposition`]), a live [`ProgressBoard`] with the shared
//!   [`throughput_eta`] estimator, and the read-only [`Observer`]
//!   thread serving `/metrics`, `/progress`, and `/series` over HTTP;
//! * a panic-safe [`FlightRecorder`] — a fixed-capacity ring of recent
//!   events dumped to `flight-<cell>.jsonl` by a chained panic hook
//!   ([`FlightRecorder::arm`]), the black box for campaign cells.

// Unsafe is denied crate-wide and allowed back in exactly one module:
// `alloc`, the counting global-allocator wrapper, where every unsafe
// item carries a SAFETY comment (audited by the omnc-lint
// `unsafe-audit` rule).
#![deny(unsafe_code)]

mod alloc;
mod export;
mod flightrec;
mod log;
mod merge;
mod profiler;
mod registry;
mod sink;
mod timer;
mod timeseries;

pub use alloc::{
    alloc_counting_enabled, sample_rss, set_alloc_counting, thread_alloc_stats, AllocScope,
    AllocStats, CountingAlloc, RssSample,
};
pub use export::{
    render_exposition, throughput_eta, Observer, ObserverHandles, ProgressBoard, ProgressSnapshot,
    WorkerProgress,
};
pub use flightrec::{FlightEvent, FlightGuard, FlightHeader, FlightRecorder};
pub use log::{LogLevel, Logger};
pub use merge::{merge_metric_snapshots, merge_profiles, merge_timelines};
pub use profiler::{
    Clock, ProfileGuard, ProfileReport, ProfileSpan, Profiler, VirtualClock, WallClock,
};
pub use registry::{BucketCount, Counter, Gauge, Histogram, MetricKind, MetricSnapshot, Registry};
pub use sink::{EventSink, SinkTarget};
pub use timer::{ScopedTimer, Span, Stopwatch};
pub use timeseries::{Series, TimeSeries, TimelineBucket, TimelineReport, TimelineSeries};
