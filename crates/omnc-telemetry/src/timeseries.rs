//! Deterministic windowed time series: bounded-memory dynamics metrics
//! sampled on the caller's epoch axis (virtual-clock seconds, optimizer
//! iterations, packets absorbed — any monotone `f64`).
//!
//! A [`TimeSeries`] hands out cheap [`Series`] handles keyed by metric
//! path. Each series folds samples into fixed-width buckets
//! (`index = floor(epoch / window)`) keeping `min`/`max`/`sum`/`count`
//! per bucket, so peaks survive compaction and means stay exact. When a
//! series exceeds its bucket capacity it *downsamples 2:1*: the window
//! doubles and buckets pair up (`index / 2`), deterministically and
//! independent of sample values. Memory per series is therefore bounded
//! by the capacity while the epoch range covered is unbounded.
//!
//! Like the [`crate::Profiler`], a recorder built with
//! [`TimeSeries::disabled`] (also `Default`) hands out no-op handles:
//! instrumented code pays one branch per sample when timelines are off,
//! and nothing here reads a wall clock — the `omnc-lint` `wall-clock`
//! rule covers this module exactly like the sim crates, so seeded runs
//! stay byte-identical.
//!
//! Snapshots export as a serializable [`TimelineReport`] (name-sorted
//! series, index-sorted buckets); campaign aggregation merges reports
//! with [`crate::merge_timelines`].

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One compacted bucket of a series: the aggregate of every sample whose
/// epoch fell in `[index * window, (index + 1) * window)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineBucket {
    /// Bucket position on the epoch axis, in units of the series window.
    pub index: u64,
    /// Smallest sample in the bucket.
    pub min: f64,
    /// Largest sample in the bucket.
    pub max: f64,
    /// Sum of the samples (so `sum / count` is the exact bucket mean).
    pub sum: f64,
    /// Number of samples folded into the bucket.
    pub count: u64,
}

impl TimelineBucket {
    /// Folds `other` into `self` (same index, possibly from a peer run).
    pub(crate) fn absorb(&mut self, other: &TimelineBucket) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// One named series of a [`TimelineReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSeries {
    /// Metric path, e.g. `omnc/k0/queue/n12`.
    pub name: String,
    /// Current bucket width on the epoch axis (`base_window * 2^k` after
    /// `k` downsampling passes).
    pub window: f64,
    /// Buckets in increasing index order. Sparse: untouched index ranges
    /// have no bucket.
    pub buckets: Vec<TimelineBucket>,
}

impl TimelineSeries {
    /// Total number of samples across all buckets (conserved by
    /// downsampling and by [`crate::merge_timelines`]).
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }
}

/// A serializable snapshot of every series a [`TimeSeries`] recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// The finest bucket width series start from.
    pub base_window: f64,
    /// Maximum buckets per series before 2:1 downsampling kicks in.
    pub capacity: usize,
    /// All series, sorted by name.
    pub series: Vec<TimelineSeries>,
}

impl TimelineReport {
    /// An empty report with the given layout (useful as a merge seed).
    #[must_use]
    pub fn empty(base_window: f64, capacity: usize) -> TimelineReport {
        TimelineReport {
            base_window,
            capacity,
            series: Vec::new(),
        }
    }

    /// The series named `name`, if any.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&TimelineSeries> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Mutable state of one live series.
#[derive(Debug)]
pub(crate) struct SeriesState {
    window: f64,
    capacity: usize,
    buckets: BTreeMap<u64, TimelineBucket>,
}

impl SeriesState {
    fn new(window: f64, capacity: usize) -> SeriesState {
        SeriesState {
            window,
            capacity,
            buckets: BTreeMap::new(),
        }
    }

    fn record(&mut self, epoch: f64, value: f64) {
        // Negative/NaN epochs clamp to bucket 0 (the `as` cast saturates);
        // the sim and all instrumented epochs are non-negative anyway.
        let index = (epoch.max(0.0) / self.window) as u64;
        match self.buckets.get_mut(&index) {
            Some(bucket) => bucket.absorb(&TimelineBucket {
                index,
                min: value,
                max: value,
                sum: value,
                count: 1,
            }),
            None => {
                self.buckets.insert(
                    index,
                    TimelineBucket {
                        index,
                        min: value,
                        max: value,
                        sum: value,
                        count: 1,
                    },
                );
                while self.buckets.len() > self.capacity {
                    self.downsample();
                }
            }
        }
    }

    /// One 2:1 compaction pass: the window doubles and bucket pairs
    /// (`2k`, `2k + 1`) fold into bucket `k` of the coarser grid.
    fn downsample(&mut self) {
        self.window *= 2.0;
        let mut coarse: BTreeMap<u64, TimelineBucket> = BTreeMap::new();
        for (index, bucket) in std::mem::take(&mut self.buckets) {
            let folded = index / 2;
            match coarse.get_mut(&folded) {
                Some(existing) => existing.absorb(&bucket),
                None => {
                    coarse.insert(
                        folded,
                        TimelineBucket {
                            index: folded,
                            ..bucket
                        },
                    );
                }
            }
        }
        self.buckets = coarse;
    }

    fn snapshot(&self, name: &str) -> TimelineSeries {
        TimelineSeries {
            name: name.to_owned(),
            window: self.window,
            buckets: self.buckets.values().copied().collect(),
        }
    }
}

/// A cheap handle onto one series; `Clone` shares the underlying state.
///
/// A handle from a disabled recorder (or [`Series::disabled`]) drops
/// samples after one branch.
#[derive(Debug, Clone, Default)]
pub struct Series {
    state: Option<Arc<Mutex<SeriesState>>>,
}

impl Series {
    /// A no-op handle, for instrumented structs' `Default` state.
    #[must_use]
    pub fn disabled() -> Series {
        Series { state: None }
    }

    /// `true` if samples actually land somewhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Folds one sample into the bucket covering `epoch`.
    pub fn record(&self, epoch: f64, value: f64) {
        if let Some(state) = &self.state {
            state.lock().record(epoch, value);
        }
    }
}

/// Interior state of an enabled recorder: the series directory.
#[derive(Debug)]
struct TimeSeriesCore {
    base_window: f64,
    capacity: usize,
    series: BTreeMap<String, Arc<Mutex<SeriesState>>>,
}

/// The recorder: a directory of named [`Series`], disabled by default.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    core: Option<Arc<Mutex<TimeSeriesCore>>>,
}

impl TimeSeries {
    /// A recorder that drops everything (one branch per sample).
    #[must_use]
    pub fn disabled() -> TimeSeries {
        TimeSeries { core: None }
    }

    /// An enabled recorder: series start at `base_window` bucket width
    /// and hold at most `capacity` buckets before downsampling 2:1.
    ///
    /// # Panics
    ///
    /// Panics if `base_window` is not strictly positive and finite, or if
    /// `capacity < 2` (downsampling could not terminate).
    #[must_use]
    pub fn enabled(base_window: f64, capacity: usize) -> TimeSeries {
        assert!(
            base_window.is_finite() && base_window > 0.0,
            "timeline base_window must be positive and finite"
        );
        assert!(capacity >= 2, "timeline capacity must be at least 2");
        TimeSeries {
            core: Some(Arc::new(Mutex::new(TimeSeriesCore {
                base_window,
                capacity,
                series: BTreeMap::new(),
            }))),
        }
    }

    /// `true` if this recorder keeps samples.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The series named `name`, registering it on first use. Returns a
    /// no-op handle when the recorder is disabled, so call sites never
    /// branch themselves.
    #[must_use]
    pub fn series(&self, name: &str) -> Series {
        let Some(core) = &self.core else {
            return Series::disabled();
        };
        let mut core = core.lock();
        let (window, capacity) = (core.base_window, core.capacity);
        let state = core
            .series
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Mutex::new(SeriesState::new(window, capacity))))
            .clone();
        Series { state: Some(state) }
    }

    /// Convenience: `self.series(name).record(epoch, value)`. Prefer a
    /// held [`Series`] handle on hot paths (one map lookup per call here).
    pub fn record(&self, name: &str, epoch: f64, value: f64) {
        if self.is_enabled() {
            self.series(name).record(epoch, value);
        }
    }

    /// A deterministic snapshot: series sorted by name, buckets by index.
    /// Disabled recorders yield an empty report with a placeholder layout.
    #[must_use]
    pub fn snapshot(&self) -> TimelineReport {
        let Some(core) = &self.core else {
            return TimelineReport::empty(1.0, 2);
        };
        let core = core.lock();
        TimelineReport {
            base_window: core.base_window,
            capacity: core.capacity,
            series: core
                .series
                .iter()
                .map(|(name, state)| state.lock().snapshot(name))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_samples() {
        let ts = TimeSeries::disabled();
        let s = ts.series("queue/n0");
        assert!(!ts.is_enabled());
        assert!(!s.is_enabled());
        s.record(0.0, 1.0);
        ts.record("queue/n0", 1.0, 2.0);
        assert!(ts.snapshot().series.is_empty());
    }

    #[test]
    fn samples_fold_into_windowed_buckets() {
        let ts = TimeSeries::enabled(0.5, 64);
        let s = ts.series("queue/n0");
        s.record(0.1, 3.0);
        s.record(0.4, 5.0);
        s.record(0.6, 1.0);
        let snap = ts.snapshot();
        let series = snap.series("queue/n0").expect("series exists");
        assert_eq!(series.window, 0.5);
        assert_eq!(series.buckets.len(), 2);
        let first = &series.buckets[0];
        assert_eq!(
            (first.index, first.min, first.max, first.sum, first.count),
            (0, 3.0, 5.0, 8.0, 2)
        );
        let second = &series.buckets[1];
        assert_eq!((second.index, second.count), (1, 1));
    }

    #[test]
    fn downsampling_conserves_count_sum_and_extremes() {
        let ts = TimeSeries::enabled(1.0, 8);
        let s = ts.series("x");
        // 40 distinct unit buckets force repeated 2:1 compaction.
        for i in 0..40u64 {
            s.record(i as f64, i as f64);
        }
        let snap = ts.snapshot();
        let series = snap.series("x").expect("series exists");
        assert!(series.buckets.len() <= 8, "capacity respected");
        assert_eq!(series.window, 8.0, "40 unit buckets need window 8");
        assert_eq!(series.total_count(), 40, "count conserved");
        let sum: f64 = series.buckets.iter().map(|b| b.sum).sum();
        assert_eq!(sum, (0..40).sum::<u64>() as f64, "sum conserved");
        let min = series
            .buckets
            .iter()
            .map(|b| b.min)
            .fold(f64::MAX, f64::min);
        let max = series
            .buckets
            .iter()
            .map(|b| b.max)
            .fold(f64::MIN, f64::max);
        assert_eq!((min, max), (0.0, 39.0), "extremes survive compaction");
    }

    #[test]
    fn peaks_survive_compaction_inside_buckets() {
        let ts = TimeSeries::enabled(1.0, 4);
        let s = ts.series("spike");
        for i in 0..16u64 {
            s.record(i as f64, if i == 7 { 100.0 } else { 1.0 });
        }
        let snap = ts.snapshot();
        let series = snap.series("spike").expect("series exists");
        let max = series
            .buckets
            .iter()
            .map(|b| b.max)
            .fold(f64::MIN, f64::max);
        assert_eq!(max, 100.0, "the spike survives 2:1 downsampling");
    }

    #[test]
    fn sparse_epochs_do_not_downsample_prematurely() {
        // Two samples very far apart are still only two buckets.
        let ts = TimeSeries::enabled(1.0, 4);
        let s = ts.series("sparse");
        s.record(0.0, 1.0);
        s.record(1_000_000.0, 2.0);
        let snap = ts.snapshot();
        let series = snap.series("sparse").expect("series exists");
        assert_eq!(series.window, 1.0);
        assert_eq!(series.buckets.len(), 2);
    }

    #[test]
    fn handles_share_state_and_snapshot_is_name_sorted() {
        let ts = TimeSeries::enabled(1.0, 8);
        let a = ts.series("b/two");
        let b = ts.series("b/two");
        a.record(0.0, 1.0);
        b.record(0.0, 2.0);
        ts.record("a/one", 0.0, 3.0);
        let snap = ts.snapshot();
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a/one", "b/two"]);
        assert_eq!(snap.series("b/two").expect("exists").total_count(), 2);
    }

    #[test]
    fn report_round_trips_through_json() {
        let ts = TimeSeries::enabled(0.25, 16);
        for i in 0..20u64 {
            ts.record("m", i as f64 * 0.3, (i % 5) as f64);
        }
        let snap = ts.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: TimelineReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
