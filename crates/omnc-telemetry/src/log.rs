//! Structured stderr logging for binaries.
//!
//! One line per message, `level=<level> msg="<text>"`, so progress and
//! warnings coming out of `omnc-sim` and the bench bins are grep-able
//! and machine-parseable instead of ad-hoc `eprintln!` prose. The
//! verbosity knob maps to `--log-level {quiet,info,debug}`: `quiet`
//! passes only errors, `info` (the default) adds warnings and progress,
//! `debug` adds everything.

/// Verbosity threshold selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// Errors only.
    Quiet,
    /// Errors, warnings, and progress (default).
    #[default]
    Info,
    /// Everything, including per-step detail.
    Debug,
}

impl LogLevel {
    /// Parses a `--log-level` value; `None` for unknown names.
    #[must_use]
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "quiet" => Some(LogLevel::Quiet),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// A leveled stderr logger. Copy-cheap; construct once from the parsed
/// command line and pass it down.
#[derive(Debug, Clone, Copy, Default)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A logger passing messages at or below `level`.
    #[must_use]
    pub fn new(level: LogLevel) -> Self {
        Logger { level }
    }

    /// The configured threshold.
    #[must_use]
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Always emitted, even under `quiet`.
    pub fn error(&self, msg: &str) {
        emit("error", msg);
    }

    /// Emitted at `info` and `debug`.
    pub fn warn(&self, msg: &str) {
        if self.level >= LogLevel::Info {
            emit("warn", msg);
        }
    }

    /// Emitted at `info` and `debug`.
    pub fn info(&self, msg: &str) {
        if self.level >= LogLevel::Info {
            emit("info", msg);
        }
    }

    /// Emitted at `debug` only.
    pub fn debug(&self, msg: &str) {
        if self.level >= LogLevel::Debug {
            emit("debug", msg);
        }
    }
}

fn emit(level: &str, msg: &str) {
    eprintln!("level={level} msg=\"{}\"", escape(msg));
}

/// Escapes quotes, backslashes, and newlines so the line stays one line.
fn escape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!(LogLevel::default(), LogLevel::Info);
    }

    #[test]
    fn escape_keeps_one_line() {
        assert_eq!(escape("a \"b\" \\ c\nd"), "a \\\"b\\\" \\\\ c\\nd");
    }
}
