//! Order-independent merging of telemetry snapshots.
//!
//! The campaign executor runs cells on worker threads, each with its own
//! [`Registry`](crate::Registry) and [`Profiler`](crate::Profiler) so the
//! simulation crates stay single-threaded. Afterwards the per-cell
//! snapshots are folded into one with these functions. Every combination
//! rule is commutative and associative — counters and histograms sum,
//! gauges take the maximum, profile spans sum per path — so the merged
//! snapshot is identical no matter how cells were scheduled across
//! workers, which is what keeps campaign output byte-identical across
//! `--jobs` values.

use std::collections::BTreeMap;

use crate::profiler::{ProfileReport, ProfileSpan};
use crate::registry::{MetricKind, MetricSnapshot};
use crate::timeseries::{TimelineBucket, TimelineReport, TimelineSeries};

/// Merges span profiles by summing calls and ticks per span *path*,
/// re-deriving self times, and emitting the canonical depth-first /
/// name-sorted order of [`Profiler::report`](crate::Profiler::report).
/// Empty (disabled) reports contribute nothing; an empty input slice
/// yields an empty disabled-style report.
#[must_use]
pub fn merge_profiles(reports: &[ProfileReport]) -> ProfileReport {
    #[derive(Default, Clone, Copy)]
    struct Acc {
        depth: u64,
        calls: u64,
        total: u64,
        allocs: u64,
        alloc_bytes: u64,
    }
    let mut clock = "disabled".to_string();
    let mut unit = "ticks".to_string();
    let mut by_path: BTreeMap<Vec<String>, Acc> = BTreeMap::new();
    for report in reports {
        if !report.spans.is_empty() && clock == "disabled" {
            clock = report.clock.clone();
            unit = report.unit.clone();
        }
        for span in &report.spans {
            let key: Vec<String> = span.path.split(';').map(str::to_string).collect();
            let slot = by_path.entry(key).or_insert(Acc {
                depth: span.depth,
                ..Acc::default()
            });
            slot.calls += span.calls;
            slot.total += span.total_ticks;
            slot.allocs += span.allocs;
            slot.alloc_bytes += span.alloc_bytes;
        }
    }
    // BTreeMap ordering over component vectors *is* depth-first preorder
    // with siblings sorted by name: a parent's key is a strict prefix of
    // (hence sorts before) every descendant's.
    let mut spans: Vec<ProfileSpan> = by_path
        .iter()
        .map(|(components, acc)| ProfileSpan {
            path: components.join(";"),
            name: components.last().cloned().unwrap_or_default(),
            depth: acc.depth,
            calls: acc.calls,
            total_ticks: acc.total,
            self_ticks: acc.total,
            allocs: acc.allocs,
            alloc_bytes: acc.alloc_bytes,
            self_allocs: acc.allocs,
            self_alloc_bytes: acc.alloc_bytes,
        })
        .collect();
    // Self figures = totals minus those of *direct* children.
    let totals: BTreeMap<String, (u64, u64, u64)> = spans
        .iter()
        .map(|s| (s.path.clone(), (s.total_ticks, s.allocs, s.alloc_bytes)))
        .collect();
    for span in &mut spans {
        let (mut child_total, mut child_allocs, mut child_bytes) = (0u64, 0u64, 0u64);
        for (path, &(t, a, b)) in &totals {
            let direct_child = path
                .strip_prefix(span.path.as_str())
                .and_then(|rest| rest.strip_prefix(';'))
                .is_some_and(|rest| !rest.contains(';'));
            if direct_child {
                child_total += t;
                child_allocs += a;
                child_bytes += b;
            }
        }
        span.self_ticks = span.total_ticks.saturating_sub(child_total);
        span.self_allocs = span.allocs.saturating_sub(child_allocs);
        span.self_alloc_bytes = span.alloc_bytes.saturating_sub(child_bytes);
    }
    ProfileReport { clock, unit, spans }
}

/// Merges registry snapshots: counters sum, gauges keep the maximum
/// observed level, histograms sum counts / sums / per-bucket counts.
/// Series are keyed by `(name, labels)` and the result is name-sorted
/// like [`Registry::snapshot`](crate::Registry::snapshot).
///
/// # Panics
///
/// Panics if the same series appears with different kinds or different
/// histogram bucket bounds — series schemas are fixed at registration, so
/// a mismatch means the inputs came from different instrumentation.
#[must_use]
pub fn merge_metric_snapshots(snapshots: &[Vec<MetricSnapshot>]) -> Vec<MetricSnapshot> {
    let mut merged: BTreeMap<(String, Vec<(String, String)>), MetricSnapshot> = BTreeMap::new();
    for snapshot in snapshots {
        for snap in snapshot {
            let key = (snap.name.clone(), snap.labels.clone());
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, snap.clone());
                }
                Some(acc) => {
                    assert_eq!(
                        acc.kind, snap.kind,
                        "series {:?} merged across kinds",
                        snap.name
                    );
                    match snap.kind {
                        MetricKind::Counter => acc.value += snap.value,
                        MetricKind::Gauge => acc.value = acc.value.max(snap.value),
                        MetricKind::Histogram => {
                            acc.count += snap.count;
                            acc.sum += snap.sum;
                            assert_eq!(
                                acc.buckets.len(),
                                snap.buckets.len(),
                                "series {:?} merged across bucket layouts",
                                snap.name
                            );
                            for (a, b) in acc.buckets.iter_mut().zip(&snap.buckets) {
                                assert_eq!(
                                    a.upper_bound, b.upper_bound,
                                    "series {:?} merged across bucket bounds",
                                    snap.name
                                );
                                a.count += b.count;
                            }
                        }
                    }
                }
            }
        }
    }
    merged.into_values().collect()
}

/// One series being folded across reports: its buckets at the coarsest
/// window seen so far.
struct SeriesAcc {
    window: f64,
    buckets: BTreeMap<u64, TimelineBucket>,
}

/// One 2:1 compaction pass over a bucket map (the merge-side twin of the
/// live recorder's downsampling): the window doubles and index pairs
/// fold together.
fn coarsen(window: &mut f64, buckets: &mut BTreeMap<u64, TimelineBucket>) {
    *window *= 2.0;
    let mut coarse: BTreeMap<u64, TimelineBucket> = BTreeMap::new();
    for (index, bucket) in std::mem::take(buckets) {
        let folded = index / 2;
        match coarse.get_mut(&folded) {
            Some(existing) => existing.absorb(&bucket),
            None => {
                coarse.insert(
                    folded,
                    TimelineBucket {
                        index: folded,
                        ..bucket
                    },
                );
            }
        }
    }
    *buckets = coarse;
}

/// Merges timeline reports series-by-series. Peer runs may have
/// downsampled the same series to different window widths; the finer
/// side is folded 2:1 until the boundaries line up (windows are always
/// `base_window * 2^k`, so they align exactly), then buckets combine
/// index-wise (min/min, max/max, sum + sum, count + count) and the
/// result re-downsamples if it exceeds the capacity. Every step is
/// commutative and associative, so campaign merges are byte-identical
/// for any `--jobs` value, and re-merging a merged report is a no-op.
///
/// # Panics
///
/// Panics if the inputs disagree on `base_window`/`capacity`, or if the
/// same series appears with window widths that are not power-of-two
/// multiples of each other — both mean the reports came from recorders
/// with different configurations.
#[must_use]
pub fn merge_timelines(reports: &[TimelineReport]) -> TimelineReport {
    let mut layout: Option<(f64, usize)> = None;
    for report in reports {
        if report.series.is_empty() {
            continue; // disabled recorders contribute nothing, like profiles
        }
        match layout {
            None => layout = Some((report.base_window, report.capacity)),
            Some((window, capacity)) => assert!(
                report.base_window == window && report.capacity == capacity,
                "timelines merged across layouts ({window}x{capacity} vs {}x{})",
                report.base_window,
                report.capacity
            ),
        }
    }
    let (base_window, capacity) = layout
        .or_else(|| reports.first().map(|r| (r.base_window, r.capacity)))
        .unwrap_or((1.0, 2));

    let mut by_name: BTreeMap<String, SeriesAcc> = BTreeMap::new();
    for report in reports {
        for series in &report.series {
            let acc = by_name
                .entry(series.name.clone())
                .or_insert_with(|| SeriesAcc {
                    window: series.window,
                    buckets: BTreeMap::new(),
                });
            // Align the two grids by folding the finer one.
            let mut window = series.window;
            let mut incoming: BTreeMap<u64, TimelineBucket> =
                series.buckets.iter().map(|b| (b.index, *b)).collect();
            while window < acc.window {
                coarsen(&mut window, &mut incoming);
            }
            while acc.window < window {
                coarsen(&mut acc.window, &mut acc.buckets);
            }
            assert!(
                acc.window == window,
                "series {:?} merged across incompatible windows ({} vs {})",
                series.name,
                acc.window,
                series.window
            );
            for (index, bucket) in incoming {
                match acc.buckets.get_mut(&index) {
                    Some(existing) => existing.absorb(&bucket),
                    None => {
                        acc.buckets.insert(index, bucket);
                    }
                }
            }
        }
    }

    let series = by_name
        .into_iter()
        .map(|(name, mut acc)| {
            while acc.buckets.len() > capacity {
                coarsen(&mut acc.window, &mut acc.buckets);
            }
            TimelineSeries {
                name,
                window: acc.window,
                buckets: acc.buckets.into_values().collect(),
            }
        })
        .collect();
    TimelineReport {
        base_window,
        capacity,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Profiler, Registry, TimeSeries};

    fn sample_profile(reps: u32) -> ProfileReport {
        let p = Profiler::virtual_clock();
        for _ in 0..reps {
            let _outer = p.span("run");
            let _inner = p.span("decode");
        }
        p.report()
    }

    #[test]
    fn profile_merge_sums_per_path_and_rederives_self_time() {
        let merged = merge_profiles(&[sample_profile(2), sample_profile(3)]);
        assert_eq!(merged.clock, "virtual");
        let run = merged.span("run").expect("run span");
        let decode = merged.span("run;decode").expect("decode span");
        assert_eq!(run.calls, 5);
        assert_eq!(decode.calls, 5);
        assert_eq!(run.self_ticks, run.total_ticks - decode.total_ticks);
    }

    #[test]
    fn profile_merge_is_order_independent() {
        let a = sample_profile(1);
        let b = sample_profile(4);
        assert_eq!(
            merge_profiles(&[a.clone(), b.clone()]),
            merge_profiles(&[b, a])
        );
    }

    #[test]
    fn profile_merge_keeps_canonical_span_order() {
        // Two reports whose spans interleave: the merged order must match
        // a single profiler that saw everything.
        let p1 = Profiler::virtual_clock();
        {
            let _r = p1.span("run");
            let _z = p1.span("zeta");
        }
        let p2 = Profiler::virtual_clock();
        {
            let _r = p2.span("run");
            let _a = p2.span("alpha");
        }
        let merged = merge_profiles(&[p1.report(), p2.report()]);
        let paths: Vec<&str> = merged.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["run", "run;alpha", "run;zeta"]);
        assert_eq!(merged.spans[1].depth, 1);
    }

    #[test]
    fn empty_profile_inputs_merge_to_disabled() {
        let merged = merge_profiles(&[]);
        assert!(merged.spans.is_empty());
        assert_eq!(merged.clock, "disabled");
        let merged = merge_profiles(&[Profiler::disabled().report(), sample_profile(1)]);
        assert_eq!(merged.clock, "virtual");
        assert_eq!(merged.span("run").map(|s| s.calls), Some(1));
    }

    fn sample_metrics(tx: u64, queue: f64, lat: f64) -> Vec<MetricSnapshot> {
        let r = Registry::new();
        r.counter("mac.tx").add(tx);
        r.gauge("queue.peak").set(queue);
        r.histogram("latency", &[1.0, 10.0]).observe(lat);
        r.snapshot()
    }

    #[test]
    fn metric_merge_sums_counters_and_histograms_maxes_gauges() {
        let merged =
            merge_metric_snapshots(&[sample_metrics(3, 2.0, 0.5), sample_metrics(4, 7.0, 50.0)]);
        let by_name = |name: &str| {
            merged
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(by_name("mac.tx").value, 7.0);
        assert_eq!(by_name("queue.peak").value, 7.0);
        let lat = by_name("latency");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 50.5);
        assert_eq!(lat.buckets[0].count, 1); // <= 1.0
        assert_eq!(lat.buckets[2].count, 2); // overflow, cumulative
    }

    #[test]
    fn metric_merge_is_order_independent_and_sorted() {
        let a = sample_metrics(1, 1.0, 2.0);
        let b = sample_metrics(2, 5.0, 20.0);
        let ab = merge_metric_snapshots(&[a.clone(), b.clone()]);
        let ba = merge_metric_snapshots(&[b, a]);
        assert_eq!(ab, ba);
        let names: Vec<&str> = ab.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn empty_metric_snapshot_inputs_merge_to_empty() {
        assert!(merge_metric_snapshots(&[]).is_empty());
        assert!(merge_metric_snapshots(&[vec![], vec![]]).is_empty());
        // Empty sides contribute nothing next to a populated one.
        let merged = merge_metric_snapshots(&[vec![], sample_metrics(2, 1.0, 0.5), vec![]]);
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.iter().find(|s| s.name == "mac.tx").map(|s| s.value),
            Some(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "merged across bucket layouts")]
    fn metric_merge_rejects_bucket_count_mismatch() {
        let r1 = Registry::new();
        r1.histogram("h", &[1.0]).observe(0.5);
        let r2 = Registry::new();
        r2.histogram("h", &[1.0, 2.0]).observe(0.5);
        let _ = merge_metric_snapshots(&[r1.snapshot(), r2.snapshot()]);
    }

    #[test]
    #[should_panic(expected = "merged across bucket bounds")]
    fn metric_merge_rejects_bucket_bound_mismatch() {
        let r1 = Registry::new();
        r1.histogram("h", &[1.0, 2.0]).observe(0.5);
        let r2 = Registry::new();
        r2.histogram("h", &[1.5, 2.0]).observe(0.5);
        let _ = merge_metric_snapshots(&[r1.snapshot(), r2.snapshot()]);
    }

    fn raw_span(path: &str, calls: u64, total: u64, allocs: u64, bytes: u64) -> ProfileSpan {
        ProfileSpan {
            path: path.to_string(),
            name: path.rsplit(';').next().unwrap_or(path).to_string(),
            depth: path.matches(';').count() as u64,
            calls,
            total_ticks: total,
            self_ticks: total,
            allocs,
            alloc_bytes: bytes,
            self_allocs: allocs,
            self_alloc_bytes: bytes,
        }
    }

    #[test]
    fn profile_merge_handles_one_sided_span_paths_and_alloc_columns() {
        // "run;decode" exists only in the right report: the merged parent's
        // self figures must still subtract it, and alloc columns must sum
        // and re-derive exactly like ticks.
        let left = ProfileReport {
            clock: "virtual".into(),
            unit: "ticks".into(),
            spans: vec![raw_span("run", 1, 10, 6, 600)],
        };
        let right = ProfileReport {
            clock: "virtual".into(),
            unit: "ticks".into(),
            spans: vec![
                raw_span("run", 1, 20, 10, 1000),
                raw_span("run;decode", 2, 8, 4, 400),
            ],
        };
        let merged = merge_profiles(&[left, right]);
        let run = merged.span("run").expect("run span");
        let decode = merged.span("run;decode").expect("decode span");
        assert_eq!(run.calls, 2);
        assert_eq!(run.total_ticks, 30);
        assert_eq!(run.self_ticks, 22);
        assert_eq!(run.allocs, 16);
        assert_eq!(run.self_allocs, 12);
        assert_eq!(run.alloc_bytes, 1600);
        assert_eq!(run.self_alloc_bytes, 1200);
        assert_eq!(decode.self_allocs, 4);
        assert_eq!(decode.self_alloc_bytes, 400);
    }

    #[test]
    #[should_panic(expected = "merged across kinds")]
    fn metric_merge_rejects_kind_mismatch() {
        let r1 = Registry::new();
        r1.counter("m").inc();
        let r2 = Registry::new();
        r2.gauge("m").set(1.0);
        let _ = merge_metric_snapshots(&[r1.snapshot(), r2.snapshot()]);
    }

    /// A recorder whose series `name` holds `samples` as (epoch, value).
    fn timeline_with(capacity: usize, name: &str, samples: &[(f64, f64)]) -> TimelineReport {
        let ts = TimeSeries::enabled(1.0, capacity);
        let s = ts.series(name);
        for &(epoch, value) in samples {
            s.record(epoch, value);
        }
        ts.snapshot()
    }

    #[test]
    fn timeline_merge_aligns_mismatched_window_boundaries() {
        // Left stays at the base window; right spans enough epochs that
        // its live recorder downsampled to window 4. The merge must fold
        // the fine side onto the coarse grid, not drop or double-count.
        let fine = timeline_with(8, "q", &[(0.5, 2.0), (1.5, 8.0), (2.5, 4.0)]);
        let coarse_samples: Vec<(f64, f64)> = (0..32).map(|i| (i as f64, 1.0)).collect();
        let coarse = timeline_with(8, "q", &coarse_samples);
        assert_eq!(coarse.series("q").expect("series").window, 4.0);

        let merged = merge_timelines(&[fine.clone(), coarse.clone()]);
        let q = merged.series("q").expect("series");
        assert_eq!(q.window, 4.0, "merged onto the coarser grid");
        assert_eq!(q.total_count(), 3 + 32, "count conserved");
        // Fine samples at epochs 0.5/1.5/2.5 all land in coarse bucket 0.
        let first = &q.buckets[0];
        assert_eq!(first.index, 0);
        assert_eq!(first.count, 3 + 4);
        assert_eq!(first.max, 8.0, "fine-side peak survives alignment");
        assert_eq!(first.min, 1.0);
    }

    #[test]
    fn timeline_merge_is_order_independent_and_remerge_idempotent() {
        let a = timeline_with(8, "x", &[(0.0, 1.0), (9.0, 5.0)]);
        let b = timeline_with(8, "x", &[(3.0, 2.0), (20.0, 7.0)]);
        let c = timeline_with(8, "y", &[(1.0, 4.0)]);
        let abc = merge_timelines(&[a.clone(), b.clone(), c.clone()]);
        let cba = merge_timelines(&[c.clone(), b.clone(), a.clone()]);
        assert_eq!(abc, cba);
        // Re-merging a merged report changes nothing (idempotence), and
        // pairwise merging associates.
        assert_eq!(merge_timelines(std::slice::from_ref(&abc)), abc);
        let ab_then_c = merge_timelines(&[merge_timelines(&[a.clone(), b.clone()]), c.clone()]);
        assert_eq!(ab_then_c, abc);
    }

    #[test]
    fn timeline_merge_enforces_capacity_on_the_union() {
        // Each input fits its capacity alone; the union does not, so the
        // merge itself must downsample.
        let a = timeline_with(8, "x", &(0..8).map(|i| (i as f64, 1.0)).collect::<Vec<_>>());
        let b = timeline_with(
            8,
            "x",
            &(8..16).map(|i| (i as f64, 2.0)).collect::<Vec<_>>(),
        );
        let merged = merge_timelines(&[a, b]);
        let x = merged.series("x").expect("series");
        assert!(x.buckets.len() <= 8);
        assert_eq!(x.window, 2.0);
        assert_eq!(x.total_count(), 16);
    }

    #[test]
    fn timeline_merge_skips_disabled_inputs() {
        let disabled = TimeSeries::disabled().snapshot();
        let live = timeline_with(8, "x", &[(0.0, 1.0)]);
        let merged = merge_timelines(&[disabled, live.clone()]);
        assert_eq!(merged, live);
        assert!(merge_timelines(&[]).series.is_empty());
    }

    #[test]
    #[should_panic(expected = "merged across layouts")]
    fn timeline_merge_rejects_layout_mismatch() {
        let a = timeline_with(8, "x", &[(0.0, 1.0)]);
        let mut b = timeline_with(8, "x", &[(0.0, 1.0)]);
        b.base_window = 0.5;
        let _ = merge_timelines(&[a, b]);
    }
}
