//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with optional labels.
//!
//! Handles returned by the registry are cheap `Arc` clones over atomics;
//! updating one is a single relaxed atomic operation (histograms add one
//! compare-exchange for the running sum) and never allocates. A registry
//! built with [`Registry::disabled`] hands out empty handles whose update
//! methods are no-ops.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Instantaneous level (last value wins).
    Gauge,
    /// Distribution over fixed buckets.
    Histogram,
}

/// One histogram bucket in a snapshot: observations `<= upper_bound`
/// (cumulative, Prometheus-style); `None` is the +∞ overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound, or `None` for the overflow bucket.
    pub upper_bound: Option<f64>,
    /// Cumulative count of observations at or below the bound.
    pub count: u64,
}

/// A point-in-time reading of one metric, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name, e.g. `"mac.tx.delivered"`.
    pub name: String,
    /// Label pairs fixed at registration, e.g. `[("protocol", "omnc")]`.
    pub labels: Vec<(String, String)>,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Counter total or current gauge level (0 for histograms).
    pub value: f64,
    /// Number of histogram observations (0 otherwise).
    pub count: u64,
    /// Sum of histogram observations (0 otherwise).
    pub sum: f64,
    /// Cumulative bucket counts (empty unless a histogram).
    pub buckets: Vec<BucketCount>,
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// An instantaneous level; stores the most recent `set`.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Records the current level.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Last recorded level (0.0 when disabled or never set).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing; the implicit final
    /// bucket catches everything above the last bound.
    bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum as `f64` bits, updated by compare-exchange.
    sum_bits: AtomicU64,
}

/// A distribution over fixed buckets chosen at registration.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.core else { return };
        // Linear scan: bucket lists are short (≤ ~20) and branch-predictable.
        let idx = core
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut prev = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(prev) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                prev,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => prev = actual,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.core
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.sum_bits.load(Ordering::Relaxed)))
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) as the upper
    /// bound of the bucket holding the `⌈q·count⌉`-th smallest
    /// observation — an upper bound on the true quantile, exact when all
    /// observations in that bucket equal its bound.
    ///
    /// Returns `None` for an empty (or disabled) histogram, and
    /// `f64::INFINITY` when the quantile falls in the overflow bucket
    /// (no finite bound is known).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let core = self.core.as_ref()?;
        let n = core.count.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut running = 0u64;
        for (i, c) in core.counts.iter().enumerate() {
            running += c.load(Ordering::Relaxed);
            if running >= rank {
                return Some(core.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }

    /// Cumulative counts per bucket (Prometheus convention: each entry
    /// counts observations at or below its bound; the final `None` entry
    /// equals [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<BucketCount> {
        let Some(core) = &self.core else {
            return Vec::new();
        };
        let mut running = 0;
        core.counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                running += c.load(Ordering::Relaxed);
                BucketCount {
                    upper_bound: core.bounds.get(i).copied(),
                    count: running,
                }
            })
            .collect()
    }
}

#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl Cell {
    fn kind(&self) -> MetricKind {
        match self {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// The set of registered metrics. Cloning shares the underlying store;
/// [`Registry::disabled`] (also `Default`) produces no-op handles.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// `None` means telemetry is off and all handles are no-ops.
    inner: Option<Arc<Mutex<Vec<Entry>>>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// A registry whose instruments drop every update.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether updates are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) a counter with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with_labels(name, &[])
    }

    /// Registers (or re-fetches) a labeled counter. Repeated registration
    /// with the same name and labels returns a handle to the same cell.
    ///
    /// # Panics
    ///
    /// Panics if the name/labels pair is already registered as a different
    /// metric kind.
    pub fn counter_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut entries = inner.lock();
        let cell = find_or_insert(&mut entries, name, labels, || {
            Cell::Counter(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            Cell::Counter(c) => Counter {
                cell: Some(c.clone()),
            },
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a gauge with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with_labels(name, &[])
    }

    /// Registers (or re-fetches) a labeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch with an existing registration.
    pub fn gauge_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut entries = inner.lock();
        let cell = find_or_insert(&mut entries, name, labels, || {
            Cell::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))
        });
        match cell {
            Cell::Gauge(c) => Gauge {
                cell: Some(c.clone()),
            },
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a histogram with no labels.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with_labels(name, &[], bounds)
    }

    /// Registers (or re-fetches) a labeled histogram over the given
    /// strictly increasing inclusive upper bounds; observations above the
    /// last bound land in an implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing, or on a
    /// kind/bounds mismatch with an existing registration.
    pub fn histogram_with_labels(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram {name:?} needs at least one bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} bounds must be strictly increasing"
        );
        let Some(inner) = &self.inner else {
            return Histogram::default();
        };
        let mut entries = inner.lock();
        let cell = find_or_insert(&mut entries, name, labels, || {
            Cell::Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
            }))
        });
        match cell {
            Cell::Histogram(core) => {
                assert_eq!(
                    core.bounds, bounds,
                    "metric {name:?} re-registered with different buckets"
                );
                Histogram {
                    core: Some(core.clone()),
                }
            }
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Reads every metric, ordered by name (stable: series sharing a name
    /// keep their registration order). The deterministic ordering makes
    /// JSONL exports and report diffs comparable across runs regardless of
    /// which code path registered its metrics first.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let entries = inner.lock();
        let mut snaps: Vec<MetricSnapshot> = entries
            .iter()
            .map(|entry| {
                let mut snap = MetricSnapshot {
                    name: entry.name.clone(),
                    labels: entry.labels.clone(),
                    kind: entry.cell.kind(),
                    value: 0.0,
                    count: 0,
                    sum: 0.0,
                    buckets: Vec::new(),
                };
                match &entry.cell {
                    Cell::Counter(c) => {
                        snap.value = c.load(Ordering::Relaxed) as f64;
                    }
                    Cell::Gauge(c) => {
                        snap.value = f64::from_bits(c.load(Ordering::Relaxed));
                    }
                    Cell::Histogram(core) => {
                        let h = Histogram {
                            core: Some(core.clone()),
                        };
                        snap.count = h.count();
                        snap.sum = h.sum();
                        snap.buckets = h.cumulative_buckets();
                    }
                }
                snap
            })
            .collect();
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        snaps
    }
}

fn find_or_insert<'e>(
    entries: &'e mut Vec<Entry>,
    name: &str,
    labels: &[(&str, &str)],
    make: impl FnOnce() -> Cell,
) -> &'e Cell {
    let pos = entries
        .iter()
        .position(|e| e.name == name && label_eq(&e.labels, labels))
        .unwrap_or_else(|| {
            entries.push(Entry {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                cell: make(),
            });
            entries.len() - 1
        });
    &entries[pos].cell
}

fn label_eq(stored: &[(String, String)], query: &[(&str, &str)]) -> bool {
    stored.len() == query.len()
        && stored
            .iter()
            .zip(query)
            .all(|((k, v), (qk, qv))| k == qk && v == qv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let registry = Registry::new();
        let a = registry.counter("events");
        let b = registry.counter("events");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, 5.0);
        assert_eq!(snap[0].kind, MetricKind::Counter);
    }

    #[test]
    fn labels_separate_series() {
        let registry = Registry::new();
        registry
            .counter_with_labels("tx", &[("proto", "omnc")])
            .add(2);
        registry
            .counter_with_labels("tx", &[("proto", "more")])
            .add(3);
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0].labels,
            vec![("proto".to_string(), "omnc".to_string())]
        );
        assert_eq!(snap[0].value, 2.0);
        assert_eq!(snap[1].value, 3.0);
    }

    #[test]
    fn gauge_keeps_last_value() {
        let registry = Registry::new();
        let g = registry.gauge("queue.len");
        g.set(3.0);
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        assert_eq!(registry.snapshot()[0].value, 1.5);
    }

    #[test]
    fn histogram_buckets_edges_and_overflow() {
        let registry = Registry::new();
        let h = registry.histogram("lat", &[1.0, 10.0, 100.0]);
        // Exactly on a bound lands in that bound's bucket (inclusive).
        h.observe(1.0);
        h.observe(0.5);
        h.observe(10.0);
        h.observe(99.9);
        h.observe(100.0);
        h.observe(1e6); // overflow
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (1.0 + 0.5 + 10.0 + 99.9 + 100.0 + 1e6)).abs() < 1e-9);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(
            buckets[0],
            BucketCount {
                upper_bound: Some(1.0),
                count: 2
            }
        );
        assert_eq!(
            buckets[1],
            BucketCount {
                upper_bound: Some(10.0),
                count: 3
            }
        );
        assert_eq!(
            buckets[2],
            BucketCount {
                upper_bound: Some(100.0),
                count: 5
            }
        );
        assert_eq!(
            buckets[3],
            BucketCount {
                upper_bound: None,
                count: 6
            }
        );
    }

    /// Satellite: percentile edge cases — empty, single-sample, and
    /// all-equal histograms.
    #[test]
    fn quantile_empty_histogram_is_none() {
        let registry = Registry::new();
        let h = registry.histogram("empty", &[1.0, 10.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        // A disabled handle behaves like an empty histogram.
        assert_eq!(Histogram::default().quantile(0.5), None);
    }

    #[test]
    fn quantile_single_sample_is_its_bucket_for_every_q() {
        let registry = Registry::new();
        let h = registry.histogram("one", &[1.0, 10.0, 100.0]);
        h.observe(7.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(10.0), "q={q}");
        }
    }

    #[test]
    fn quantile_all_equal_samples_are_stable_across_q() {
        let registry = Registry::new();
        let h = registry.histogram("flat", &[1.0, 10.0, 100.0]);
        for _ in 0..50 {
            h.observe(10.0); // exactly on a bound: inclusive bucket
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(10.0), "q={q}");
        }
    }

    #[test]
    fn quantile_spread_and_overflow() {
        let registry = Registry::new();
        let h = registry.histogram("spread", &[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(1e6); // overflow bucket
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(0.75), Some(100.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-3.0), Some(1.0));
        assert_eq!(h.quantile(7.0), Some(f64::INFINITY));
    }

    #[test]
    fn disabled_registry_is_noop() {
        let registry = Registry::disabled();
        let c = registry.counter("x");
        let g = registry.gauge("y");
        let h = registry.histogram("z", &[1.0]);
        c.inc();
        g.set(7.0);
        h.observe(3.0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(registry.snapshot().is_empty());
        assert!(!registry.is_enabled());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("m");
        registry.gauge("m");
    }

    #[test]
    fn snapshot_is_sorted_by_name_regardless_of_registration_order() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.gauge("alpha").set(1.0);
        registry.counter("mid").add(2);
        let names: Vec<String> = registry.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        // Stable within a name: series keep registration order.
        registry
            .counter_with_labels("mid", &[("proto", "etx")])
            .add(9);
        let snap = registry.snapshot();
        assert_eq!(snap[1].name, "mid");
        assert!(snap[1].labels.is_empty());
        assert_eq!(snap[2].name, "mid");
        assert_eq!(snap[2].labels.len(), 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let registry = Registry::new();
        registry.counter("c").inc();
        registry.histogram("h", &[5.0]).observe(2.0);
        let text = serde_json::to_string(&registry.snapshot()).unwrap();
        let back: Vec<MetricSnapshot> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, registry.snapshot());
    }
}
