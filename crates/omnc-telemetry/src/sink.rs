//! Structured event export: one JSON object per line (JSONL).

use parking_lot::Mutex;
use serde::Serialize;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Where serialized events go.
enum Target {
    File(BufWriter<File>),
    Memory(Vec<String>),
}

/// Re-exported handle kind for constructing sinks explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkTarget {
    /// Events append to a file on disk.
    File,
    /// Events accumulate in memory (tests, small runs).
    Memory,
}

/// A thread-safe JSONL writer for typed events. Cloning shares the
/// underlying target.
#[derive(Clone)]
pub struct EventSink {
    target: Arc<Mutex<Target>>,
    kind: SinkTarget,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("kind", &self.kind)
            .finish()
    }
}

impl EventSink {
    /// A sink writing one JSON object per line to `path` (truncating any
    /// existing file).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn to_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(EventSink {
            target: Arc::new(Mutex::new(Target::File(BufWriter::new(file)))),
            kind: SinkTarget::File,
        })
    }

    /// A sink buffering lines in memory; read back with
    /// [`EventSink::lines`].
    pub fn in_memory() -> Self {
        EventSink {
            target: Arc::new(Mutex::new(Target::Memory(Vec::new()))),
            kind: SinkTarget::Memory,
        }
    }

    /// Serializes `event` and appends it as one line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying writer (file sinks only).
    pub fn emit<T: Serialize>(&self, event: &T) -> io::Result<()> {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        match &mut *self.target.lock() {
            Target::File(w) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
            }
            Target::Memory(lines) => lines.push(line),
        }
        Ok(())
    }

    /// Flushes buffered output (no-op for memory sinks).
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        match &mut *self.target.lock() {
            Target::File(w) => w.flush(),
            Target::Memory(_) => Ok(()),
        }
    }

    /// The lines emitted so far (memory sinks only; empty for files).
    pub fn lines(&self) -> Vec<String> {
        match &*self.target.lock() {
            Target::Memory(lines) => lines.clone(),
            Target::File(_) => Vec::new(),
        }
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ping {
        seq: u64,
        rtt_ms: f64,
    }

    #[test]
    fn memory_sink_round_trips() {
        let sink = EventSink::in_memory();
        sink.emit(&Ping {
            seq: 1,
            rtt_ms: 2.5,
        })
        .unwrap();
        sink.emit(&Ping {
            seq: 2,
            rtt_ms: 3.0,
        })
        .unwrap();
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        let back: Ping = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(
            back,
            Ping {
                seq: 1,
                rtt_ms: 2.5
            }
        );
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join("omnc_telemetry_sink_test.jsonl");
        {
            let sink = EventSink::to_file(&path).unwrap();
            sink.emit(&Ping {
                seq: 7,
                rtt_ms: 0.25,
            })
            .unwrap();
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Ping = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(back.seq, 7);
        let _ = std::fs::remove_file(&path);
    }
}
