//! Wall-clock timers feeding histograms.

use crate::registry::Histogram;
use std::time::Instant;

/// A manual start/stop timer: `lap()` records elapsed microseconds into a
/// histogram and restarts the clock.
#[derive(Debug)]
pub struct Stopwatch {
    histogram: Histogram,
    started: Instant,
}

impl Stopwatch {
    /// Starts timing into `histogram` (units: microseconds).
    pub fn start(histogram: Histogram) -> Self {
        Stopwatch {
            histogram,
            started: Instant::now(),
        }
    }

    /// Records the elapsed time and restarts; returns the lap in µs.
    pub fn lap(&mut self) -> f64 {
        let micros = self.started.elapsed().as_secs_f64() * 1e6;
        self.histogram.observe(micros);
        self.started = Instant::now();
        micros
    }

    /// Restarts the clock without recording.
    pub fn reset(&mut self) {
        self.started = Instant::now();
    }
}

/// Times a scope: records elapsed microseconds into its histogram on drop.
///
/// ```ignore
/// let _t = ScopedTimer::new(registry.histogram("decode.us", &BOUNDS));
/// // ... hot section ...
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Histogram,
    started: Instant,
}

impl ScopedTimer {
    /// Starts timing; the observation is recorded when dropped.
    pub fn new(histogram: Histogram) -> Self {
        ScopedTimer {
            histogram,
            started: Instant::now(),
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.histogram
            .observe(self.started.elapsed().as_secs_f64() * 1e6);
    }
}

/// A bare wall-clock reference point, for instrumented code that must not
/// touch `std::time` directly.
///
/// The simulation crates are held to a no-wall-clock policy (`omnc-lint`'s
/// `wall-clock` rule): clocks only enter through this telemetry crate, so a
/// decoder or scheduler can profile itself with a `Span` while its own
/// source stays free of `Instant::now()`.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    started: Instant,
}

impl Span {
    /// Captures the current instant.
    #[must_use]
    pub fn begin() -> Self {
        Span {
            started: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`Span::begin`].
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn scoped_timer_records_on_drop() {
        let registry = Registry::new();
        let h = registry.histogram("op.us", &[1e3, 1e6]);
        {
            let _t = ScopedTimer::new(h.clone());
            std::hint::black_box(17u64);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn stopwatch_laps_accumulate() {
        let registry = Registry::new();
        let h = registry.histogram("loop.us", &[1e3, 1e6]);
        let mut watch = Stopwatch::start(h.clone());
        watch.lap();
        watch.reset();
        watch.lap();
        assert_eq!(h.count(), 2);
    }
}
