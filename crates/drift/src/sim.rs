//! The discrete-event engine.
//!
//! Built on the index-based core: scheduling goes through
//! [`crate::core::EventQueue`] (an indexed binary heap with O(1)
//! cancellation), packets live in a generational [`Arena`] and are linked
//! into per-node intrusive FIFOs, and every node draws from its own seeded
//! [`Pcg64`] stream. The steady-state hot path — pop event, arbitrate,
//! transmit, deliver — allocates nothing: queue entries and in-flight
//! transmissions are arena handles, not boxes.
//!
//! Sessions are first-class: a node can host one behavior per concurrent
//! session, every packet is stamped with the session that enqueued it, and
//! the engine accounts airtime, deliveries and queueing delay per session
//! ([`SessionStats`]) so cross-session contention is directly observable.

use std::collections::BTreeMap;

use net_topo::graph::{NodeId, Topology};
use rand::Rng;

use telemetry::{Counter, Histogram, Profiler, Registry, Series, TimeSeries};

use crate::arena::{Arena, Handle};
use crate::core::{EventId, EventQueue, Pcg64};
use crate::event::Event;
use crate::mac::MacModel;
use crate::stats::{NodeStats, QueueTracker, SessionStats};
use crate::time::SimTime;
use crate::trace::{PacketTag, Trace, TraceEvent};

/// Workspace-level MAC instruments, registered on a [`Registry`] via
/// [`Simulator::attach_telemetry`]. Defaults to no-op handles.
#[derive(Debug, Default)]
struct SimTelemetry {
    tx_started: Counter,
    tx_completed: Counter,
    bytes_sent: Counter,
    delivered: Counter,
    lost: Counter,
    queue_len: Histogram,
    trace_dropped: Counter,
}

impl SimTelemetry {
    fn from_registry(registry: &Registry) -> Self {
        SimTelemetry {
            tx_started: registry.counter("mac.tx.started"),
            tx_completed: registry.counter("mac.tx.completed"),
            bytes_sent: registry.counter("mac.bytes_sent"),
            delivered: registry.counter("mac.delivered"),
            lost: registry.counter("mac.lost"),
            queue_len: registry.histogram(
                "mac.queue.len",
                &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            ),
            trace_dropped: registry.counter("trace.dropped_events"),
        }
    }
}

/// Windowed dynamics series, attached via [`Simulator::attach_timeline`]:
/// per-node queue depth over simulated time plus per-link delivery/loss
/// event rates. Series handles are pre-registered at attach time, so the
/// per-event cost is one branch when disabled and one bounded bucket
/// fold when enabled — never a name lookup or format.
#[derive(Debug, Default)]
struct SimTimeline {
    /// Queue-depth series per node (engine index order).
    queues: Vec<Series>,
    /// `(delivered, lost)` series per directed topology link, keyed by
    /// receiver index within the sender's slot.
    links: Vec<BTreeMap<usize, (Series, Series)>>,
}

impl SimTimeline {
    fn record_queue(&self, node: NodeId, now: SimTime, len: usize) {
        if let Some(series) = self.queues.get(node.index()) {
            series.record(now.as_secs(), len as f64);
        }
    }

    fn record_link(&self, from: NodeId, to: NodeId, now: SimTime, delivered: bool) {
        if let Some((d, l)) = self
            .links
            .get(from.index())
            .and_then(|m| m.get(&to.index()))
        {
            let series = if delivered { d } else { l };
            series.record(now.as_secs(), 1.0);
        }
    }
}

/// Where an outgoing packet is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// One transmission, heard by every in-range node independently with
    /// its link probability — the broadcast MAC OMNC exploits.
    Broadcast,
    /// Addressed to one next hop (the unicast MAC of ETX routing). The
    /// sender learns the outcome via [`Behavior::on_unicast_result`],
    /// modeling MAC-level acknowledgements.
    Unicast(NodeId),
}

/// A packet handed to the MAC.
#[derive(Debug, Clone)]
pub struct Outgoing<M> {
    /// Protocol-level message content.
    pub msg: M,
    /// Bytes charged to the channel (headers included).
    pub wire_len: usize,
    /// Destination semantics.
    pub dest: Dest,
    /// Optional causal identity, carried into every trace event this
    /// packet causes and exposed to receivers via [`Ctx::incoming_tag`].
    pub tag: Option<PacketTag>,
}

/// Protocol logic attached to one node.
///
/// All methods have empty defaults so implementations only override what
/// they need. Behaviors interact with the world exclusively through
/// [`Ctx`] — enqueueing packets, setting timers and drawing randomness —
/// which keeps runs deterministic and replayable.
#[allow(unused_variables)]
pub trait Behavior<M>: 'static {
    /// Invoked once at simulation start (nodes in id order).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {}

    /// A packet transmitted by `from` was received by this node.
    fn on_receive(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: &M) {}

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {}

    /// A unicast transmission to `to` completed; `delivered` tells whether
    /// the channel delivered it (MAC-level feedback).
    fn on_unicast_result(&mut self, ctx: &mut Ctx<'_, M>, to: NodeId, msg: &M, delivered: bool) {}

    /// The queue length is `len`; total length observed by this node. Used
    /// by behaviors that track their own backlog signal; most ignore it.
    fn on_queue_change(&mut self, len: usize) {}
}

impl<M, B: Behavior<M> + ?Sized> Behavior<M> for Box<B> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        (**self).on_start(ctx);
    }
    fn on_receive(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: &M) {
        (**self).on_receive(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {
        (**self).on_timer(ctx, token);
    }
    fn on_unicast_result(&mut self, ctx: &mut Ctx<'_, M>, to: NodeId, msg: &M, delivered: bool) {
        (**self).on_unicast_result(ctx, to, msg, delivered);
    }
    fn on_queue_change(&mut self, len: usize) {
        (**self).on_queue_change(len);
    }
}

/// A queued (or in-flight) packet. Lives in the engine's packet arena;
/// `next` chains it into its node's intrusive transmit FIFO.
#[derive(Debug)]
struct Packet<M> {
    msg: M,
    wire_len: usize,
    dest: Dest,
    tag: Option<PacketTag>,
    /// Session of the behavior that enqueued it: the multi-session
    /// dispatch key for delivery and per-session accounting.
    session: u32,
    /// When it entered the transmit queue (queue-wait accounting).
    enqueued_at: SimTime,
    /// Next packet in the same node's FIFO.
    next: Option<Handle>,
}

/// Head/tail of one node's transmit FIFO in the shared packet arena.
#[derive(Debug, Clone, Copy, Default)]
struct Fifo {
    head: Option<Handle>,
    tail: Option<Handle>,
    len: usize,
}

/// An in-flight transmission: the packet stays in the arena until the MAC
/// finishes with it, and the pending completion event can be cancelled in
/// O(1) when the transmitter is killed.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Handle,
    /// Channel time this transmission occupies (airtime accounting).
    duration: f64,
    /// The scheduled `TxComplete`, cancelled on kill.
    complete: EventId,
}

/// Epoch value meaning "no cached MAC shares yet".
const NO_EPOCH: u64 = u64::MAX;

/// Engine internals visible to behaviors through [`Ctx`].
///
/// State is struct-of-arrays over node index: queues, in-flight slots,
/// trackers, stats, liveness and RNG streams are parallel vectors, so the
/// dispatch loop touches small dense arrays instead of chasing per-node
/// objects.
struct Core<M> {
    topology: Topology,
    mac: MacModel,
    events: EventQueue<Event>,
    /// All queued and in-flight packets, shared across nodes.
    packets: Arena<Packet<M>>,
    queues: Vec<Fifo>,
    inflight: Vec<Option<InFlight>>,
    /// Flattened out-links (SoA): receiver ids and link probabilities for
    /// node `i` live at `link_span[i].0 .. link_span[i].1`. Lets the
    /// delivery fan-out iterate by copy without borrowing the topology.
    link_to: Vec<NodeId>,
    link_p: Vec<f64>,
    link_span: Vec<(u32, u32)>,
    trackers: Vec<QueueTracker>,
    stats: Vec<NodeStats>,
    session_stats: Vec<SessionStats>,
    /// One independent random stream per node, derived from the master
    /// seed: node `i`'s draws are stable no matter what the rest of the
    /// mesh (or other sessions) do.
    rngs: Vec<Pcg64>,
    now: SimTime,
    stopped: bool,
    trace: Trace,
    dead: Vec<bool>,
    /// `backlogged[i]` = node `i` holds an in-flight transmission or a
    /// non-empty queue. `backlog_epoch` bumps whenever the set changes;
    /// MAC shares are cached per epoch, so the progressive-fill
    /// computation is amortized over every transmission started under the
    /// same backlog set.
    backlogged: Vec<bool>,
    backlog_epoch: u64,
    cached_rates: Vec<f64>,
    cached_epoch: u64,
    /// Scratch for the node-id-ordered backlog list (reused, never freed).
    backlog_list: Vec<NodeId>,
    telemetry: SimTelemetry,
    timeline: SimTimeline,
    profiler: Profiler,
    /// Tag of the packet currently being delivered to a behavior, set for
    /// the duration of its `on_receive` callback.
    incoming_tag: Option<PacketTag>,
}

impl<M> Core<M> {
    fn observe_queue(&mut self, node: NodeId) {
        let len = self.queues[node.index()].len;
        self.trackers[node.index()].observe(self.now, len);
        self.telemetry.queue_len.observe(len as f64);
        self.timeline.record_queue(node, self.now, len);
        self.trace.record(TraceEvent::Queue {
            at: self.now,
            node,
            len,
        });
    }

    /// Appends `packet` to `node`'s FIFO. Hot path: one arena alloc
    /// (free-list pop in steady state), two link writes.
    fn queue_push(&mut self, node: NodeId, packet: Packet<M>) {
        let handle = self.packets.alloc(packet);
        let queue = &mut self.queues[node.index()];
        let tail = queue.tail;
        queue.tail = Some(handle);
        queue.len += 1;
        match tail {
            Some(t) => {
                if let Some(prev) = self.packets.get_mut(t) {
                    prev.next = Some(handle);
                }
            }
            None => self.queues[node.index()].head = Some(handle),
        }
    }

    /// Detaches the head of `node`'s FIFO (the packet stays in the arena).
    fn queue_pop(&mut self, node: NodeId) -> Option<Handle> {
        let head = self.queues[node.index()].head?;
        let next = self.packets.get(head).and_then(|p| p.next);
        let queue = &mut self.queues[node.index()];
        queue.head = next;
        if next.is_none() {
            queue.tail = None;
        }
        queue.len -= 1;
        Some(head)
    }

    /// Frees every packet in `node`'s FIFO and empties it.
    fn queue_clear(&mut self, node: NodeId) {
        let mut cursor = self.queues[node.index()].head;
        while let Some(handle) = cursor {
            cursor = self.packets.get(handle).and_then(|p| p.next);
            self.packets.free(handle);
        }
        self.queues[node.index()] = Fifo::default();
    }

    /// Re-evaluates `node`'s backlogged flag, bumping the epoch on change
    /// (which invalidates the cached MAC shares).
    fn update_backlog(&mut self, node: NodeId) {
        let i = node.index();
        let flag = self.inflight[i].is_some() || self.queues[i].len > 0;
        if self.backlogged[i] != flag {
            self.backlogged[i] = flag;
            self.backlog_epoch = self.backlog_epoch.wrapping_add(1);
        }
    }

    /// The MAC service rate of `node` under the current backlog set.
    ///
    /// Fixed-rate MACs answer from the rate table directly; contention
    /// MACs answer from a share vector cached per backlog epoch, so the
    /// progressive fill runs once per change of the backlogged set rather
    /// than once per transmission.
    fn current_rate(&mut self, node: NodeId) -> f64 {
        if let MacModel::RateLimited { rates, .. } = &self.mac {
            return rates.get(node.index()).copied().unwrap_or(0.0);
        }
        if self.cached_epoch != self.backlog_epoch {
            self.backlog_list.clear();
            for (i, &flag) in self.backlogged.iter().enumerate() {
                if flag {
                    self.backlog_list.push(NodeId::new(i));
                }
            }
            let shares = self.mac.shares(&self.backlog_list, &self.topology);
            for rate in &mut self.cached_rates {
                *rate = 0.0;
            }
            for (slot, member) in self.backlog_list.iter().enumerate() {
                self.cached_rates[member.index()] = shares.get(slot).copied().unwrap_or(0.0);
            }
            self.cached_epoch = self.backlog_epoch;
        }
        self.cached_rates.get(node.index()).copied().unwrap_or(0.0)
    }

    fn charge_session<F: FnOnce(&mut SessionStats)>(&mut self, session: u32, f: F) {
        if let Some(stats) = self.session_stats.get_mut(session as usize) {
            f(stats);
        }
    }
}

/// The handle a [`Behavior`] uses to act on the world.
pub struct Ctx<'a, M> {
    core: &'a mut Core<M>,
    node: NodeId,
    session: u32,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The session this behavior belongs to (0 for single-session runs).
    pub fn session(&self) -> usize {
        self.session as usize
    }

    /// Appends a packet to this node's transmit queue, stamped with this
    /// behavior's session.
    pub fn enqueue(&mut self, packet: Outgoing<M>) {
        let now = self.core.now;
        self.core.queue_push(
            self.node,
            Packet {
                msg: packet.msg,
                wire_len: packet.wire_len,
                dest: packet.dest,
                tag: packet.tag,
                session: self.session,
                enqueued_at: now,
                next: None,
            },
        );
        self.core.update_backlog(self.node);
        self.core.observe_queue(self.node);
    }

    /// This node's current queue length (all sessions).
    pub fn queue_len(&self) -> usize {
        self.core.queues[self.node.index()].len
    }

    /// Drops queued packets for which `keep` returns `false` (e.g. packets
    /// of an expired generation, Sec. 4 of the paper). Packets of *other*
    /// sessions sharing this node's queue are left untouched.
    pub fn retain_queue<F: FnMut(&M) -> bool>(&mut self, mut keep: F) {
        let mine = self.session;
        let mut head = None;
        let mut tail: Option<Handle> = None;
        let mut len = 0usize;
        let mut cursor = self.core.queues[self.node.index()].head;
        while let Some(handle) = cursor {
            cursor = self.core.packets.get(handle).and_then(|p| p.next);
            let kept = match self.core.packets.get(handle) {
                Some(p) => p.session != mine || keep(&p.msg),
                None => false,
            };
            if kept {
                if let Some(p) = self.core.packets.get_mut(handle) {
                    p.next = None;
                }
                match tail {
                    Some(t) => {
                        if let Some(prev) = self.core.packets.get_mut(t) {
                            prev.next = Some(handle);
                        }
                    }
                    None => head = Some(handle),
                }
                tail = Some(handle);
                len += 1;
            } else {
                self.core.packets.free(handle);
            }
        }
        self.core.queues[self.node.index()] = Fifo { head, tail, len };
        self.core.update_backlog(self.node);
        self.core.observe_queue(self.node);
    }

    /// Schedules [`Behavior::on_timer`] for this node after `delay` seconds.
    /// The timer routes back to the session that armed it.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be non-negative"
        );
        let at = self.core.now + delay;
        self.core.events.schedule(
            at,
            Event::Timer {
                node: self.node,
                session: self.session,
                token,
            },
        );
    }

    /// The [`PacketTag`] of the packet being handled by the current
    /// [`Behavior::on_receive`] call, if the transmitter attached one.
    /// `None` outside `on_receive` or for untagged traffic.
    pub fn incoming_tag(&self) -> Option<PacketTag> {
        self.core.incoming_tag
    }

    /// Deterministic randomness for protocol decisions (coding
    /// coefficients, jitter). Each node draws from its own seeded stream,
    /// so one node's decisions never perturb another's sequence.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.core.rngs[self.node.index()]
    }

    /// Ends the simulation after the current event.
    pub fn stop(&mut self) {
        self.core.stopped = true;
    }

    /// The topology the simulation runs on.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }
}

/// A deterministic discrete-event wireless simulator.
///
/// Generic over the protocol message type `M` and the behavior type `B`
/// (commonly an enum with one variant per role, or
/// `Box<dyn Behavior<M>>`). A node can host one behavior per concurrent
/// *session* ([`Simulator::set_session_behavior`]); all sessions share the
/// node's transmit queue and the MAC, which is exactly the contention the
/// paper's rate control is built for.
pub struct Simulator<M, B> {
    core: Core<M>,
    /// `behaviors[session][node]`.
    behaviors: Vec<Vec<Option<B>>>,
    started: bool,
}

impl<M: Clone + 'static, B: Behavior<M>> Simulator<M, B> {
    /// Creates a simulator over `topology` with the given MAC model and RNG
    /// seed. All nodes start without behaviors (they stay silent).
    pub fn new(topology: &Topology, mac: MacModel, seed: u64) -> Self {
        let n = topology.len();
        let mut link_to = Vec::new();
        let mut link_p = Vec::new();
        let mut link_span = Vec::with_capacity(n);
        for node in topology.nodes() {
            let start = link_to.len() as u32;
            for link in topology.out_links(node) {
                link_to.push(link.to);
                link_p.push(link.p);
            }
            link_span.push((start, link_to.len() as u32));
        }
        Simulator {
            core: Core {
                topology: topology.clone(),
                mac,
                events: EventQueue::new(),
                packets: Arena::new(),
                queues: vec![Fifo::default(); n],
                inflight: (0..n).map(|_| None).collect(),
                link_to,
                link_p,
                link_span,
                trackers: vec![QueueTracker::new(); n],
                stats: vec![NodeStats::default(); n],
                session_stats: vec![SessionStats::default()],
                rngs: (0..n).map(|i| Pcg64::for_node(seed, i)).collect(),
                now: SimTime::ZERO,
                stopped: false,
                trace: Trace::disabled(),
                dead: vec![false; n],
                backlogged: vec![false; n],
                backlog_epoch: 0,
                cached_rates: vec![0.0; n],
                cached_epoch: NO_EPOCH,
                backlog_list: Vec::with_capacity(n),
                telemetry: SimTelemetry::default(),
                timeline: SimTimeline::default(),
                profiler: Profiler::disabled(),
                incoming_tag: None,
            },
            behaviors: vec![(0..n).map(|_| None).collect()],
            started: false,
        }
    }

    /// Installs the protocol logic for `node` (session 0).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the simulation already started.
    pub fn set_behavior(&mut self, node: NodeId, behavior: B) {
        self.set_session_behavior(0, node, behavior);
    }

    /// Installs the protocol logic for `node` within `session`. Sessions
    /// are dense indices starting at 0; installing a behavior for a new
    /// session grows the session table. All sessions of a node share its
    /// transmit queue and MAC slot; timers and deliveries route back to
    /// the session that caused them.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the simulation already started.
    pub fn set_session_behavior(&mut self, session: usize, node: NodeId, behavior: B) {
        assert!(
            !self.started,
            "behaviors must be installed before the run starts"
        );
        assert!(session < u32::MAX as usize, "session index out of range");
        let n = self.core.topology.len();
        while self.behaviors.len() <= session {
            self.behaviors.push((0..n).map(|_| None).collect());
        }
        if self.core.session_stats.len() <= session {
            self.core
                .session_stats
                .resize_with(session + 1, SessionStats::default);
        }
        self.behaviors[session][node.index()] = Some(behavior);
    }

    /// Number of sessions the engine is dispatching (at least 1).
    pub fn sessions(&self) -> usize {
        self.behaviors.len()
    }

    /// Read access to a node's behavior (e.g. to extract final protocol
    /// state after the run). Session 0.
    pub fn behavior(&self, node: NodeId) -> Option<&B> {
        self.session_behavior(0, node)
    }

    /// Mutable access to a node's behavior between runs. Session 0.
    pub fn behavior_mut(&mut self, node: NodeId) -> Option<&mut B> {
        self.session_behavior_mut(0, node)
    }

    /// Read access to the behavior of `session` at `node`.
    pub fn session_behavior(&self, session: usize, node: NodeId) -> Option<&B> {
        self.behaviors.get(session)?.get(node.index())?.as_ref()
    }

    /// Mutable access to the behavior of `session` at `node`.
    pub fn session_behavior_mut(&mut self, session: usize, node: NodeId) -> Option<&mut B> {
        self.behaviors
            .get_mut(session)?
            .get_mut(node.index())?
            .as_mut()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Turns on MAC-level event tracing, keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already started.
    pub fn enable_trace(&mut self, capacity: usize) {
        assert!(!self.started, "enable tracing before the run starts");
        self.core.trace = Trace::bounded(capacity);
        self.core
            .trace
            .set_dropped_counter(self.core.telemetry.trace_dropped.clone());
    }

    /// The recorded MAC-level events (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.core.trace
    }

    /// Wires MAC transmission/delivery/loss counters and queue-length
    /// samples into `registry`, and mirrors trace overflow into the
    /// `trace.dropped_events` counter. With a disabled registry this is
    /// free; with an enabled one each MAC event costs one relaxed atomic
    /// update.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.core.telemetry = SimTelemetry::from_registry(registry);
        self.core
            .trace
            .set_dropped_counter(self.core.telemetry.trace_dropped.clone());
    }

    /// Wires windowed dynamics series into `timeline`: per-node queue
    /// depth (`<prefix>/queue/n<label>`, sampled at every queue change)
    /// and per-link delivery/loss events
    /// (`<prefix>/link/<from>-<to>/{delivered,lost}`, one unit sample per
    /// MAC outcome, so each bucket's `count`/`sum` is the event rate in
    /// that window). `node_labels[i]` names engine node `i` in the series
    /// paths — callers running on a pruned sub-topology pass the original
    /// node ids so series line up with traces and reports. Series handles
    /// are registered here, once; with a disabled recorder this is free
    /// and nothing is registered.
    ///
    /// Recording reads only simulation state (never the RNG or the event
    /// queue), so enabling timelines cannot perturb seeded runs.
    ///
    /// # Panics
    ///
    /// Panics if `node_labels` does not cover every node.
    pub fn attach_timeline(&mut self, timeline: &TimeSeries, prefix: &str, node_labels: &[u64]) {
        if !timeline.is_enabled() {
            return;
        }
        let n = self.core.topology.len();
        assert!(
            node_labels.len() == n,
            "timeline node_labels must cover all {n} nodes"
        );
        let name = |tail: String| {
            if prefix.is_empty() {
                tail
            } else {
                format!("{prefix}/{tail}")
            }
        };
        let queues = (0..n)
            .map(|i| timeline.series(&name(format!("queue/n{}", node_labels[i]))))
            .collect();
        let links = (0..n)
            .map(|i| {
                self.core
                    .topology
                    .out_links(NodeId::new(i))
                    .iter()
                    .map(|l| {
                        let (a, b) = (node_labels[i], node_labels[l.to.index()]);
                        let delivered = timeline.series(&name(format!("link/{a}-{b}/delivered")));
                        let lost = timeline.series(&name(format!("link/{a}-{b}/lost")));
                        (l.to.index(), (delivered, lost))
                    })
                    .collect()
            })
            .collect();
        self.core.timeline = SimTimeline { queues, links };
    }

    /// Attaches a hierarchical profiler: [`Simulator::run_until`] opens a
    /// `drift.run` span with per-event `dispatch.*` children, and the MAC
    /// hot spots record `mac.arbitrate` (service-rate computation over the
    /// backlogged set) and `mac.deliver` (per-receiver channel draws and
    /// delivery fan-out). Behaviors that profile themselves on the same
    /// profiler nest under the dispatch spans. A disabled profiler (the
    /// default) costs one branch per event.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.core.profiler = profiler;
    }

    /// Schedules a crash-stop failure: at time `at`, `node` goes silent and
    /// deaf — its queue is flushed, its in-flight transmission is aborted
    /// (the pending completion event is cancelled outright), and it neither
    /// receives nor fires timers afterwards. Fault injection for resilience
    /// experiments (single-path routing dies with its relay; multipath
    /// coded protocols degrade gracefully).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current time.
    pub fn schedule_kill(&mut self, node: NodeId, at: f64) {
        let at = SimTime::new(at);
        assert!(at >= self.core.now, "cannot kill in the past");
        self.core.events.schedule(at, Event::Kill(node));
    }

    /// `true` if `node` has been killed.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.core.dead[node.index()]
    }

    /// `true` once a behavior called [`Ctx::stop`].
    pub fn is_stopped(&self) -> bool {
        self.core.stopped
    }

    /// Transmission counters for `node`.
    pub fn stats(&self, node: NodeId) -> NodeStats {
        self.core.stats[node.index()]
    }

    /// Mesh-wide aggregates for `session` (zeroed for unknown sessions).
    pub fn session_stats(&self, session: usize) -> SessionStats {
        self.core
            .session_stats
            .get(session)
            .copied()
            .unwrap_or_default()
    }

    /// Each session's share of total consumed airtime, in session order.
    /// Sums to 1 when any airtime was consumed; all-zero otherwise. The
    /// cross-session fairness metric: under a fair MAC, competing sessions
    /// should converge to comparable shares.
    pub fn airtime_shares(&self) -> Vec<f64> {
        let total: f64 = self.core.session_stats.iter().map(|s| s.airtime).sum();
        self.core
            .session_stats
            .iter()
            .map(|s| if total > 0.0 { s.airtime / total } else { 0.0 })
            .collect()
    }

    /// Time-averaged transmit-queue length of `node` (Fig. 3's metric).
    pub fn queue_average(&self, node: NodeId) -> f64 {
        self.core.trackers[node.index()].time_average()
    }

    /// Peak queue length of `node`.
    pub fn queue_peak(&self, node: NodeId) -> usize {
        self.core.trackers[node.index()].peak()
    }

    /// Runs until simulated time `end` (seconds), the event queue drains,
    /// or a behavior stops the run. Returns the time the run ended.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the current time.
    pub fn run_until(&mut self, end: f64) -> SimTime {
        let end = SimTime::new(end);
        assert!(end >= self.core.now, "cannot run backwards in time");
        if !self.started {
            self.started = true;
            for node in self.core.topology.nodes() {
                self.core.events.schedule(SimTime::ZERO, Event::Start(node));
            }
        }
        let _run = self.core.profiler.span("drift.run");
        while !self.core.stopped {
            let Some(next_time) = self.core.events.peek_time() else {
                break;
            };
            if next_time > end {
                break;
            }
            let Some((time, event)) = self.core.events.pop() else {
                break; // unreachable: peek_time() just returned Some
            };
            self.core.now = time;
            let _dispatch = self.core.profiler.span(match &event {
                Event::Start(_) => "dispatch.start",
                Event::Timer { .. } => "dispatch.timer",
                Event::TxComplete { .. } => "dispatch.tx_complete",
                Event::Kill(_) => "dispatch.kill",
            });
            self.dispatch(event);
        }
        if self.core.now < end && !self.core.stopped && self.core.events.is_empty() {
            self.core.now = end;
        }
        // Close the queue-average integration window.
        for node in 0..self.core.queues.len() {
            let len = self.core.queues[node].len;
            self.core.trackers[node].observe(self.core.now, len);
        }
        self.core.now
    }

    /// Multi-session event dispatch: routes one popped event to the
    /// behavior(s) it concerns. `Start` fans out across every session of
    /// the node; timers and transmissions carry their session with them.
    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Start(node) => {
                for session in 0..self.behaviors.len() {
                    self.with_behavior(session, node, |b, ctx| b.on_start(ctx));
                }
                self.try_start_tx(node);
            }
            Event::Timer {
                node,
                session,
                token,
            } => {
                if !self.core.dead[node.index()] {
                    self.with_behavior(session as usize, node, |b, ctx| b.on_timer(ctx, token));
                    self.try_start_tx(node);
                }
            }
            Event::TxComplete { node } => {
                if !self.core.dead[node.index()] {
                    self.complete_tx(node);
                    self.try_start_tx(node);
                }
            }
            Event::Kill(node) => {
                self.core.dead[node.index()] = true;
                self.core.queue_clear(node);
                self.core.observe_queue(node);
                if let Some(flight) = self.core.inflight[node.index()].take() {
                    self.core.events.cancel(flight.complete);
                    self.core.packets.free(flight.packet);
                }
                self.core.update_backlog(node);
            }
        }
    }

    /// Invokes a behavior callback with a fresh [`Ctx`]; nodes without
    /// behaviors ignore events.
    fn with_behavior<F>(&mut self, session: usize, node: NodeId, f: F)
    where
        F: FnOnce(&mut B, &mut Ctx<'_, M>),
    {
        let Some(slot) = self
            .behaviors
            .get_mut(session)
            .and_then(|row| row.get_mut(node.index()))
        else {
            return;
        };
        if let Some(mut behavior) = slot.take() {
            {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node,
                    session: session as u32,
                };
                f(&mut behavior, &mut ctx);
            }
            behavior.on_queue_change(self.core.queues[node.index()].len);
            self.behaviors[session][node.index()] = Some(behavior);
        }
    }

    /// Starts a transmission at `node` if it is idle and backlogged and the
    /// MAC grants it a positive rate.
    fn try_start_tx(&mut self, node: NodeId) {
        let i = node.index();
        if self.core.dead[i] || self.core.inflight[i].is_some() || self.core.queues[i].len == 0 {
            return;
        }
        let rate = {
            let _arbitrate = self.core.profiler.span("mac.arbitrate");
            self.core.current_rate(node)
        };
        if rate <= 0.0 {
            return;
        }
        let Some(handle) = self.core.queue_pop(node) else {
            return; // try_start_tx only runs with a non-empty queue
        };
        self.core.observe_queue(node);
        let Some((wire_len, tag, session, enqueued_at)) = self
            .core
            .packets
            .get(handle)
            .map(|p| (p.wire_len, p.tag, p.session, p.enqueued_at))
        else {
            return; // unreachable: the handle was just popped live
        };
        let waited = self.core.now.since(enqueued_at);
        self.core
            .charge_session(session, |s| s.queue_wait += waited);
        let duration = wire_len as f64 / rate;
        self.core.telemetry.tx_started.inc();
        self.core.trace.record(TraceEvent::TxStart {
            at: self.core.now,
            node,
            wire_len,
            rate,
            tag,
        });
        let complete = self
            .core
            .events
            .schedule(self.core.now + duration, Event::TxComplete { node });
        self.core.inflight[i] = Some(InFlight {
            packet: handle,
            duration,
            complete,
        });
        self.core.update_backlog(node);
    }

    /// Finishes `node`'s transmission: charge stats, roll the channel dice
    /// per receiver, deliver.
    fn complete_tx(&mut self, node: NodeId) {
        let _deliver = self.core.profiler.span("mac.deliver");
        let Some(flight) = self.core.inflight[node.index()].take() else {
            return;
        };
        self.core.update_backlog(node);
        let Some(packet) = self.core.packets.free(flight.packet) else {
            return; // unreachable: in-flight handles are live until here
        };
        self.core.stats[node.index()].packets_sent += 1;
        self.core.stats[node.index()].bytes_sent += packet.wire_len as u64;
        self.core.telemetry.tx_completed.inc();
        self.core.telemetry.bytes_sent.add(packet.wire_len as u64);
        self.core.trace.record(TraceEvent::TxComplete {
            at: self.core.now,
            node,
        });
        self.core.charge_session(packet.session, |s| {
            s.packets_sent += 1;
            s.bytes_sent += packet.wire_len as u64;
            s.airtime += flight.duration;
        });

        match packet.dest {
            Dest::Broadcast => {
                // Deterministic receiver order: topology out-link order,
                // iterated over the flattened SoA copy (no allocation).
                let (start, end) = self.core.link_span[node.index()];
                for k in start as usize..end as usize {
                    let to = self.core.link_to[k];
                    let p = self.core.link_p[k];
                    if self.core.dead[to.index()] {
                        continue; // dead receivers hear nothing
                    }
                    let delivered = self.core.rngs[node.index()].gen_bool(p);
                    self.finish_delivery(node, to, &packet, delivered);
                    if delivered {
                        self.try_start_tx(to);
                    }
                }
            }
            Dest::Unicast(to) => {
                let p = self.core.topology.link_prob(node, to).unwrap_or(0.0);
                let delivered = !self.core.dead[to.index()]
                    && p > 0.0
                    && self.core.rngs[node.index()].gen_bool(p);
                self.finish_delivery(node, to, &packet, delivered);
                if delivered {
                    self.try_start_tx(to);
                }
                self.with_behavior(packet.session as usize, node, |b, ctx| {
                    b.on_unicast_result(ctx, to, &packet.msg, delivered)
                });
            }
        }
    }

    /// Records one receiver's channel outcome and, on delivery, hands the
    /// packet to the receiver's behavior for the packet's session.
    fn finish_delivery(&mut self, from: NodeId, to: NodeId, packet: &Packet<M>, delivered: bool) {
        if delivered {
            self.core.stats[to.index()].packets_received += 1;
            self.core.telemetry.delivered.inc();
            self.core
                .timeline
                .record_link(from, to, self.core.now, true);
            self.core.trace.record(TraceEvent::Delivered {
                at: self.core.now,
                from,
                to,
                tag: packet.tag,
            });
            self.core
                .charge_session(packet.session, |s| s.packets_delivered += 1);
            self.core.incoming_tag = packet.tag;
            self.with_behavior(packet.session as usize, to, |b, ctx| {
                b.on_receive(ctx, from, &packet.msg)
            });
            self.core.incoming_tag = None;
        } else {
            self.core.stats[to.index()].packets_lost += 1;
            self.core.telemetry.lost.inc();
            self.core
                .timeline
                .record_link(from, to, self.core.now, false);
            self.core.trace.record(TraceEvent::Lost {
                at: self.core.now,
                from,
                to,
                tag: packet.tag,
            });
            self.core
                .charge_session(packet.session, |s| s.packets_lost += 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::graph::Link;

    #[derive(Clone)]
    struct Msg(#[allow(dead_code)] u64);

    /// Floods `count` packets at start.
    struct Flood {
        count: usize,
        wire_len: usize,
    }
    impl Behavior<Msg> for Flood {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            for i in 0..self.count {
                ctx.enqueue(Outgoing {
                    msg: Msg(i as u64),
                    wire_len: self.wire_len,
                    dest: Dest::Broadcast,
                    tag: None,
                });
            }
        }
    }

    /// Counts received packets.
    #[derive(Default)]
    struct Counter {
        got: u64,
        last_from: Option<NodeId>,
    }
    impl Behavior<Msg> for Counter {
        fn on_receive(&mut self, _ctx: &mut Ctx<'_, Msg>, from: NodeId, _msg: &Msg) {
            self.got += 1;
            self.last_from = Some(from);
        }
    }

    fn pair(p: f64) -> Topology {
        Topology::from_links(
            2,
            vec![Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p,
            }],
        )
        .unwrap()
    }

    #[test]
    fn perfect_link_delivers_everything() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 1);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 10,
                wire_len: 100,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.run_until(10.0);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 10);
        assert_eq!(sim.stats(NodeId::new(1)).packets_received, 10);
        assert_eq!(sim.stats(NodeId::new(1)).packets_lost, 0);
    }

    #[test]
    fn transmission_takes_wire_len_over_rate() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Flood> = Simulator::new(&topo, MacModel::fair_share(1000.0), 1);
        sim.set_behavior(
            NodeId::new(0),
            Flood {
                count: 10,
                wire_len: 100,
            },
        );
        // 10 packets × 100 bytes at 1000 B/s = 1 second exactly.
        sim.run_until(0.999);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 9);
        sim.run_until(1.001);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 10);
    }

    #[test]
    fn lossy_link_loses_roughly_p_fraction() {
        let topo = pair(0.3);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(1e6), 42);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 10_000,
                wire_len: 10,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.run_until(1e3);
        let got = sim.stats(NodeId::new(1)).packets_received as f64;
        assert!((got / 10_000.0 - 0.3).abs() < 0.02, "received {got}");
        assert_eq!(
            sim.stats(NodeId::new(1)).packets_received + sim.stats(NodeId::new(1)).packets_lost,
            10_000
        );
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let topo = pair(0.5);
        let run = |seed: u64| {
            let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
                Simulator::new(&topo, MacModel::fair_share(1000.0), seed);
            sim.set_behavior(
                NodeId::new(0),
                Box::new(Flood {
                    count: 100,
                    wire_len: 10,
                }),
            );
            sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
            sim.run_until(100.0);
            sim.stats(NodeId::new(1)).packets_received
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn timeline_run_matches_plain_and_records_dynamics_series() {
        let topo = pair(0.5);
        let run = |timeline: Option<TimeSeries>| {
            let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
                Simulator::new(&topo, MacModel::fair_share(1000.0), 7);
            if let Some(ts) = &timeline {
                sim.attach_timeline(ts, "s0", &[10, 11]);
            }
            sim.set_behavior(
                NodeId::new(0),
                Box::new(Flood {
                    count: 100,
                    wire_len: 10,
                }),
            );
            sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
            sim.run_until(100.0);
            (
                sim.stats(NodeId::new(0)).packets_sent,
                sim.stats(NodeId::new(1)).packets_received,
                sim.stats(NodeId::new(1)).packets_lost,
            )
        };
        let plain = run(None);
        let ts = TimeSeries::enabled(0.25, 64);
        let timed = run(Some(ts.clone()));
        assert_eq!(plain, timed, "timelines must not change behavior");

        let snap = ts.snapshot();
        let series = |name: &str| {
            snap.series(name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        // Labels, not engine indices, name the series.
        let queue = series("s0/queue/n10");
        assert!(queue.total_count() > 0, "queue depth was sampled");
        assert_eq!(
            series("s0/link/10-11/delivered").total_count(),
            plain.1,
            "one delivery sample per delivered packet"
        );
        assert_eq!(series("s0/link/10-11/lost").total_count(), plain.2);
        // Disabled recorders register nothing at attach time.
        let off = TimeSeries::disabled();
        let mut sim: Simulator<Msg, Flood> = Simulator::new(&topo, MacModel::fair_share(1e3), 7);
        sim.attach_timeline(&off, "s0", &[0, 1]);
        assert!(off.snapshot().series.is_empty());
    }

    #[test]
    fn profiled_run_matches_plain_and_records_dispatch_spans() {
        let topo = pair(0.5);
        let run = |profiler: Option<telemetry::Profiler>| {
            let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
                Simulator::new(&topo, MacModel::fair_share(1000.0), 7);
            if let Some(p) = profiler {
                sim.attach_profiler(p);
            }
            sim.set_behavior(
                NodeId::new(0),
                Box::new(Flood {
                    count: 100,
                    wire_len: 10,
                }),
            );
            sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
            sim.run_until(100.0);
            (
                sim.stats(NodeId::new(0)).packets_sent,
                sim.stats(NodeId::new(1)).packets_received,
            )
        };
        let plain = run(None);
        let profiler = telemetry::Profiler::virtual_clock();
        let profiled = run(Some(profiler.clone()));
        assert_eq!(plain, profiled, "profiling must not change behavior");

        let report = profiler.report();
        let span = |path: &str| {
            report
                .span(path)
                .unwrap_or_else(|| panic!("missing span {path}"))
        };
        assert_eq!(span("drift.run").calls, 1);
        // One Start event per node, one TxComplete per transmission.
        assert_eq!(span("drift.run;dispatch.start").calls, 2);
        assert_eq!(span("drift.run;dispatch.tx_complete").calls, plain.0);
        // Every delivery runs MAC arbitration (next tx) and the deliver path.
        assert_eq!(
            span("drift.run;dispatch.tx_complete;mac.deliver").calls,
            plain.0
        );
        assert!(report
            .span("drift.run;dispatch.start;mac.arbitrate")
            .is_some());
        assert!(
            report.total_root_ticks() >= span("drift.run").total_ticks,
            "root accounting must cover the run span"
        );
    }

    #[test]
    fn rate_limited_mac_paces_transmissions() {
        let topo = pair(1.0);
        // 50 B/s on a 100-byte packet = 2 seconds per packet.
        let mac = MacModel::rate_limited(vec![50.0, 0.0], 1000.0);
        let mut sim: Simulator<Msg, Flood> = Simulator::new(&topo, mac, 3);
        sim.set_behavior(
            NodeId::new(0),
            Flood {
                count: 5,
                wire_len: 100,
            },
        );
        sim.run_until(5.0);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 2);
        sim.run_until(20.0);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 5);
    }

    #[test]
    fn zero_rate_node_never_transmits_and_queue_grows() {
        let topo = pair(1.0);
        let mac = MacModel::rate_limited(vec![0.0, 0.0], 1000.0);
        let mut sim: Simulator<Msg, Flood> = Simulator::new(&topo, mac, 3);
        sim.set_behavior(
            NodeId::new(0),
            Flood {
                count: 8,
                wire_len: 100,
            },
        );
        sim.run_until(10.0);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 0);
        assert!((sim.queue_average(NodeId::new(0)) - 8.0).abs() < 1e-9);
        assert_eq!(sim.queue_peak(NodeId::new(0)), 8);
    }

    /// Sends unicast packets and retransmits on failure, up to a budget.
    struct StubbornUnicast {
        to: NodeId,
        budget: usize,
        delivered: usize,
        attempts: usize,
    }
    impl Behavior<Msg> for StubbornUnicast {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.enqueue(Outgoing {
                msg: Msg(0),
                wire_len: 10,
                dest: Dest::Unicast(self.to),
                tag: None,
            });
        }
        fn on_unicast_result(
            &mut self,
            ctx: &mut Ctx<'_, Msg>,
            _to: NodeId,
            _msg: &Msg,
            delivered: bool,
        ) {
            self.attempts += 1;
            if delivered {
                self.delivered += 1;
            } else if self.attempts < self.budget {
                ctx.enqueue(Outgoing {
                    msg: Msg(0),
                    wire_len: 10,
                    dest: Dest::Unicast(self.to),
                    tag: None,
                });
            }
        }
    }

    #[test]
    fn unicast_reports_results_and_retransmissions_succeed_eventually() {
        let topo = pair(0.5);
        let mut sim: Simulator<Msg, StubbornUnicast> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 11);
        sim.set_behavior(
            NodeId::new(0),
            StubbornUnicast {
                to: NodeId::new(1),
                budget: 64,
                delivered: 0,
                attempts: 0,
            },
        );
        sim.run_until(100.0);
        let b = sim.behavior(NodeId::new(0)).unwrap();
        assert_eq!(b.delivered, 1, "after {} attempts", b.attempts);
        assert!(b.attempts >= 1);
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        struct TimerNode {
            fired_at: Vec<f64>,
        }
        impl Behavior<Msg> for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(1.5, 1);
                ctx.set_timer(0.5, 2);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
                self.fired_at.push(ctx.now().as_secs());
                if token == 2 {
                    ctx.set_timer(1.0, 3);
                }
            }
        }
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, TimerNode> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 0);
        sim.set_behavior(NodeId::new(0), TimerNode { fired_at: vec![] });
        sim.run_until(10.0);
        assert_eq!(
            sim.behavior(NodeId::new(0)).unwrap().fired_at,
            vec![0.5, 1.5, 1.5]
        );
    }

    #[test]
    fn stop_ends_the_run_early() {
        struct Stopper;
        impl Behavior<Msg> for Stopper {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(2.0, 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
                ctx.stop();
            }
        }
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Stopper> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 0);
        sim.set_behavior(NodeId::new(0), Stopper);
        let end = sim.run_until(100.0);
        assert_eq!(end.as_secs(), 2.0);
        assert!(sim.is_stopped());
    }

    #[test]
    fn killed_nodes_go_silent_and_deaf() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(100.0), 1);
        // 100-byte packets at 100 B/s = 1 s each; kill the source at 2.5 s.
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 10,
                wire_len: 100,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.schedule_kill(NodeId::new(0), 2.5);
        sim.run_until(20.0);
        assert!(sim.is_dead(NodeId::new(0)));
        // Two packets completed before death; the third was in flight and
        // aborted; nothing after.
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 2);
        assert_eq!(sim.stats(NodeId::new(1)).packets_received, 2);
    }

    #[test]
    fn dead_receivers_hear_nothing() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 2);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 10,
                wire_len: 100,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.schedule_kill(NodeId::new(1), 0.45); // after ~4 deliveries
        sim.run_until(10.0);
        assert_eq!(
            sim.stats(NodeId::new(0)).packets_sent,
            10,
            "sender keeps going"
        );
        assert_eq!(sim.stats(NodeId::new(1)).packets_received, 4);
    }

    #[test]
    fn tracing_records_the_mac_story() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 1);
        sim.enable_trace(100);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 3,
                wire_len: 100,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.run_until(10.0);
        let trace = sim.trace();
        let starts = trace
            .events()
            .iter()
            .filter(|e| matches!(e, crate::trace::TraceEvent::TxStart { .. }))
            .count();
        let delivered = trace
            .events()
            .iter()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Delivered { .. }))
            .count();
        assert_eq!(starts, 3);
        assert_eq!(delivered, 3, "perfect link delivers every packet");
        // Timestamps are monotone.
        for w in trace.events().windows(2) {
            assert!(w[1].at() >= w[0].at());
        }
        assert!(trace.involving(NodeId::new(1)).count() >= 3);
    }

    #[test]
    fn telemetry_mirrors_node_stats() {
        let topo = pair(0.5);
        let registry = Registry::new();
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(1e5), 9);
        sim.attach_telemetry(&registry);
        sim.enable_trace(4); // tiny bound: most events overflow
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 200,
                wire_len: 10,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.run_until(100.0);

        let stats = sim.stats(NodeId::new(1));
        let lookup = |name: &str| {
            registry
                .snapshot()
                .into_iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(lookup("mac.tx.completed").value, 200.0);
        assert_eq!(lookup("mac.bytes_sent").value, 2000.0);
        assert_eq!(lookup("mac.delivered").value, stats.packets_received as f64);
        assert_eq!(lookup("mac.lost").value, stats.packets_lost as f64);
        assert!(lookup("mac.queue.len").count > 0);
        // The bounded trace overflowed, and the overflow is observable.
        assert_eq!(sim.trace().events().len(), 4);
        assert_eq!(
            lookup("trace.dropped_events").value,
            sim.trace().dropped() as f64
        );
        assert!(sim.trace().dropped() > 0);
    }

    #[test]
    fn trace_events_serialize_to_json() {
        let e = TraceEvent::TxStart {
            at: SimTime::new(1.5),
            node: NodeId::new(3),
            wire_len: 100,
            rate: 10.0,
            tag: None,
        };
        let text = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
        let d = TraceEvent::Delivered {
            at: SimTime::new(2.0),
            from: NodeId::new(0),
            to: NodeId::new(1),
            tag: Some(PacketTag {
                session: 1,
                generation: rlnc::GenerationId::new(0),
                seq: 5,
                origin: NodeId::new(0),
            }),
        };
        let back: TraceEvent = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn tags_flow_from_sender_to_trace_and_receiver() {
        /// Sender and receiver roles in one concrete behavior type so the
        /// test can read back the receiver's recorded tags.
        enum TagNode {
            /// Broadcasts one tagged packet at start.
            Sender,
            /// Records the tag seen during each `on_receive`.
            Sink(Vec<Option<PacketTag>>),
        }
        impl Behavior<Msg> for TagNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                if matches!(self, TagNode::Sender) {
                    let tag = PacketTag {
                        session: 99,
                        generation: rlnc::GenerationId::new(2),
                        seq: 7,
                        origin: ctx.node(),
                    };
                    ctx.enqueue(Outgoing {
                        msg: Msg(0),
                        wire_len: 100,
                        dest: Dest::Broadcast,
                        tag: Some(tag),
                    });
                    assert_eq!(ctx.incoming_tag(), None, "no delivery in flight");
                }
            }
            fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {
                if let TagNode::Sink(seen) = self {
                    seen.push(ctx.incoming_tag());
                }
            }
        }
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, TagNode> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 1);
        sim.enable_trace(100);
        sim.set_behavior(NodeId::new(0), TagNode::Sender);
        sim.set_behavior(NodeId::new(1), TagNode::Sink(Vec::new()));
        sim.run_until(10.0);
        let expected = PacketTag {
            session: 99,
            generation: rlnc::GenerationId::new(2),
            seq: 7,
            origin: NodeId::new(0),
        };
        // The receiver saw the tag during on_receive.
        match sim.behavior(NodeId::new(1)).unwrap() {
            TagNode::Sink(seen) => assert_eq!(seen, &vec![Some(expected)]),
            TagNode::Sender => unreachable!(),
        }
        // The trace carried it through TxStart and Delivered.
        let tagged: Vec<&TraceEvent> = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.tag() == Some(expected))
            .collect();
        assert!(
            tagged
                .iter()
                .any(|e| matches!(e, TraceEvent::TxStart { .. })),
            "TxStart carries the tag"
        );
        assert!(
            tagged
                .iter()
                .any(|e| matches!(e, TraceEvent::Delivered { .. })),
            "Delivered carries the tag"
        );
    }

    #[test]
    fn fair_share_contention_halves_throughput() {
        // Transmitters 0 and 2 both in range of receiver 1: they split C.
        let mut links = Vec::new();
        for (a, b) in [(0usize, 1usize), (2, 1)] {
            links.push(Link {
                from: NodeId::new(a),
                to: NodeId::new(b),
                p: 1.0,
            });
            links.push(Link {
                from: NodeId::new(b),
                to: NodeId::new(a),
                p: 1.0,
            });
        }
        let topo = Topology::from_links(3, links).unwrap();
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(100.0), 5);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 1000,
                wire_len: 10,
            }),
        );
        sim.set_behavior(
            NodeId::new(2),
            Box::new(Flood {
                count: 1000,
                wire_len: 10,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.run_until(10.0);
        // Each gets ~50 B/s → ~5 packets/s each → ~50 packets in 10 s.
        let sent0 = sim.stats(NodeId::new(0)).packets_sent;
        let sent2 = sim.stats(NodeId::new(2)).packets_sent;
        assert!((45..=55).contains(&(sent0 as i64)), "sent0 {sent0}");
        assert!((45..=55).contains(&(sent2 as i64)), "sent2 {sent2}");
    }

    // ---- multi-session dispatch -------------------------------------

    /// Per-session source: floods tagged packets and counts its timers.
    struct SessionSource {
        count: usize,
        wire_len: usize,
        timer_fired: usize,
    }
    impl Behavior<Msg> for SessionSource {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            let session = ctx.session() as u64;
            for i in 0..self.count {
                ctx.enqueue(Outgoing {
                    msg: Msg(i as u64),
                    wire_len: self.wire_len,
                    dest: Dest::Broadcast,
                    tag: Some(PacketTag {
                        session,
                        generation: rlnc::GenerationId::new(0),
                        seq: i as u64,
                        origin: ctx.node(),
                    }),
                });
            }
            ctx.set_timer(1.0, 7);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, token: u64) {
            assert_eq!(token, 7);
            self.timer_fired += 1;
        }
    }

    /// Per-session sink: counts deliveries routed to it.
    #[derive(Default)]
    struct SessionSink {
        got: u64,
        tags_ok: bool,
    }
    impl Behavior<Msg> for SessionSink {
        fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {
            self.got += 1;
            // Deliveries carry the enqueueing session's tag, and the
            // engine routed them to the matching session behavior.
            self.tags_ok = ctx
                .incoming_tag()
                .map(|t| t.session == ctx.session() as u64)
                .unwrap_or(false)
                && (self.got == 1 || self.tags_ok);
        }
    }

    /// Either role, so one concrete behavior type serves both ends.
    enum SessionNode {
        Source(SessionSource),
        Sink(SessionSink),
    }
    impl Behavior<Msg> for SessionNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if let SessionNode::Source(s) = self {
                s.on_start(ctx);
            }
        }
        fn on_receive(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: &Msg) {
            if let SessionNode::Sink(s) = self {
                s.on_receive(ctx, from, msg);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
            if let SessionNode::Source(s) = self {
                s.on_timer(ctx, token);
            }
        }
    }

    #[test]
    fn sessions_share_the_queue_and_route_independently() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, SessionNode> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 3);
        for session in 0..2 {
            sim.set_session_behavior(
                session,
                NodeId::new(0),
                SessionNode::Source(SessionSource {
                    count: 5,
                    wire_len: 100,
                    timer_fired: 0,
                }),
            );
            sim.set_session_behavior(
                session,
                NodeId::new(1),
                SessionNode::Sink(SessionSink::default()),
            );
        }
        assert_eq!(sim.sessions(), 2);
        sim.run_until(10.0);
        // All ten packets (5 per session) went over the shared queue...
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 10);
        // ...and each session's sink saw exactly its own five.
        for session in 0..2 {
            match sim.session_behavior(session, NodeId::new(1)).unwrap() {
                SessionNode::Sink(sink) => {
                    assert_eq!(sink.got, 5, "session {session} deliveries");
                    assert!(sink.tags_ok, "session {session} saw foreign tags");
                }
                SessionNode::Source(_) => unreachable!(),
            }
            match sim.session_behavior(session, NodeId::new(0)).unwrap() {
                SessionNode::Source(src) => {
                    assert_eq!(src.timer_fired, 1, "session {session} timer routed back")
                }
                SessionNode::Sink(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn session_stats_account_airtime_and_queue_wait() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, SessionNode> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 3);
        // Session 0 sends 3 packets, session 1 sends 1: airtime 3:1.
        for (session, count) in [(0usize, 3usize), (1, 1)] {
            sim.set_session_behavior(
                session,
                NodeId::new(0),
                SessionNode::Source(SessionSource {
                    count,
                    wire_len: 100,
                    timer_fired: 0,
                }),
            );
            sim.set_session_behavior(
                session,
                NodeId::new(1),
                SessionNode::Sink(SessionSink::default()),
            );
        }
        sim.run_until(10.0);
        let s0 = sim.session_stats(0);
        let s1 = sim.session_stats(1);
        assert_eq!(s0.packets_sent, 3);
        assert_eq!(s1.packets_sent, 1);
        assert_eq!(s0.packets_delivered, 3);
        assert_eq!(s1.packets_delivered, 1);
        assert_eq!(s0.bytes_sent, 300);
        // Each 100-byte packet at 1000 B/s occupies 0.1 s of channel.
        assert!((s0.airtime - 0.3).abs() < 1e-9, "airtime {}", s0.airtime);
        assert!((s1.airtime - 0.1).abs() < 1e-9);
        let shares = sim.airtime_shares();
        assert!((shares[0] - 0.75).abs() < 1e-9, "shares {shares:?}");
        assert!((shares[1] - 0.25).abs() < 1e-9);
        // Session 1's single packet entered the queue at t=0 behind up to
        // three session-0 packets: it waited, and the wait was charged to
        // session 1 (inter-session queue interference).
        assert!(s1.queue_wait > 0.0, "queue_wait {}", s1.queue_wait);
        assert!(s0.queue_wait > 0.0);
        // Unknown sessions read as zeroed.
        assert_eq!(sim.session_stats(9), SessionStats::default());
    }

    #[test]
    fn multi_session_runs_are_deterministic() {
        let topo = pair(0.5);
        let run = |seed: u64| {
            let mut sim: Simulator<Msg, SessionNode> =
                Simulator::new(&topo, MacModel::fair_share(1000.0), seed);
            for session in 0..3 {
                sim.set_session_behavior(
                    session,
                    NodeId::new(0),
                    SessionNode::Source(SessionSource {
                        count: 20,
                        wire_len: 10,
                        timer_fired: 0,
                    }),
                );
                sim.set_session_behavior(
                    session,
                    NodeId::new(1),
                    SessionNode::Sink(SessionSink::default()),
                );
            }
            sim.run_until(100.0);
            (0..3)
                .map(|s| {
                    let st = sim.session_stats(s);
                    (st.packets_delivered, st.packets_lost, st.airtime.to_bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(13), run(13), "same seed, same per-session outcomes");
        assert_ne!(run(13), run(14));
    }

    #[test]
    fn retain_queue_only_touches_the_callers_session() {
        /// Source that drops all of its own queued packets on a timer.
        struct Purger {
            count: usize,
        }
        impl Behavior<Msg> for Purger {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                for i in 0..self.count {
                    ctx.enqueue(Outgoing {
                        msg: Msg(i as u64),
                        wire_len: 100,
                        dest: Dest::Broadcast,
                        tag: None,
                    });
                }
                ctx.set_timer(0.0, 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _token: u64) {
                ctx.retain_queue(|_| false);
            }
        }
        // Zero-rate MAC so nothing drains; both sessions enqueue at t=0,
        // session 0 purges its packets via a t=0 timer.
        let topo = pair(1.0);
        let mac = MacModel::rate_limited(vec![0.0, 0.0], 1000.0);
        let mut sim: Simulator<Msg, Purger> = Simulator::new(&topo, mac, 1);
        sim.set_session_behavior(0, NodeId::new(0), Purger { count: 4 });
        sim.set_session_behavior(1, NodeId::new(0), Purger { count: 3 });
        // Cancel session 1's purge by never letting its timer fire: run
        // past both timers — but session 1 also purges. Instead assert the
        // queue after session 0's purge alone by checking the peak: 7
        // before any purge, 3 after session 0's, 0 after session 1's.
        sim.run_until(10.0);
        assert_eq!(sim.queue_peak(NodeId::new(0)), 7, "both sessions queued");
        assert_eq!(
            sim.stats(NodeId::new(0)).packets_sent,
            0,
            "zero-rate MAC never transmits"
        );
        // Both purges ran; the queue is empty again.
        let len_avg = sim.queue_average(NodeId::new(0));
        assert!(len_avg < 0.1, "queue drained by retain, avg {len_avg}");
    }

    #[test]
    fn killed_node_frees_inflight_and_queued_packets() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(100.0), 1);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 10,
                wire_len: 100,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.schedule_kill(NodeId::new(0), 2.5);
        sim.run_until(20.0);
        // After the kill, no packets remain live in the arena: the queue
        // was flushed and the in-flight transmission cancelled.
        assert_eq!(sim.core.packets.len(), 0, "arena leak after kill");
        assert!(sim.core.events.is_empty(), "cancelled event leaked");
    }

    #[test]
    fn steady_state_transmission_recycles_arena_slots() {
        let topo = pair(1.0);
        let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
            Simulator::new(&topo, MacModel::fair_share(1000.0), 1);
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Flood {
                count: 500,
                wire_len: 10,
            }),
        );
        sim.set_behavior(NodeId::new(1), Box::<Counter>::default());
        sim.run_until(100.0);
        assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 500);
        // 500 packets flowed through, but the arena never held more than
        // the initial burst: the hot path recycles slots instead of
        // growing.
        assert!(
            sim.core.packets.capacity() <= 500,
            "arena grew past the enqueue high-water mark: {}",
            sim.core.packets.capacity()
        );
        assert_eq!(sim.core.packets.len(), 0, "all packets drained");
    }
}
