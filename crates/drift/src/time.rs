//! Simulation clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds.
///
/// Wraps a finite, non-negative `f64` and is totally ordered, which lets the
/// event queue sort on it safely.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative, NaN or infinite.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "simulation time must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// The time value in seconds.
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Values are always finite by construction, so partial_cmp is total.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is always finite")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = a + 0.5;
        assert!(b > a);
        assert_eq!(b - a, 0.5);
        assert_eq!(b.since(a), 0.5);
        assert_eq!(a.since(b), 0.0, "since saturates");
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::new(0.25).to_string(), "0.250000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::new(f64::NAN);
    }
}
