//! The engine's event vocabulary.
//!
//! Scheduling lives in [`crate::core::EventQueue`] (an indexed binary heap
//! with O(1) cancellation); this module only defines what can be scheduled.
//! Every event is a few plain words — node ids, a session index, a timer
//! token — so queue entries stay `Copy` and the dispatch loop never chases
//! a box.

use net_topo::graph::NodeId;

/// One scheduled occurrence in the simulation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Deliver `on_start` to every session behavior of a node (fires once
    /// per node at time zero, in node-id order).
    Start(NodeId),
    /// A timer set through [`crate::Ctx::set_timer`] by the behavior of
    /// `session` at `node`.
    Timer {
        /// The node whose behavior set the timer.
        node: NodeId,
        /// The session whose behavior set the timer (timers route back to
        /// the behavior that armed them).
        session: u32,
        /// Caller-chosen discriminator, echoed to `on_timer`.
        token: u64,
    },
    /// `node`'s in-flight transmission finishes and fans out to receivers.
    /// Cancelled (via its [`crate::core::EventId`]) if the node is killed
    /// mid-flight.
    TxComplete {
        /// The transmitting node.
        node: NodeId,
    },
    /// Crash-stop fault injection: `node` goes silent and deaf.
    Kill(NodeId),
}
