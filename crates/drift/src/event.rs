//! The event calendar: a time-ordered priority queue with FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the calendar; `seq` breaks ties so simultaneous events run in
/// insertion order, keeping runs deterministic.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
pub(crate) struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Calendar<E> {
    pub(crate) fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub(crate) fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(Entry { time, seq, event });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(3.0), "c");
        cal.schedule(SimTime::new(1.0), "a");
        cal.schedule(SimTime::new(2.0), "b");
        assert_eq!(cal.peek_time(), Some(SimTime::new(1.0)));
        let order: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime::ZERO, ());
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
    }
}
