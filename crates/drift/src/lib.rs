//! Drift: a deterministic discrete-event wireless emulation testbed.
//!
//! The paper evaluates OMNC on *Drift*, the authors' emulation testbed
//! (Sec. 5): application protocols run unmodified while the wireless PHY and
//! MAC are replaced by models —
//!
//! * a **PHY model** that "captures the lossy nature of the actual wireless
//!   environment": every transmission is received by each in-range node
//!   independently with the link's reception probability;
//! * an **ideal MAC model** in which interfering nodes "can optimally
//!   multiplex the channel" and "a node cannot receive packets if it falls
//!   in the range of an interfering node" — realized here as per-receiver
//!   capacity constraints: the transmitters audible at any receiver share
//!   the channel capacity `C`.
//!
//! This crate is the from-scratch substitute (we have neither the authors'
//! testbed nor a Rust wireless simulator ecosystem): a deterministic
//! discrete-event engine with the same two models. Protocols implement
//! [`Behavior`] and interact with the engine through [`Ctx`] (timers,
//! enqueueing packets); the MAC drains per-node queues either at
//! protocol-assigned rates ([`MacModel::RateLimited`] — OMNC's allocation)
//! or by max-min fair multiplexing among backlogged transmitters
//! ([`MacModel::FairShare`] — the contention the uncontrolled protocols
//! experience).
//!
//! # Examples
//!
//! ```
//! use omnc_drift::{Behavior, Ctx, Dest, MacModel, Outgoing, Simulator};
//! use net_topo::graph::{Link, NodeId, Topology};
//!
//! // A source flooding packets to a sink over one lossy link.
//! struct Source;
//! #[derive(Default)]
//! struct Sink { got: usize }
//! #[derive(Clone)] struct Msg;
//! impl Behavior<Msg> for Source {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
//!         for _ in 0..50 {
//!             ctx.enqueue(Outgoing { msg: Msg, wire_len: 100, dest: Dest::Broadcast, tag: None });
//!         }
//!     }
//! }
//! impl Behavior<Msg> for Sink {
//!     fn on_receive(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: &Msg) {
//!         self.got += 1;
//!     }
//! }
//! let topo = Topology::from_links(2, vec![
//!     Link { from: NodeId::new(0), to: NodeId::new(1), p: 0.5 },
//! ])?;
//! let mut sim: Simulator<Msg, Box<dyn Behavior<Msg>>> =
//!     Simulator::new(&topo, MacModel::fair_share(1000.0), 7);
//! sim.set_behavior(NodeId::new(0), Box::new(Source));
//! sim.set_behavior(NodeId::new(1), Box::new(Sink::default()));
//! sim.run_until(100.0);
//! assert_eq!(sim.stats(NodeId::new(0)).packets_sent, 50);
//! # Ok::<(), net_topo::TopoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod core;
mod event;
mod mac;
mod sim;
mod stats;
mod time;
pub mod trace;

pub use crate::core::{EventId, EventQueue, Pcg64};
pub use arena::{Arena, Handle};
pub use mac::MacModel;
pub use sim::{Behavior, Ctx, Dest, Outgoing, Simulator};
pub use stats::{NodeStats, QueueTracker, SessionStats};
pub use time::SimTime;
pub use trace::{PacketTag, Trace, TraceEvent};
