//! Optional packet-level event tracing.
//!
//! Emulation testbeds live and die by their observability: a trace of who
//! transmitted what, when, and who heard it. The recorder is off by default
//! (zero cost beyond a branch); when enabled it captures a bounded log of
//! MAC-level events that tests and debugging sessions can assert against.

use net_topo::graph::NodeId;
use serde::{Deserialize, Serialize};
use telemetry::Counter;

use crate::time::SimTime;

/// One MAC-level event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `node` started transmitting `wire_len` bytes at `rate` bytes/second.
    TxStart {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
        /// Bytes on the wire.
        wire_len: usize,
        /// Granted service rate.
        rate: f64,
    },
    /// `node` finished a transmission.
    TxComplete {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
    },
    /// The channel delivered a packet from `from` to `to`.
    Delivered {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitter.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// The channel lost the copy addressed/audible to `to`.
    Lost {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitter.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::TxStart { at, .. }
            | TraceEvent::TxComplete { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Lost { at, .. } => *at,
        }
    }
}

/// A bounded in-memory event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
    /// Telemetry counter mirroring `dropped` (no-op unless attached).
    dropped_counter: Counter,
    warned_on_drop: bool,
}

impl Trace {
    /// Creates a disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace holding at most `capacity` events; further
    /// events are counted (and reported through the attached telemetry
    /// counter) but not stored.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            capacity,
            enabled: true,
            ..Trace::default()
        }
    }

    /// Creates an enabled trace with no bound: every event is stored.
    /// Memory grows with the run; prefer [`Trace::bounded`] for long
    /// simulations.
    pub fn unbounded() -> Self {
        Trace::bounded(usize::MAX)
    }

    /// Mirrors dropped-event counts into a telemetry counter (typically
    /// `trace.dropped_events` from a registry) so truncation is observable
    /// instead of silent.
    pub fn set_dropped_counter(&mut self, counter: Counter) {
        self.dropped_counter = counter;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
            self.dropped_counter.inc();
            if !self.warned_on_drop {
                self.warned_on_drop = true;
                eprintln!(
                    "drift: trace capacity {} reached; further events are \
                     counted in trace.dropped_events but not stored",
                    self.capacity
                );
            }
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit within the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterator over events involving `node` (as transmitter or receiver).
    pub fn involving(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| match e {
            TraceEvent::TxStart { node: n, .. } | TraceEvent::TxComplete { node: n, .. } => {
                *n == node
            }
            TraceEvent::Delivered { from, to, .. } | TraceEvent::Lost { from, to, .. } => {
                *from == node || *to == node
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(TraceEvent::TxComplete {
            at: SimTime::ZERO,
            node: NodeId::new(0),
        });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_trace_counts_overflow() {
        let mut t = Trace::bounded(2);
        for i in 0..5 {
            t.record(TraceEvent::TxComplete {
                at: SimTime::ZERO,
                node: NodeId::new(i),
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn involving_filters_by_endpoint() {
        let mut t = Trace::bounded(10);
        t.record(TraceEvent::Delivered {
            at: SimTime::ZERO,
            from: NodeId::new(0),
            to: NodeId::new(1),
        });
        t.record(TraceEvent::Lost {
            at: SimTime::ZERO,
            from: NodeId::new(2),
            to: NodeId::new(3),
        });
        assert_eq!(t.involving(NodeId::new(1)).count(), 1);
        assert_eq!(t.involving(NodeId::new(2)).count(), 1);
        assert_eq!(t.involving(NodeId::new(9)).count(), 0);
    }

    #[test]
    fn event_timestamps_are_accessible() {
        let e = TraceEvent::TxStart {
            at: SimTime::new(1.5),
            node: NodeId::new(0),
            wire_len: 100,
            rate: 10.0,
        };
        assert_eq!(e.at(), SimTime::new(1.5));
    }
}
