//! Optional packet-level event tracing.
//!
//! Emulation testbeds live and die by their observability: a trace of who
//! transmitted what, when, and who heard it. The recorder is off by default
//! (zero cost beyond a branch); when enabled it captures a bounded log of
//! MAC-level events that tests and debugging sessions can assert against.

use net_topo::graph::NodeId;
use rlnc::GenerationId;
use serde::{Deserialize, Serialize};
use telemetry::Counter;

use crate::time::SimTime;

/// Causal identity of one packet on the air.
///
/// Protocols attach a tag when they enqueue a transmission; the engine
/// carries it through every [`TraceEvent`] the packet causes
/// (`TxStart`/`Delivered`/`Lost`) and hands it to the receiving behavior via
/// [`crate::Ctx::incoming_tag`]. Together with the decoder-side absorption
/// records this gives every coded packet a birth-to-death trace: who coded
/// it (`origin`), for which `generation`, and the per-origin `seq` that
/// makes the transmission unique within a `session`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketTag {
    /// Session identifier (the session seed in the reproduction's runners).
    pub session: u64,
    /// Generation the coded payload belongs to.
    pub generation: GenerationId,
    /// Per-origin emission counter: `(origin, seq)` is unique in a session.
    pub seq: u64,
    /// The node that coded (or re-coded) this packet — *not* necessarily
    /// the transmitter of a given hop for store-and-forward protocols.
    pub origin: NodeId,
}

/// One MAC-level event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `node` started transmitting `wire_len` bytes at `rate` bytes/second.
    TxStart {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
        /// Bytes on the wire.
        wire_len: usize,
        /// Granted service rate.
        rate: f64,
        /// Causal identity of the packet, when the protocol attached one.
        tag: Option<PacketTag>,
    },
    /// `node` finished a transmission.
    TxComplete {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitting node.
        node: NodeId,
    },
    /// The channel delivered a packet from `from` to `to`.
    Delivered {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitter.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Causal identity of the packet, when the protocol attached one.
        tag: Option<PacketTag>,
    },
    /// The channel lost the copy addressed/audible to `to`.
    Lost {
        /// Simulation time of the event.
        at: SimTime,
        /// Transmitter.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Causal identity of the packet, when the protocol attached one.
        tag: Option<PacketTag>,
    },
    /// `node`'s transmit queue changed to `len` entries.
    Queue {
        /// Simulation time of the event.
        at: SimTime,
        /// Node whose queue changed.
        node: NodeId,
        /// Queue length after the change.
        len: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::TxStart { at, .. }
            | TraceEvent::TxComplete { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Lost { at, .. }
            | TraceEvent::Queue { at, .. } => *at,
        }
    }

    /// The packet tag carried by the event, if any.
    pub fn tag(&self) -> Option<PacketTag> {
        match self {
            TraceEvent::TxStart { tag, .. }
            | TraceEvent::Delivered { tag, .. }
            | TraceEvent::Lost { tag, .. } => *tag,
            TraceEvent::TxComplete { .. } | TraceEvent::Queue { .. } => None,
        }
    }
}

/// A bounded in-memory event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
    /// Telemetry counter mirroring `dropped` (no-op unless attached).
    dropped_counter: Counter,
    warned_on_drop: bool,
}

impl Trace {
    /// Creates a disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Creates an enabled trace holding at most `capacity` events; further
    /// events are counted (and reported through the attached telemetry
    /// counter) but not stored.
    pub fn bounded(capacity: usize) -> Self {
        Trace {
            capacity,
            enabled: true,
            ..Trace::default()
        }
    }

    /// Creates an enabled trace with no bound: every event is stored.
    /// Memory grows with the run; prefer [`Trace::bounded`] for long
    /// simulations.
    pub fn unbounded() -> Self {
        Trace::bounded(usize::MAX)
    }

    /// Mirrors dropped-event counts into a telemetry counter (typically
    /// `trace.dropped_events` from a registry) so truncation is observable
    /// instead of silent.
    pub fn set_dropped_counter(&mut self, counter: Counter) {
        self.dropped_counter = counter;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
            self.dropped_counter.inc();
            if !self.warned_on_drop {
                self.warned_on_drop = true;
                eprintln!(
                    "drift: trace capacity {} reached; further events are \
                     counted in trace.dropped_events but not stored",
                    self.capacity
                );
            }
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit within the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterator over events involving `node` (as transmitter or receiver).
    pub fn involving(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| match e {
            TraceEvent::TxStart { node: n, .. }
            | TraceEvent::TxComplete { node: n, .. }
            | TraceEvent::Queue { node: n, .. } => *n == node,
            TraceEvent::Delivered { from, to, .. } | TraceEvent::Lost { from, to, .. } => {
                *from == node || *to == node
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(TraceEvent::TxComplete {
            at: SimTime::ZERO,
            node: NodeId::new(0),
        });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_trace_counts_overflow() {
        let mut t = Trace::bounded(2);
        for i in 0..5 {
            t.record(TraceEvent::TxComplete {
                at: SimTime::ZERO,
                node: NodeId::new(i),
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn involving_filters_by_endpoint() {
        let mut t = Trace::bounded(10);
        t.record(TraceEvent::Delivered {
            at: SimTime::ZERO,
            from: NodeId::new(0),
            to: NodeId::new(1),
            tag: None,
        });
        t.record(TraceEvent::Lost {
            at: SimTime::ZERO,
            from: NodeId::new(2),
            to: NodeId::new(3),
            tag: None,
        });
        t.record(TraceEvent::Queue {
            at: SimTime::ZERO,
            node: NodeId::new(1),
            len: 4,
        });
        assert_eq!(t.involving(NodeId::new(1)).count(), 2);
        assert_eq!(t.involving(NodeId::new(2)).count(), 1);
        assert_eq!(t.involving(NodeId::new(9)).count(), 0);
    }

    #[test]
    fn event_timestamps_are_accessible() {
        let e = TraceEvent::TxStart {
            at: SimTime::new(1.5),
            node: NodeId::new(0),
            wire_len: 100,
            rate: 10.0,
            tag: None,
        };
        assert_eq!(e.at(), SimTime::new(1.5));
        let q = TraceEvent::Queue {
            at: SimTime::new(2.5),
            node: NodeId::new(0),
            len: 3,
        };
        assert_eq!(q.at(), SimTime::new(2.5));
    }

    fn tag(origin: usize, seq: u64) -> PacketTag {
        PacketTag {
            session: 42,
            generation: GenerationId::new(7),
            seq,
            origin: NodeId::new(origin),
        }
    }

    #[test]
    fn dropped_events_mirror_into_the_attached_counter() {
        let registry = telemetry::Registry::new();
        let counter = registry.counter("trace.dropped_events");
        let mut t = Trace::bounded(1);
        t.set_dropped_counter(counter.clone());
        for i in 0..4 {
            t.record(TraceEvent::TxComplete {
                at: SimTime::ZERO,
                node: NodeId::new(i),
            });
        }
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 3);
        assert_eq!(counter.get(), 3, "telemetry mirrors the drop count");
        // A counter attached after the fact only sees subsequent drops.
        let late = registry.counter("trace.late_dropped");
        t.set_dropped_counter(late.clone());
        t.record(TraceEvent::TxComplete {
            at: SimTime::ZERO,
            node: NodeId::new(9),
        });
        assert_eq!(t.dropped(), 4);
        assert_eq!(late.get(), 1);
        assert_eq!(counter.get(), 3);
    }

    #[test]
    fn tag_accessor_covers_every_variant() {
        let tg = tag(3, 11);
        let carrying = [
            TraceEvent::TxStart {
                at: SimTime::ZERO,
                node: NodeId::new(3),
                wire_len: 10,
                rate: 1.0,
                tag: Some(tg),
            },
            TraceEvent::Delivered {
                at: SimTime::ZERO,
                from: NodeId::new(3),
                to: NodeId::new(4),
                tag: Some(tg),
            },
            TraceEvent::Lost {
                at: SimTime::ZERO,
                from: NodeId::new(3),
                to: NodeId::new(4),
                tag: Some(tg),
            },
        ];
        for e in carrying {
            assert_eq!(e.tag(), Some(tg));
        }
        let bare = TraceEvent::TxComplete {
            at: SimTime::ZERO,
            node: NodeId::new(3),
        };
        assert_eq!(bare.tag(), None);
        let queue = TraceEvent::Queue {
            at: SimTime::ZERO,
            node: NodeId::new(3),
            len: 0,
        };
        assert_eq!(queue.tag(), None);
    }

    #[test]
    fn tagged_events_round_trip_through_json() {
        let events = vec![
            TraceEvent::TxStart {
                at: SimTime::new(0.25),
                node: NodeId::new(1),
                wire_len: 128,
                rate: 1e4,
                tag: Some(tag(1, 0)),
            },
            TraceEvent::Delivered {
                at: SimTime::new(0.5),
                from: NodeId::new(1),
                to: NodeId::new(2),
                tag: Some(tag(1, 0)),
            },
            TraceEvent::Lost {
                at: SimTime::new(0.5),
                from: NodeId::new(1),
                to: NodeId::new(3),
                tag: None,
            },
            TraceEvent::Queue {
                at: SimTime::new(0.75),
                node: NodeId::new(1),
                len: 2,
            },
        ];
        for e in &events {
            let line = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, e, "line {line}");
        }
    }
}
