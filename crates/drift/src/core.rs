//! The index-based simulation core: a cancellable event queue and seeded
//! per-node random streams.
//!
//! The queue follows the classic indexed-heap design: the `BinaryHeap`
//! holds only `(SimTime, seq, EventId)` triples while event payloads live
//! in a generational [`Arena`]. Cancelling an event frees its arena slot in
//! O(1); the heap entry stays behind as a tombstone that `pop`/`peek_time`
//! lazily discard. `seq` is a global insertion counter, so simultaneous
//! events run strictly FIFO and every run is deterministic.
//!
//! Randomness is one [`Pcg64`] stream per node, all derived from the master
//! seed: node `i` always sees the same coefficient/jitter stream no matter
//! what the rest of the mesh is doing, which keeps multi-session runs
//! reproducible and makes seeded traces stable under workload changes
//! elsewhere in the topology.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::RngCore;

use crate::arena::{Arena, Handle};
use crate::time::SimTime;

/// Reference to a scheduled event, used to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(Handle);

/// One heap entry: scheduling key plus the arena handle of the payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    id: EventId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // first, FIFO among equals.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable event queue.
///
/// Replaces the old calendar: same total order (time, then insertion
/// order), plus O(1) cancellation through generational [`EventId`]s.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    events: Arena<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Arena::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`; returns an id that can cancel it.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.events.alloc(event));
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.heap.push(HeapEntry { time, seq, id });
        id
    }

    /// Cancels a scheduled event, returning its payload if it had not yet
    /// fired (stale ids — already popped or already cancelled — return
    /// `None`). O(1): the heap tombstone is discarded lazily.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        self.events.free(id.0)
    }

    /// Pops the earliest live event. Tombstones of cancelled events are
    /// discarded on the way; amortized over a run this is the same
    /// O(log n) as a plain heap pop.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if let Some(event) = self.events.free(entry.id.0) {
                return Some((entry.time, event));
            }
        }
        None
    }

    /// The timestamp of the earliest live event, discarding any cancelled
    /// tombstones sitting on top of the heap.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let entry = self.heap.peek()?;
            if self.events.contains(entry.id.0) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A PCG-style generator (RXS-M-XS 64/64): 64-bit LCG state advanced per
/// draw, output scrambled by a random xorshift, multiply, xorshift.
///
/// Small (16 bytes), fast (one multiply-add plus the permutation per
/// draw), and statistically solid for simulation workloads. The `stream`
/// parameter selects one of 2^63 distinct sequences, which is how every
/// node gets its own independent stream off one master seed.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u64,
    /// Stream selector (always odd).
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg64 {
    /// Creates a generator on stream `stream` seeded by `seed`.
    pub fn new(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg64 { state: 0, inc };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(inc);
        rng.state = rng.state.wrapping_add(seed);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(inc);
        rng
    }

    /// The node-`i` stream of master seed `seed`: stream selection mixes
    /// the node index through SplitMix64 so adjacent nodes land on
    /// well-separated sequences.
    pub fn for_node(seed: u64, node: usize) -> Self {
        Pcg64::new(
            seed,
            splitmix64(seed ^ (node as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        )
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        let state = self.state;
        self.state = state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        // RXS-M-XS output permutation.
        let word = ((state >> ((state >> 59) + 5)) ^ state).wrapping_mul(12605985483714917081);
        (word >> 43) ^ word
    }
}

/// SplitMix64 finalizer, used to derive stream selectors.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(2.0), "b");
        let c = q.schedule(SimTime::new(3.0), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(c), Some("c"));
        assert_eq!(q.cancel(c), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        // The tombstone on top is skipped by peek and pop alike.
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(q.pop(), Some((SimTime::new(2.0), "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ids_of_fired_events_are_stale() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::new(1.0), 7);
        assert_eq!(q.pop(), Some((SimTime::new(1.0), 7)));
        assert_eq!(q.cancel(a), None, "fired events cannot be cancelled");
        // A recycled slot must not be reachable through the stale id.
        let b = q.schedule(SimTime::new(2.0), 8);
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.cancel(b), Some(8));
    }

    #[test]
    fn len_and_empty_track_cancellation() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.cancel(a);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pcg_streams_are_deterministic_and_distinct() {
        let draws = |seed, node| {
            let mut rng = Pcg64::for_node(seed, node);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(42, 0), draws(42, 0));
        assert_ne!(draws(42, 0), draws(42, 1), "nodes get distinct streams");
        assert_ne!(draws(42, 0), draws(43, 0), "seeds select new sequences");
    }

    #[test]
    fn pcg_supports_the_rng_extension_surface() {
        let mut rng = Pcg64::new(7, 0);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = rng.gen_range(0..10usize);
        assert!(n < 10);
        // gen_bool(p) over many draws lands near p.
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (800..=1200).contains(&hits),
            "gen_bool(0.25) hit {hits}/4000"
        );
    }

    proptest! {
        /// Pops are totally ordered by (time, seq) and deterministic across
        /// heap tie-breaks: scheduling any mix of times (with duplicates)
        /// pops in time order, FIFO among equal times, regardless of
        /// insertion order of distinct times.
        #[test]
        fn pops_are_totally_ordered_and_fifo(
            times in proptest::collection::vec(0u32..50, 1..200),
        ) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::new(t as f64), (t, i));
            }
            let mut popped = Vec::new();
            while let Some((at, (t, i))) = q.pop() {
                prop_assert_eq!(at, SimTime::new(t as f64));
                popped.push((t, i));
            }
            prop_assert_eq!(popped.len(), times.len());
            // (time, insertion index) must come out in strictly
            // lexicographic order: time-ordered, FIFO on ties.
            for w in popped.windows(2) {
                prop_assert!(w[0] < w[1], "out of order: {:?} then {:?}", w[0], w[1]);
            }
        }

        /// Cancellation never perturbs the order of surviving events.
        #[test]
        fn cancellation_preserves_survivor_order(
            times in proptest::collection::vec(0u32..20, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| q.schedule(SimTime::new(t as f64), (t, i)))
                .collect();
            let mut survivors = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert!(q.cancel(*id).is_some());
                } else {
                    survivors.push((times[i], i));
                }
            }
            survivors.sort_unstable();
            let mut popped = Vec::new();
            while let Some((_, e)) = q.pop() {
                popped.push(e);
            }
            prop_assert_eq!(popped, survivors);
        }
    }
}
