//! Ideal MAC models (Sec. 3.2 / Sec. 5 of the paper).
//!
//! Both models share the same admissibility region — for every receiver `i`,
//! the transmitters within range of `i` (plus `i` itself) must not exceed
//! the channel capacity `C` in aggregate — and differ in *who decides* the
//! rates:
//!
//! * [`MacModel::RateLimited`]: the protocol assigns each node a broadcast
//!   rate (OMNC's optimized allocation) and the MAC simply serves each queue
//!   at that rate;
//! * [`MacModel::FairShare`]: nodes transmit whenever backlogged and the
//!   ideal scheduler multiplexes them max-min fairly subject to the
//!   per-receiver capacity constraints — what a protocol *without* rate
//!   control (MORE, ETX routing) experiences.

use net_topo::graph::{NodeId, Topology};

/// The MAC scheduling policy of a [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum MacModel {
    /// Max-min fair multiplexing under the paper's *unicast* feasibility
    /// condition (Sec. 3.2): for every link `(i, j)`, the link itself plus
    /// every link that interferes with it (one touching `N(i) ∪ N(j)`)
    /// share the capacity. Strictly tighter than [`MacModel::FairShare`];
    /// used for the single-path ETX baseline, matching the paper's
    /// asymmetric treatment (sufficient condition for unicast, necessary
    /// condition for broadcast).
    UnicastClique {
        /// Channel capacity in bytes/second.
        capacity: f64,
        /// The next hop of each node (`usize::MAX` = not transmitting).
        next_hop: Vec<usize>,
    },
    /// Serve node `i`'s queue at `rates[i]` bytes/second (0 = silent). The
    /// caller is responsible for the vector being admissible; OMNC's rate
    /// control produces admissible vectors by construction.
    RateLimited {
        /// Per-node service rate in bytes/second.
        rates: Vec<f64>,
        /// Channel capacity in bytes/second (for reference/stats).
        capacity: f64,
    },
    /// Max-min fair multiplexing among currently backlogged transmitters
    /// under per-receiver capacity constraints.
    FairShare {
        /// Channel capacity in bytes/second.
        capacity: f64,
    },
}

impl MacModel {
    /// Convenience constructor for the fair-share model.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is positive and finite.
    pub fn fair_share(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        MacModel::FairShare { capacity }
    }

    /// Convenience constructor for the rate-limited model.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is positive and every rate is finite and
    /// non-negative.
    pub fn rate_limited(rates: Vec<f64>, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be finite and non-negative"
        );
        MacModel::RateLimited { rates, capacity }
    }

    /// Convenience constructor for the unicast link-clique model.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is positive and finite.
    pub fn unicast_clique(capacity: f64, next_hop: Vec<usize>) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        MacModel::UnicastClique { capacity, next_hop }
    }

    /// The channel capacity.
    pub fn capacity(&self) -> f64 {
        match self {
            MacModel::RateLimited { capacity, .. }
            | MacModel::FairShare { capacity }
            | MacModel::UnicastClique { capacity, .. } => *capacity,
        }
    }

    /// Service rates for the whole `backlogged` set at once, slot-aligned
    /// with the input. The engine calls this once per backlog *epoch* (the
    /// set of backlogged transmitters changed) and caches the result, so
    /// the progressive-fill computation is amortized over every
    /// transmission started under the same backlog set.
    pub(crate) fn shares(&self, backlogged: &[NodeId], topology: &Topology) -> Vec<f64> {
        match self {
            MacModel::RateLimited { rates, .. } => backlogged
                .iter()
                .map(|n| rates.get(n.index()).copied().unwrap_or(0.0))
                .collect(),
            MacModel::FairShare { capacity } => max_min_shares(backlogged, topology, *capacity),
            MacModel::UnicastClique { capacity, next_hop } => {
                unicast_clique_shares(backlogged, topology, *capacity, next_hop)
            }
        }
    }
}

/// Max-min fair rates under the unicast sufficient condition: one
/// constraint per backlogged link `(i, j)`, whose members are all
/// backlogged links with an endpoint in `N(i) ∪ {i} ∪ N(j) ∪ {j}`.
pub(crate) fn unicast_clique_shares(
    backlogged: &[NodeId],
    topology: &Topology,
    capacity: f64,
    next_hop: &[usize],
) -> Vec<f64> {
    let k = backlogged.len();
    if k == 0 {
        return Vec::new();
    }
    let hop = |t: NodeId| next_hop.get(t.index()).copied().unwrap_or(usize::MAX);
    let touches = |t: NodeId, zone: &[NodeId]| -> bool {
        let h = hop(t);
        zone.iter().any(|&z| z == t || z.index() == h)
    };
    let mut constraints: Vec<Vec<usize>> = Vec::new();
    for (center_slot, &center) in backlogged.iter().enumerate() {
        let j = hop(center);
        if j == usize::MAX {
            continue;
        }
        // Interference zone of link (center, j).
        let mut zone: Vec<NodeId> = vec![center, NodeId::new(j)];
        zone.extend_from_slice(topology.neighbors(center));
        zone.extend_from_slice(topology.neighbors(NodeId::new(j)));
        zone.sort_unstable();
        zone.dedup();
        let mut members: Vec<usize> = backlogged
            .iter()
            .enumerate()
            .filter(|(_, &t)| touches(t, &zone))
            .map(|(slot, _)| slot)
            .collect();
        if !members.contains(&center_slot) {
            members.push(center_slot);
        }
        members.sort_unstable();
        constraints.push(members);
    }
    progressive_fill(k, &constraints, capacity)
}

/// Max-min fair rates for the backlogged transmitter set under per-receiver
/// capacity constraints: for every node `r` in the topology, the backlogged
/// transmitters within `N(r) ∪ {r}` share at most `capacity`.
///
/// Classic progressive filling: repeatedly find the bottleneck constraint
/// (least remaining capacity per unfrozen member), freeze its members at the
/// fill level, continue until all transmitters are frozen.
pub(crate) fn max_min_shares(
    backlogged: &[NodeId],
    topology: &Topology,
    capacity: f64,
) -> Vec<f64> {
    let k = backlogged.len();
    if k == 0 {
        return Vec::new();
    }
    // Build constraint membership: one constraint per receiver that hears at
    // least one backlogged transmitter.
    let mut constraints: Vec<Vec<usize>> = Vec::new();
    for r in topology.nodes() {
        let mut members: Vec<usize> = backlogged
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == r || topology.neighbors(r).contains(&t))
            .map(|(slot, _)| slot)
            .collect();
        if !members.is_empty() {
            members.sort_unstable();
            constraints.push(members);
        }
    }

    progressive_fill(k, &constraints, capacity)
}

/// Progressive filling: raise all unfrozen shares together, freeze the
/// members of each constraint as it saturates.
fn progressive_fill(k: usize, constraints: &[Vec<usize>], capacity: f64) -> Vec<f64> {
    let mut share = vec![0.0f64; k];
    let mut frozen = vec![false; k];
    let mut used: Vec<f64> = vec![0.0; constraints.len()];
    loop {
        // Fill level headroom per constraint: (C - used) / #unfrozen members.
        let mut best: Option<f64> = None;
        for (ci, members) in constraints.iter().enumerate() {
            let unfrozen = members.iter().filter(|&&m| !frozen[m]).count();
            if unfrozen == 0 {
                continue;
            }
            let head = (capacity - used[ci]) / unfrozen as f64;
            best = Some(best.map_or(head, |b: f64| b.min(head)));
        }
        let Some(delta) = best else { break };
        let delta = delta.max(0.0);
        // Raise all unfrozen shares by delta, update constraint usage.
        for (ci, members) in constraints.iter().enumerate() {
            let unfrozen = members.iter().filter(|&&m| !frozen[m]).count();
            used[ci] += delta * unfrozen as f64;
        }
        for s in 0..k {
            if !frozen[s] {
                share[s] += delta;
            }
        }
        // Freeze members of saturated constraints.
        let mut any_frozen = false;
        for (ci, members) in constraints.iter().enumerate() {
            if capacity - used[ci] <= capacity * 1e-12 {
                for &m in members {
                    if !frozen[m] {
                        frozen[m] = true;
                        any_frozen = true;
                    }
                }
            }
        }
        if !any_frozen {
            // No constraint binds the remaining transmitters (isolated
            // nodes): they can use the full capacity.
            for s in 0..k {
                if !frozen[s] {
                    share[s] = capacity;
                    frozen[s] = true;
                }
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    share
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topo::graph::Link;

    fn clique(n: usize) -> Topology {
        let mut links = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    links.push(Link {
                        from: NodeId::new(i),
                        to: NodeId::new(j),
                        p: 0.5,
                    });
                }
            }
        }
        Topology::from_links(n, links).unwrap()
    }

    #[test]
    fn clique_splits_capacity_evenly() {
        let t = clique(4);
        let backlogged: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let shares = max_min_shares(&backlogged, &t, 100.0);
        for s in &shares {
            assert!((s - 25.0).abs() < 1e-9, "{shares:?}");
        }
    }

    #[test]
    fn single_transmitter_gets_full_capacity() {
        let t = clique(4);
        let shares = max_min_shares(&[NodeId::new(2)], &t, 100.0);
        assert_eq!(shares, vec![100.0]);
    }

    #[test]
    fn disjoint_transmitters_reuse_the_channel() {
        // Two isolated pairs: 0-1 and 2-3; transmitters 0 and 2 do not
        // interfere and each gets the full capacity (spatial reuse).
        let links = vec![
            Link {
                from: NodeId::new(0),
                to: NodeId::new(1),
                p: 0.9,
            },
            Link {
                from: NodeId::new(2),
                to: NodeId::new(3),
                p: 0.9,
            },
        ];
        let t = Topology::from_links(4, links).unwrap();
        let shares = max_min_shares(&[NodeId::new(0), NodeId::new(2)], &t, 50.0);
        assert_eq!(shares, vec![50.0, 50.0]);
    }

    #[test]
    fn chain_bottleneck() {
        // 0-1-2 chain: transmitters 0 and 2 both cover receiver 1, so they
        // split the capacity; a lone transmitter would get all of it.
        let mut links = Vec::new();
        for (a, b) in [(0, 1), (1, 2)] {
            links.push(Link {
                from: NodeId::new(a),
                to: NodeId::new(b),
                p: 0.5,
            });
            links.push(Link {
                from: NodeId::new(b),
                to: NodeId::new(a),
                p: 0.5,
            });
        }
        let t = Topology::from_links(3, links).unwrap();
        let shares = max_min_shares(&[NodeId::new(0), NodeId::new(2)], &t, 100.0);
        assert!((shares[0] - 50.0).abs() < 1e-9);
        assert!((shares[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn shares_respect_every_receiver_constraint() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let n = 10;
            let mut links = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.3) {
                        links.push(Link {
                            from: NodeId::new(i),
                            to: NodeId::new(j),
                            p: 0.5,
                        });
                    }
                }
            }
            if links.is_empty() {
                continue;
            }
            let t = Topology::from_links(n, links).unwrap();
            let backlogged: Vec<NodeId> = (0..n)
                .filter(|_| rng.gen_bool(0.5))
                .map(NodeId::new)
                .collect();
            let shares = max_min_shares(&backlogged, &t, 1.0);
            // Verify per-receiver constraints.
            for r in t.nodes() {
                let load: f64 = backlogged
                    .iter()
                    .enumerate()
                    .filter(|(_, &tx)| tx == r || t.neighbors(r).contains(&tx))
                    .map(|(slot, _)| shares[slot])
                    .sum();
                assert!(load <= 1.0 + 1e-9, "receiver {r} overloaded: {load}");
            }
            // Every backlogged transmitter gets a positive share.
            for (slot, &tx) in backlogged.iter().enumerate() {
                assert!(shares[slot] > 0.0, "transmitter {tx} starved");
            }
        }
    }

    #[test]
    fn rate_limited_returns_assigned_rate() {
        let t = clique(3);
        let mac = MacModel::rate_limited(vec![10.0, 20.0, 0.0], 100.0);
        let all = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        assert_eq!(mac.shares(&all, &t), vec![10.0, 20.0, 0.0]);
        assert_eq!(mac.capacity(), 100.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn invalid_capacity_panics() {
        let _ = MacModel::fair_share(-1.0);
    }
}
